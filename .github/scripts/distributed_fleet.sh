#!/usr/bin/env bash
# Launch one `anacin serve` scheduler plus two loopback `anacin agent`
# processes and wait for all three — the fixture behind the CI
# distributed-smoke job (and a handy local repro:
#   ANACIN=./build/src/cli/anacin SWEEP_FLAGS="--pattern message_race \
#     --ranks 4 --runs 3 --step 50" .github/scripts/distributed_fleet.sh \
#     demo sched-store a1-store a2-store
# ).
#
# Usage: distributed_fleet.sh TAG SCHED_STORE AGENT1_STORE AGENT2_STORE \
#          [extra serve args...]
# Environment:
#   ANACIN       path to the anacin binary (required)
#   SWEEP_FLAGS  sweep flags, shared verbatim with the local baseline
#   SERVE_ENV    env assignments applied to the scheduler (optional)
#   AGENT1_ENV   env assignments applied to agent 1 only (optional)
#   AGENT2_ENV   env assignments applied to agent 2 only (optional)
#
# Chaos campaigns: set ANACIN_NET_CHAOS inside any of the *_ENV knobs to
# fault that process's sends at the frame boundary (net/chaos.hpp), e.g.
#   SERVE_ENV="ANACIN_NET_CHAOS=seed=7,corrupt=0.03,reorder=0.05" \
#   AGENT1_ENV="ANACIN_NET_CHAOS=seed=1007,drop=0.02,corrupt=0.03" \
#     distributed_fleet.sh chaos s a1 a2 --unit-lease-ms 5000
# The report must still be byte-identical to the local baseline — that is
# the invariant the chaos-smoke CI job enforces.
#
# The scheduler announces its ephemeral port through an ABSOLUTE
# --port-file (relative paths once stranded agents in an empty cwd race);
# agents poll for it with a bounded wait so a scheduler that dies before
# binding cannot strand them. Writes TAG.{json,csv,out},
# TAG-metrics.json, TAG-aN.{out,rc}, TAG-aN-metrics.json; exits with the
# scheduler's exit code (signal deaths surface as 128+signo).
# -f: SERVE_ENV/AGENT1_ENV are expanded unquoted into `env` arguments and
# may contain glob characters (e.g. ANACIN_INJECT_CRASH='*=KILL').
set -uf

TAG=$1
SCHED_STORE=$2
AGENT1_STORE=$3
AGENT2_STORE=$4
shift 4

PORT_FILE="$(pwd)/$TAG-port.txt"
rm -f "$PORT_FILE"

launch_agent() {
  local i=$1 store=$2 extra_env=$3
  (
    n=0
    while [ ! -s "$PORT_FILE" ] && [ "$n" -lt 200 ]; do
      sleep 0.05
      n=$((n + 1))
    done
    [ -s "$PORT_FILE" ] || exit 3 # scheduler never bound; don't hang
    # shellcheck disable=SC2086 — env assignments are meant to word-split
    exec env $extra_env "$ANACIN" --store "$store" \
      --metrics-out "$TAG-a$i-metrics.json" \
      agent --connect "127.0.0.1:$(cat "$PORT_FILE")" --name "a$i"
  ) >"$TAG-a$i.out" 2>&1 &
}

launch_agent 1 "$AGENT1_STORE" "${AGENT1_ENV:-}"
AGENT1_PID=$!
launch_agent 2 "$AGENT2_STORE" "${AGENT2_ENV:-}"
AGENT2_PID=$!

# shellcheck disable=SC2086
env ${SERVE_ENV:-} "$ANACIN" --store "$SCHED_STORE" \
  --metrics-out "$TAG-metrics.json" \
  serve $SWEEP_FLAGS --agents 2 --port-file "$PORT_FILE" \
  --csv "$TAG.csv" --json "$TAG.json" "$@" >"$TAG.out" 2>&1
SERVE_RC=$?

wait "$AGENT1_PID"
echo $? >"$TAG-a1.rc"
wait "$AGENT2_PID"
echo $? >"$TAG-a2.rc"

exit "$SERVE_RC"

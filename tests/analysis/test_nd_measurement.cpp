#include "analysis/nd_measurement.hpp"

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "support/error.hpp"

namespace anacin::analysis {
namespace {

std::vector<graph::EventGraph> sample_runs(const std::string& pattern,
                                           int ranks, double nd, int count,
                                           int iterations = 1) {
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  shape.iterations = iterations;
  std::vector<graph::EventGraph> runs;
  for (int i = 0; i < count; ++i) {
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.seed = static_cast<std::uint64_t>(i) * 7919 + 13;
    config.network.nd_fraction = nd;
    runs.push_back(graph::EventGraph::from_trace(
        core::run_pattern_once(pattern, shape, config).trace));
  }
  return runs;
}

graph::EventGraph reference_run(const std::string& pattern, int ranks,
                                int iterations = 1) {
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  shape.iterations = iterations;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = 424242;
  config.network.nd_fraction = 0.0;
  return graph::EventGraph::from_trace(
      core::run_pattern_once(pattern, shape, config).trace);
}

TEST(MeasureNd, ToReferenceShapeAndZeroCase) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto quiet = sample_runs("message_race", 6, 0.0, 5);
  const auto reference = reference_run("message_race", 6);
  const NdMeasurement m =
      measure_nd(*kernel, kernels::LabelPolicy::kTypePeer, quiet, &reference,
                 DistanceReduction::kToReference, pool);
  ASSERT_EQ(m.distances.size(), 5u);
  for (const double d : m.distances) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(MeasureNd, NoisyRunsGivePositiveDistances) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto noisy = sample_runs("amg2013", 6, 1.0, 6);
  const auto reference = reference_run("amg2013", 6);
  const NdMeasurement m =
      measure_nd(*kernel, kernels::LabelPolicy::kTypePeer, noisy, &reference,
                 DistanceReduction::kToReference, pool);
  int positive = 0;
  for (const double d : m.distances) {
    if (d > 0.0) ++positive;
  }
  EXPECT_GE(positive, 5);
}

TEST(MeasureNd, PairwiseCountsPairs) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:1");
  const auto noisy = sample_runs("message_race", 6, 1.0, 6);
  const NdMeasurement m =
      measure_nd(*kernel, kernels::LabelPolicy::kTypePeer, noisy, nullptr,
                 DistanceReduction::kPairwise, pool);
  EXPECT_EQ(m.distances.size(), 15u);
}

TEST(MeasureNd, ReferenceRequiredForReferenceReduction) {
  ThreadPool pool(1);
  const auto kernel = kernels::make_kernel("wl:1");
  const auto runs = sample_runs("message_race", 4, 1.0, 2);
  EXPECT_THROW(measure_nd(*kernel, kernels::LabelPolicy::kTypePeer, runs,
                          nullptr, DistanceReduction::kToReference, pool),
               Error);
}

TEST(SliceProfile, QuietRunsAreFlatZero) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto quiet = sample_runs("amg2013", 5, 0.0, 4);
  const SliceProfile profile = slice_profile(
      *kernel, kernels::LabelPolicy::kTypePeer, quiet, 8, pool);
  EXPECT_GT(profile.distance.size(), 0u);
  for (const double d : profile.distance) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(SliceProfile, NoisyRunsShowDivergenceSomewhere) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto noisy = sample_runs("amg2013", 6, 1.0, 5);
  const SliceProfile profile = slice_profile(
      *kernel, kernels::LabelPolicy::kTypePeer, noisy, 8, pool);
  double peak = 0.0;
  for (const double d : profile.distance) peak = std::max(peak, d);
  EXPECT_GT(peak, 0.0);
}

TEST(SliceProfile, LocalizesAPlantedHotspot) {
  // Program with a deterministic prologue (explicit sources), then a racy
  // epilogue (wildcards): divergence must appear only in late slices.
  const auto program = [](sim::Comm& comm) {
    const int n = comm.size();
    // Phase 1: deterministic ring, long enough to occupy early slices.
    for (int lap = 0; lap < 10; ++lap) {
      sim::Request r = comm.irecv((comm.rank() + n - 1) % n, 1);
      comm.send((comm.rank() + 1) % n, 1);
      (void)comm.wait(r);
    }
    // Phase 2: message race.
    if (comm.rank() == 0) {
      for (int i = 0; i < n - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  };
  std::vector<graph::EventGraph> runs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::SimConfig config;
    config.num_ranks = 6;
    config.seed = seed;
    config.network.nd_fraction = 1.0;
    runs.push_back(
        graph::EventGraph::from_trace(sim::run_simulation(config, program).trace));
  }
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const SliceProfile profile =
      slice_profile(*kernel, kernels::LabelPolicy::kTypePeer, runs, 4, pool);
  ASSERT_GE(profile.distance.size(), 4u);
  // The first half of logical time (deterministic ring) must be flat.
  const std::size_t half = profile.distance.size() / 2;
  for (std::size_t s = 0; s + 2 < half; ++s) {
    EXPECT_DOUBLE_EQ(profile.distance[s], 0.0) << "slice " << s;
  }
  // The peak must be in the second half.
  std::size_t peak_slice = 0;
  for (std::size_t s = 1; s < profile.distance.size(); ++s) {
    if (profile.distance[s] > profile.distance[peak_slice]) peak_slice = s;
  }
  EXPECT_GE(peak_slice, half - 1);
}

TEST(SliceProfile, NeedsTwoRuns) {
  ThreadPool pool(1);
  const auto kernel = kernels::make_kernel("wl:1");
  const auto one = sample_runs("message_race", 4, 1.0, 1);
  EXPECT_THROW(slice_profile(*kernel, kernels::LabelPolicy::kTypePeer, one, 8,
                             pool),
               Error);
}

}  // namespace
}  // namespace anacin::analysis

#include "analysis/clustering.hpp"

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "support/error.hpp"

namespace anacin::analysis {
namespace {

kernels::DistanceMatrix matrix_from(
    std::initializer_list<std::initializer_list<double>> rows) {
  kernels::DistanceMatrix matrix;
  matrix.size = rows.size();
  for (const auto& row : rows) {
    for (const double value : row) matrix.values.push_back(value);
  }
  return matrix;
}

TEST(SingleLinkage, TwoObviousBlobs) {
  // Items 0,1 close; items 2,3 close; blobs far apart.
  const auto matrix = matrix_from({{0, 1, 9, 9},
                                   {1, 0, 9, 9},
                                   {9, 9, 0, 1},
                                   {9, 9, 1, 0}});
  const Clustering clustering = single_linkage(matrix, 2.0);
  ASSERT_EQ(clustering.num_clusters(), 2u);
  EXPECT_EQ(clustering.clusters[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(clustering.clusters[1], (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(clustering.cluster_of[1], clustering.cluster_of[0]);
  EXPECT_NE(clustering.cluster_of[2], clustering.cluster_of[0]);
}

TEST(SingleLinkage, ChainingMergesTransitively) {
  // 0-1 and 1-2 are close, 0-2 is far: single linkage still merges all.
  const auto matrix = matrix_from({{0, 1, 5}, {1, 0, 1}, {5, 1, 0}});
  const Clustering clustering = single_linkage(matrix, 1.5);
  EXPECT_EQ(clustering.num_clusters(), 1u);
}

TEST(SingleLinkage, ThresholdExtremes) {
  const auto matrix = matrix_from({{0, 2, 4}, {2, 0, 2}, {4, 2, 0}});
  EXPECT_EQ(single_linkage(matrix, 0.0).num_clusters(), 3u);
  EXPECT_EQ(single_linkage(matrix, 100.0).num_clusters(), 1u);
}

TEST(SingleLinkage, ZeroDistanceItemsAlwaysTogether) {
  const auto matrix = matrix_from({{0, 0}, {0, 0}});
  EXPECT_EQ(single_linkage(matrix, 0.0).num_clusters(), 1u);
}

TEST(SingleLinkage, InputValidation) {
  kernels::DistanceMatrix empty;
  EXPECT_THROW(single_linkage(empty, 1.0), Error);
  const auto matrix = matrix_from({{0.0}});
  EXPECT_THROW(single_linkage(matrix, -1.0), Error);
  EXPECT_EQ(single_linkage(matrix, 0.0).num_clusters(), 1u);
}

TEST(LargestGap, FindsTheObviousCut) {
  const auto matrix = matrix_from({{0, 1, 9, 9},
                                   {1, 0, 9, 9},
                                   {9, 9, 0, 1},
                                   {9, 9, 1, 0}});
  const double threshold = largest_gap_threshold(matrix);
  EXPECT_GT(threshold, 1.0);
  EXPECT_LT(threshold, 9.0);
  EXPECT_EQ(single_linkage(matrix, threshold).num_clusters(), 2u);
}

TEST(LargestGap, DegenerateAllEqual) {
  const auto matrix = matrix_from({{0, 3}, {3, 0}});
  // Only one pairwise distance: nothing to cut between.
  EXPECT_DOUBLE_EQ(largest_gap_threshold(matrix), 3.0);
}

TEST(ClusterRuns, SeparatesTwoApplicationVariants) {
  // Two mesh *topologies* (different applications) sampled at 100% ND:
  // within-topology distances are small, across-topology large — the
  // clustering must recover the two groups without being told.
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  std::vector<kernels::LabeledGraph> graphs;
  std::vector<std::size_t> truth;
  for (const std::uint64_t topology : {7ull, 99999ull}) {
    for (int i = 0; i < 4; ++i) {
      patterns::PatternConfig shape;
      shape.num_ranks = 10;
      shape.topology_seed = topology;
      sim::SimConfig config;
      config.num_ranks = 10;
      config.seed = 50 + static_cast<std::uint64_t>(i);
      config.network.nd_fraction = 1.0;
      graphs.push_back(kernels::build_labeled_graph(
          graph::EventGraph::from_trace(
              core::run_pattern_once("unstructured_mesh", shape, config)
                  .trace),
          kernels::LabelPolicy::kTypePeer));
      truth.push_back(topology == 7ull ? 0 : 1);
    }
  }
  const kernels::DistanceMatrix matrix =
      kernels::pairwise_distances(*kernel, graphs, pool);
  const Clustering clustering =
      single_linkage(matrix, largest_gap_threshold(matrix));
  ASSERT_EQ(clustering.num_clusters(), 2u);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    for (std::size_t j = 0; j < truth.size(); ++j) {
      EXPECT_EQ(truth[i] == truth[j],
                clustering.cluster_of[i] == clustering.cluster_of[j])
          << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace anacin::analysis

#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::analysis {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(variance(values), 4.571428571, 1e-8);
  EXPECT_NEAR(stddev(values), 2.138089935, 1e-8);
}

TEST(Stats, DegenerateSamples) {
  const std::vector<double> single{3.0};
  EXPECT_DOUBLE_EQ(mean(single), 3.0);
  EXPECT_DOUBLE_EQ(variance(single), 0.0);
  EXPECT_THROW(mean(std::vector<double>{}), Error);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), Error);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 1.75);
  EXPECT_THROW(quantile(values, 1.5), Error);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> values{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(values), 5.0);
}

TEST(Stats, SummaryIsConsistent) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
}

TEST(Spearman, PerfectMonotone) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{10, 100, 1000, 10000, 100000};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  const std::vector<double> y_down{5, 4, 3, 2, 1};
  EXPECT_NEAR(spearman(x, y_down), -1.0, 1e-12);
}

TEST(Spearman, NoiseGivesSmallCorrelation) {
  Rng rng(5);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  EXPECT_NEAR(spearman(x, y), 0.0, 0.1);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x{1, 1, 2, 2, 3, 3};
  const std::vector<double> y{1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, ConstantInputGivesZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(spearman(x, y), 0.0);
}

TEST(Spearman, InputValidation) {
  EXPECT_THROW(spearman(std::vector<double>{1.0}, std::vector<double>{1.0}),
               Error);
  EXPECT_THROW(
      spearman(std::vector<double>{1, 2}, std::vector<double>{1, 2, 3}),
      Error);
}

TEST(MannWhitney, ClearlySeparatedSamples) {
  std::vector<double> low;
  std::vector<double> high;
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    low.push_back(rng.uniform(0.0, 1.0));
    high.push_back(rng.uniform(10.0, 11.0));
  }
  const MannWhitneyResult result = mann_whitney_u(low, high);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_DOUBLE_EQ(result.u_statistic, 0.0);  // no overlap at all
}

TEST(MannWhitney, IdenticalDistributionsNotSignificant) {
  Rng rng(7);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  const MannWhitneyResult result = mann_whitney_u(a, b);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(MannWhitney, AllTiedValues) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 1.0};
  const MannWhitneyResult result = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(MannWhitney, RejectsEmptySamples) {
  EXPECT_THROW(mann_whitney_u(std::vector<double>{}, std::vector<double>{1.0}),
               Error);
}

}  // namespace
}  // namespace anacin::analysis

#include "analysis/root_cause.hpp"

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "support/error.hpp"

namespace anacin::analysis {
namespace {

std::vector<graph::EventGraph> planted_hotspot_runs(int ranks, int count) {
  // Deterministic ring traffic annotated "stable_phase", followed by a
  // wildcard message race annotated "racy_phase" — the ground truth root
  // source the analysis must surface.
  const auto program = [](sim::Comm& comm) {
    const int n = comm.size();
    {
      const auto frame = comm.scoped_frame("stable_phase");
      for (int lap = 0; lap < 6; ++lap) {
        sim::Request r = comm.irecv((comm.rank() + n - 1) % n, 1);
        comm.send((comm.rank() + 1) % n, 1);
        (void)comm.wait(r);
      }
    }
    {
      const auto frame = comm.scoped_frame("racy_phase");
      if (comm.rank() == 0) {
        for (int i = 0; i < n - 1; ++i) (void)comm.recv();
      } else {
        comm.send(0, 0);
      }
    }
  };
  std::vector<graph::EventGraph> runs;
  for (int i = 0; i < count; ++i) {
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.seed = static_cast<std::uint64_t>(i) + 1;
    config.network.nd_fraction = 1.0;
    runs.push_back(graph::EventGraph::from_trace(
        sim::run_simulation(config, program).trace));
  }
  return runs;
}

TEST(RootCause, AttributesThePlantedRacyCallsite) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto runs = planted_hotspot_runs(6, 6);
  RootCauseConfig config;
  config.slice_window = 4;
  const RootCauseReport report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, config, pool);

  ASSERT_FALSE(report.callstacks.empty());
  ASSERT_FALSE(report.hot_slices.empty());
  const CallstackFrequency& top = report.callstacks.front();
  EXPECT_NE(top.path.find("racy_phase"), std::string::npos)
      << "top callstack was: " << top.path;
  EXPECT_NE(top.path.find("MPI_Recv"), std::string::npos);
  EXPECT_GT(top.wildcard_share, 0.9);
}

TEST(RootCause, FrequenciesAreNormalized) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto runs = planted_hotspot_runs(6, 5);
  const RootCauseReport report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, {}, pool);
  double total = 0.0;
  for (const auto& entry : report.callstacks) {
    EXPECT_GE(entry.frequency, 0.0);
    EXPECT_LE(entry.frequency, 1.0);
    EXPECT_GT(entry.occurrences, 0u);
    total += entry.frequency;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RootCause, SortedByFrequencyDescending) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto runs = planted_hotspot_runs(6, 5);
  const RootCauseReport report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, {}, pool);
  for (std::size_t i = 1; i < report.callstacks.size(); ++i) {
    EXPECT_GE(report.callstacks[i - 1].frequency,
              report.callstacks[i].frequency);
  }
}

TEST(RootCause, DeterministicProgramYieldsEmptyReport) {
  ThreadPool pool(2);
  const auto program = [](sim::Comm& comm) {
    const int n = comm.size();
    for (int lap = 0; lap < 4; ++lap) {
      sim::Request r = comm.irecv((comm.rank() + n - 1) % n, 0);
      comm.send((comm.rank() + 1) % n, 0);
      (void)comm.wait(r);
    }
  };
  std::vector<graph::EventGraph> runs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::SimConfig config;
    config.num_ranks = 5;
    config.seed = seed;
    config.network.nd_fraction = 1.0;
    runs.push_back(graph::EventGraph::from_trace(
        sim::run_simulation(config, program).trace));
  }
  const auto kernel = kernels::make_kernel("wl:2");
  const RootCauseReport report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, {}, pool);
  EXPECT_TRUE(report.hot_slices.empty());
  EXPECT_TRUE(report.callstacks.empty());
}

TEST(RootCause, HotFractionOneKeepsOnlyPeaks) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto runs = planted_hotspot_runs(6, 5);
  RootCauseConfig narrow;
  narrow.hot_fraction = 1.0;
  RootCauseConfig wide;
  wide.hot_fraction = 0.01;
  const auto narrow_report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, narrow, pool);
  const auto wide_report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, wide, pool);
  EXPECT_LE(narrow_report.hot_slices.size(), wide_report.hot_slices.size());
}

TEST(RootCause, ConfigValidation) {
  ThreadPool pool(1);
  const auto kernel = kernels::make_kernel("wl:1");
  const auto runs = planted_hotspot_runs(4, 2);
  RootCauseConfig bad;
  bad.hot_fraction = 0.0;
  EXPECT_THROW(find_root_causes(*kernel, kernels::LabelPolicy::kTypePeer,
                                runs, bad, pool),
               Error);
}

TEST(RootCause, IncludingSendsStillRanksRacyPhaseFirst) {
  ThreadPool pool(2);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto runs = planted_hotspot_runs(6, 5);
  RootCauseConfig config;
  config.recvs_only = false;
  const RootCauseReport report = find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, config, pool);
  ASSERT_FALSE(report.callstacks.empty());
  EXPECT_NE(report.callstacks.front().path.find("racy_phase"),
            std::string::npos);
}

}  // namespace
}  // namespace anacin::analysis

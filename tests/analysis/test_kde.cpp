#include "analysis/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::analysis {
namespace {

TEST(Kde, DensityIntegratesToRoughlyOne) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(5.0, 2.0));
  const ViolinData violin = gaussian_kde(values, 256);
  double integral = 0.0;
  for (std::size_t g = 1; g < violin.grid.size(); ++g) {
    integral += 0.5 * (violin.density[g] + violin.density[g - 1]) *
                (violin.grid[g] - violin.grid[g - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.03);
}

TEST(Kde, DensityIsNonNegativeAndPeaksNearMode) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.normal(0.0, 1.0));
  const ViolinData violin = gaussian_kde(values, 128);
  double peak_x = 0.0;
  double peak_density = -1.0;
  for (std::size_t g = 0; g < violin.grid.size(); ++g) {
    EXPECT_GE(violin.density[g], 0.0);
    if (violin.density[g] > peak_density) {
      peak_density = violin.density[g];
      peak_x = violin.grid[g];
    }
  }
  EXPECT_NEAR(peak_x, 0.0, 0.5);
}

TEST(Kde, GridCoversSampleWithMargin) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const ViolinData violin = gaussian_kde(values, 64);
  EXPECT_LT(violin.grid.front(), 1.0);
  EXPECT_GT(violin.grid.back(), 3.0);
  EXPECT_EQ(violin.grid.size(), 64u);
  EXPECT_EQ(violin.density.size(), 64u);
}

TEST(Kde, DegenerateConstantSampleStillDrawable) {
  const std::vector<double> zeros(20, 0.0);
  const ViolinData violin = gaussian_kde(zeros, 64);
  EXPECT_GT(violin.bandwidth, 0.0);
  const double peak =
      *std::max_element(violin.density.begin(), violin.density.end());
  EXPECT_GT(peak, 0.0);
  EXPECT_DOUBLE_EQ(violin.summary.median, 0.0);
}

TEST(Kde, ExplicitBandwidthIsRespected) {
  const std::vector<double> values{0.0, 10.0};
  const ViolinData violin = gaussian_kde(values, 64, 0.5);
  EXPECT_DOUBLE_EQ(violin.bandwidth, 0.5);
  // With a tiny bandwidth the two modes are separated by a near-zero gap.
  double middle_density = 1e9;
  for (std::size_t g = 0; g < violin.grid.size(); ++g) {
    if (std::abs(violin.grid[g] - 5.0) < 1.0) {
      middle_density = std::min(middle_density, violin.density[g]);
    }
  }
  EXPECT_LT(middle_density, 1e-6);
}

TEST(Kde, InputValidation) {
  EXPECT_THROW(gaussian_kde(std::vector<double>{}, 64), Error);
  const std::vector<double> values{1.0};
  EXPECT_THROW(gaussian_kde(values, 1), Error);
}

TEST(SilvermanBandwidth, ScalesWithSpread) {
  Rng rng(3);
  std::vector<double> narrow;
  std::vector<double> wide;
  for (int i = 0; i < 100; ++i) {
    const double z = rng.normal();
    narrow.push_back(z);
    wide.push_back(z * 10.0);
  }
  EXPECT_GT(silverman_bandwidth(wide), silverman_bandwidth(narrow) * 5.0);
}

}  // namespace
}  // namespace anacin::analysis

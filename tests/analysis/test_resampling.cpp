#include "analysis/resampling.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/stats.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::analysis {
namespace {

TEST(Bootstrap, CiBracketsThePointEstimate) {
  Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 60; ++i) sample.push_back(rng.normal(10.0, 2.0));
  const BootstrapCi ci = bootstrap_ci(
      sample, [](std::span<const double> v) { return median(v); });
  EXPECT_LE(ci.lower, ci.point_estimate);
  EXPECT_GE(ci.upper, ci.point_estimate);
  EXPECT_NEAR(ci.point_estimate, 10.0, 1.0);
  EXPECT_LT(ci.upper - ci.lower, 3.0);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 40; ++i) sample.push_back(rng.uniform(0.0, 10.0));
  const Statistic stat = [](std::span<const double> v) { return mean(v); };
  const BootstrapCi narrow = bootstrap_ci(sample, stat, 0.5);
  const BootstrapCi wide = bootstrap_ci(sample, stat, 0.99);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const std::vector<double> sample{1, 2, 3, 4, 5, 6, 7, 8};
  const Statistic stat = [](std::span<const double> v) { return mean(v); };
  const BootstrapCi a = bootstrap_ci(sample, stat, 0.95, 500, 42);
  const BootstrapCi b = bootstrap_ci(sample, stat, 0.95, 500, 42);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, DegenerateSampleCollapses) {
  const std::vector<double> constant(20, 7.0);
  const BootstrapCi ci = bootstrap_ci(
      constant, [](std::span<const double> v) { return median(v); });
  EXPECT_DOUBLE_EQ(ci.lower, 7.0);
  EXPECT_DOUBLE_EQ(ci.upper, 7.0);
}

TEST(Bootstrap, InputValidation) {
  const Statistic stat = [](std::span<const double> v) { return mean(v); };
  EXPECT_THROW(bootstrap_ci(std::vector<double>{}, stat), Error);
  const std::vector<double> sample{1.0};
  EXPECT_THROW(bootstrap_ci(sample, stat, 1.5), Error);
  EXPECT_THROW(bootstrap_ci(sample, stat, 0.95, 3), Error);
}

TEST(CliffsDelta, FullySeparatedSamples) {
  const std::vector<double> low{1, 2, 3};
  const std::vector<double> high{10, 11, 12};
  EXPECT_DOUBLE_EQ(cliffs_delta(high, low), 1.0);
  EXPECT_DOUBLE_EQ(cliffs_delta(low, high), -1.0);
}

TEST(CliffsDelta, IdenticalSamplesGiveZero) {
  const std::vector<double> same{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cliffs_delta(same, same), 0.0);
}

TEST(CliffsDelta, PartialOverlap) {
  const std::vector<double> a{1, 3, 5};
  const std::vector<double> b{2, 4};
  // pairs: (1,2)-, (1,4)-, (3,2)+, (3,4)-, (5,2)+, (5,4)+ => (3-3)/6 = 0.
  EXPECT_DOUBLE_EQ(cliffs_delta(a, b), 0.0);
  const std::vector<double> c{3, 5, 6};
  // vs b={2,4}: (3,2)+ (3,4)- (5,2)+ (5,4)+ (6,2)+ (6,4)+ => (5-1)/6.
  EXPECT_NEAR(cliffs_delta(c, b), 4.0 / 6.0, 1e-12);
}

TEST(CliffsDelta, TiesAreNeutral) {
  const std::vector<double> a{2, 2};
  const std::vector<double> b{2, 2, 2};
  EXPECT_DOUBLE_EQ(cliffs_delta(a, b), 0.0);
}

TEST(CliffsDelta, RejectsEmpty) {
  const std::vector<double> sample{1.0};
  EXPECT_THROW(cliffs_delta(std::vector<double>{}, sample), Error);
}

TEST(PermutationTest, SeparatedSamplesAreSignificant) {
  Rng rng(11);
  std::vector<double> low;
  std::vector<double> high;
  for (int i = 0; i < 15; ++i) {
    low.push_back(rng.uniform(0.0, 1.0));
    high.push_back(rng.uniform(5.0, 6.0));
  }
  const double p = permutation_test(
      low, high, [](std::span<const double> v) { return median(v); });
  EXPECT_LT(p, 0.01);
}

TEST(PermutationTest, SameDistributionNotSignificant) {
  Rng rng(13);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  const double p = permutation_test(
      a, b, [](std::span<const double> v) { return median(v); });
  EXPECT_GT(p, 0.05);
}

TEST(PermutationTest, DeterministicGivenSeed) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 3, 4, 5};
  const Statistic stat = [](std::span<const double> v) { return mean(v); };
  EXPECT_DOUBLE_EQ(permutation_test(a, b, stat, 500, 7),
                   permutation_test(a, b, stat, 500, 7));
}

TEST(PermutationTest, PValueInUnitInterval) {
  const std::vector<double> a{1, 1, 1};
  const std::vector<double> b{1, 1};
  const double p = permutation_test(
      a, b, [](std::span<const double> v) { return mean(v); });
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(PermutationTest, InputValidation) {
  const Statistic stat = [](std::span<const double> v) { return mean(v); };
  const std::vector<double> sample{1.0};
  EXPECT_THROW(permutation_test(std::vector<double>{}, sample, stat), Error);
  EXPECT_THROW(permutation_test(sample, sample, stat, 2), Error);
}

}  // namespace
}  // namespace anacin::analysis

#include "realtime/realtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "support/error.hpp"

namespace anacin::realtime {
namespace {

// These tests exercise REAL thread scheduling, so they assert correctness
// properties (delivery, matching, trace shape) but never a particular
// interleaving.

TEST(Realtime, PayloadsDeliveredCorrectly) {
  RtConfig config;
  config.num_ranks = 2;
  std::atomic<double> got{0.0};
  run_threads(config, [&got](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, sim::payload_from_double(2.75));
    } else {
      const sim::RecvResult r = comm.recv(0, 5);
      got.store(sim::double_from_payload(r.payload));
    }
  });
  EXPECT_DOUBLE_EQ(got.load(), 2.75);
}

TEST(Realtime, TraceHasSameShapeAsSimulator) {
  RtConfig config;
  config.num_ranks = 4;
  const trace::Trace trace = run_threads(config, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  });
  EXPECT_EQ(trace.num_ranks(), 4);
  // init + 3 recvs + finalize on rank 0.
  EXPECT_EQ(trace.rank_events(0).size(), 5u);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(trace.rank_events(r).size(), 3u);
  }
  // Matched sends resolve to real send events.
  for (const trace::Event& event : trace.rank_events(0)) {
    if (event.type != trace::EventType::kRecv) continue;
    const trace::Event& send =
        trace.event({event.matched_rank, event.matched_seq});
    EXPECT_EQ(send.type, trace::EventType::kSend);
    EXPECT_EQ(send.peer, 0);
  }
}

TEST(Realtime, EventGraphBuildsAndIsDag) {
  RtConfig config;
  config.num_ranks = 4;
  const trace::Trace trace = run_threads(config, [](Comm& comm) {
    const auto frame = comm.scoped_frame("phase");
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
    comm.barrier();
  });
  const graph::EventGraph event_graph = graph::EventGraph::from_trace(trace);
  EXPECT_TRUE(event_graph.digraph().is_dag());
  EXPECT_EQ(event_graph.message_edges().size(), 3u);
  bool found_framed_recv = false;
  for (const graph::EventNode& node : event_graph.nodes()) {
    if (node.type == trace::EventType::kRecv) {
      EXPECT_EQ(event_graph.callstacks().path(node.callstack_id),
                "phase>MPI_Recv");
      found_framed_recv = true;
    }
  }
  EXPECT_TRUE(found_framed_recv);
}

TEST(Realtime, TagFilteringWorks) {
  std::atomic<int> first_tag{-1};
  RtConfig config;
  config.num_ranks = 2;
  run_threads(config, [&first_tag](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1);
      comm.send(1, 2);
    } else {
      first_tag.store(comm.recv(sim::kAnySource, 2).tag);
      (void)comm.recv(sim::kAnySource, 1);
    }
  });
  EXPECT_EQ(first_tag.load(), 2);
}

TEST(Realtime, BarrierSynchronizesAllRanks) {
  RtConfig config;
  config.num_ranks = 6;
  std::atomic<int> before{0};
  std::atomic<bool> consistent{true};
  run_threads(config, [&](Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != comm.size()) consistent.store(false);
    comm.barrier();
  });
  EXPECT_TRUE(consistent.load());
}

TEST(Realtime, RecvTimeoutReportsDeadlock) {
  RtConfig config;
  config.num_ranks = 2;
  config.recv_timeout_ms = 50;  // fail fast
  EXPECT_THROW(run_threads(config,
                           [](Comm& comm) {
                             if (comm.rank() == 1) (void)comm.recv(0, 9);
                           }),
               DeadlockError);
}

TEST(Realtime, UserExceptionPropagates) {
  RtConfig config;
  config.num_ranks = 3;
  config.recv_timeout_ms = 2000;
  EXPECT_THROW(run_threads(config,
                           [](Comm& comm) {
                             if (comm.rank() == 2) {
                               throw std::runtime_error("app bug");
                             }
                             comm.barrier();  // would hang without rank 2
                           }),
               std::runtime_error);
}

TEST(Realtime, InvalidUsageRejected) {
  RtConfig config;
  config.num_ranks = 2;
  EXPECT_THROW(run_threads(config,
                           [](Comm& comm) {
                             if (comm.rank() == 0) comm.send(7, 0);
                             else (void)comm.recv();
                           }),
               Error);
  RtConfig bad;
  bad.num_ranks = 0;
  EXPECT_THROW(run_threads(bad, [](Comm&) {}), Error);
}

TEST(Realtime, PipelineMeasuresRealRuns) {
  // The full measurement pipeline applies to real-thread traces; distances
  // are well defined (>= 0) whatever the scheduler did.
  const RankProgram program = [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  };
  RtConfig config;
  config.num_ranks = 4;
  const auto kernel = kernels::make_kernel("wl:2");
  std::vector<kernels::FeatureVector> features;
  for (int i = 0; i < 3; ++i) {
    const trace::Trace trace = run_threads(config, program);
    features.push_back(kernel->features(kernels::build_labeled_graph(
        graph::EventGraph::from_trace(trace),
        kernels::LabelPolicy::kTypePeer)));
  }
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t j = i + 1; j < features.size(); ++j) {
      EXPECT_GE(kernels::kernel_distance(features[i], features[j]), 0.0);
    }
  }
}

}  // namespace
}  // namespace anacin::realtime

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace anacin::obs {
namespace {

TEST(Counter, SingleThreadAddAndValue) {
  Counter counter("test.counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, AggregatesAcrossThreads) {
  Counter counter("test.threads");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddValue) {
  Gauge gauge("test.gauge");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_EQ(gauge.value(), 1.5);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Histogram, CountSumMinMax) {
  Histogram histogram("test.hist", {1.0, 10.0, 100.0});
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);
  histogram.observe(500.0);  // overflow bucket
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 555.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 555.5 / 4.0);
  ASSERT_EQ(snap.buckets.size(), 4u);
  for (const std::uint64_t in_bucket : snap.buckets) {
    EXPECT_EQ(in_bucket, 1u);
  }
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram histogram("test.empty");
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesBracketTheData) {
  Histogram histogram("test.quantiles", {1, 2, 5, 10, 20, 50, 100});
  for (int i = 1; i <= 100; ++i) {
    histogram.observe(static_cast<double>(i));
  }
  const Histogram::Snapshot snap = histogram.snapshot();
  const double p50 = snap.quantile(0.5);
  const double p99 = snap.quantile(0.99);
  EXPECT_GE(p50, 20.0);
  EXPECT_LE(p50, 60.0);
  EXPECT_GE(p99, 90.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_LE(snap.quantile(0.0), snap.quantile(1.0));
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
}

TEST(Histogram, AggregatesAcrossThreads) {
  Histogram histogram("test.hist_threads");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry registry;
  Counter& a = registry.counter("dup");
  Counter& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = registry.histogram("hist", {1.0, 2.0});
  Histogram& h2 = registry.histogram("hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, SnapshotJsonShape) {
  Registry registry;
  registry.counter("events").add(7);
  registry.gauge("depth").set(3.0);
  registry.histogram("latency").observe(0.25);
  const json::Value doc = registry.snapshot_json();
  EXPECT_EQ(doc.at("counters").at("events").as_number(), 7.0);
  EXPECT_EQ(doc.at("gauges").at("depth").as_number(), 3.0);
  const json::Value& latency = doc.at("histograms").at("latency");
  EXPECT_EQ(latency.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(latency.at("sum").as_number(), 0.25);
  EXPECT_TRUE(latency.contains("p50"));
  EXPECT_TRUE(latency.contains("p99"));

  // The snapshot must round-trip through the JSON text layer.
  const json::Value parsed = json::parse(doc.dump(2));
  EXPECT_EQ(parsed.at("counters").at("events").as_number(), 7.0);
}

TEST(Registry, ResetZeroesEverythingButKeepsReferences) {
  Registry registry;
  Counter& counter = registry.counter("c");
  registry.gauge("g").set(9.0);
  registry.histogram("h").observe(4.0);
  counter.add(5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h").snapshot().count, 0u);
  counter.add(1);
  EXPECT_EQ(registry.counter("c").value(), 1u);
}

TEST(Registry, GlobalShorthandsHitGlobalRegistry) {
  counter("test.global.counter").add(2);
  EXPECT_EQ(Registry::global().counter("test.global.counter").value(), 2u);
  Registry::global().reset();
  EXPECT_EQ(counter("test.global.counter").value(), 0u);
}

}  // namespace
}  // namespace anacin::obs

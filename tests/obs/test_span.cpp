#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace anacin::obs {
namespace {

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  {
    ScopedSpan span("ignored", tracer);
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, RecordsNestedSpansWithDepth) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer("outer", tracer);
    {
      ScopedSpan inner("inner", tracer);
    }
  }
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].depth, 0u);
  EXPECT_EQ(records[0].tid, records[1].tid);
  // The inner span is contained in the outer one.
  EXPECT_GE(records[0].start_us, records[1].start_us);
  EXPECT_LE(records[0].dur_us, records[1].dur_us);
}

TEST(Tracer, SpansFromDifferentThreadsGetDifferentTids) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span("main-thread", tracer);
  }
  std::thread worker([&tracer] { ScopedSpan span("worker", tracer); });
  worker.join();
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].tid, records[1].tid);
}

TEST(Tracer, ClearDropsRecordsAndRestartsEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span("before-clear", tracer);
  }
  EXPECT_EQ(tracer.size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  {
    ScopedSpan span("after-clear", tracer);
  }
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_GE(tracer.records()[0].start_us, 0.0);
}

TEST(Tracer, ChromeTraceJsonRoundTripsThroughParser) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer("stage", tracer);
    ScopedSpan inner("step", tracer);
  }
  const std::string text = tracer.chrome_trace_json().dump(2);
  const json::Value parsed = json::parse(text);
  ASSERT_TRUE(parsed.is_array());
  ASSERT_EQ(parsed.size(), 2u);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const json::Value& event = parsed.at(i);
    EXPECT_TRUE(event.at("name").is_string());
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("cat").as_string(), "anacin");
    EXPECT_GE(event.at("ts").as_number(), 0.0);
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    EXPECT_GE(event.at("tid").as_number(), 1.0);
    EXPECT_TRUE(event.at("args").contains("depth"));
  }
  const auto name_of = [&](std::size_t i) {
    return parsed.at(i).at("name").as_string();
  };
  EXPECT_EQ(name_of(0), "step");
  EXPECT_EQ(name_of(1), "stage");
}

TEST(Tracer, GlobalMacroRecordsWhenEnabled) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ANACIN_SPAN("macro.scope");
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "macro.scope");
  tracer.clear();
}

TEST(Tracer, ConcurrentRecordingIsSafe) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span("burst", tracer);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace anacin::obs

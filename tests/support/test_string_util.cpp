#include "support/string_util.hpp"

#include <gtest/gtest.h>

namespace anacin {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyInputYieldsOneField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripWithSplit) {
  const std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(join(parts, "|"), "x||yz");
  EXPECT_EQ(split(join(parts, "|"), '|'), parts);
}

TEST(Join, EmptyVector) { EXPECT_EQ(join({}, ","), ""); }

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Pad, RightPadsAndTruncates) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(Pad, LeftPadsWithoutTruncating) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace anacin

#include "support/fs.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/io_chaos.hpp"

namespace anacin::support {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class TempDir {
public:
  TempDir() {
    root_ = fs::temp_directory_path() /
            ("anacin_fs_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  fs::path path(const std::string& name) const { return root_ / name; }

private:
  static inline int counter_ = 0;
  fs::path root_;
};

TEST(AtomicWriteFile, WritesContentAndCreatesParents) {
  TempDir dir;
  const fs::path target = dir.path("a/b/c.txt");
  atomic_write_file(target.string(), "hello\n");
  EXPECT_EQ(slurp(target), "hello\n");
}

TEST(AtomicWriteFile, OverwritesExistingFile) {
  TempDir dir;
  const fs::path target = dir.path("f.txt");
  atomic_write_file(target.string(), "old");
  atomic_write_file(target.string(), "new");
  EXPECT_EQ(slurp(target), "new");
}

TEST(AtomicWriteFile, LeavesNoTempFileBehind) {
  TempDir dir;
  atomic_write_file(dir.path("x.json").string(), "{}");
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path(""))) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicWriteFile, CountsSuccessfulWrites) {
  TempDir dir;
  const std::uint64_t before = atomic_write_count();
  atomic_write_file(dir.path("1").string(), "1");
  atomic_write_file(dir.path("2").string(), "2");
  EXPECT_EQ(atomic_write_count(), before + 2);
}

TEST(AtomicWriteFile, InjectedFailureLeavesDestinationUntouched) {
  TempDir dir;
  const fs::path target = dir.path("report.json");
  atomic_write_file(target.string(), "intact previous version");

  // Budget 0: the very next write fails as if the disk filled mid-write.
  set_fail_write_after(0);
  EXPECT_THROW(atomic_write_file(target.string(), "would-be new version"),
               IoError);
  EXPECT_EQ(slurp(target), "intact previous version");

  // The injection fires exactly once — the process recovers afterwards.
  atomic_write_file(target.string(), "recovered");
  EXPECT_EQ(slurp(target), "recovered");
}

TEST(AtomicWriteFile, InjectionBudgetCountsWrites) {
  TempDir dir;
  set_fail_write_after(2);
  atomic_write_file(dir.path("ok1").string(), "1");
  atomic_write_file(dir.path("ok2").string(), "2");
  EXPECT_THROW(atomic_write_file(dir.path("boom").string(), "3"), IoError);
  EXPECT_FALSE(fs::exists(dir.path("boom")));
  atomic_write_file(dir.path("ok3").string(), "4");
  EXPECT_EQ(slurp(dir.path("ok3")), "4");
}

TEST(AtomicWriteFile, FailedInjectionDoesNotCountAsSuccess) {
  TempDir dir;
  const std::uint64_t before = atomic_write_count();
  set_fail_write_after(0);
  EXPECT_THROW(atomic_write_file(dir.path("f").string(), "x"), IoError);
  EXPECT_EQ(atomic_write_count(), before);
}

/// Chaos-driven fs tests install a process-global config, so every one of
/// them must clean up or the plain AtomicWriteFile tests above start
/// failing at random.
class FsChaosTest : public ::testing::Test {
protected:
  void SetUp() override { io_chaos::reset_for_tests(); }
  void TearDown() override { io_chaos::reset_for_tests(); }

  static std::vector<fs::path> temp_files(const fs::path& root) {
    std::vector<fs::path> temps;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() &&
          entry.path().filename().string().find(".tmp.") !=
              std::string::npos) {
        temps.push_back(entry.path());
      }
    }
    return temps;
  }
};

TEST_F(FsChaosTest, EnospcLeavesPartialTempAndDestinationUntouched) {
  TempDir dir;
  const fs::path target = dir.path("report.json");
  atomic_write_file(target.string(), "intact previous version");

  install_io_chaos(IoChaosConfig::parse("enospc=1"));
  try {
    atomic_write_file(target.string(), "0123456789abcdef");
    FAIL() << "injected ENOSPC did not fire";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("ENOSPC"), std::string::npos);
  }
  EXPECT_EQ(slurp(target), "intact previous version");

  // A disk that fills mid-write leaves a partial temp file — exactly what
  // the stale-temp sweeper exists to clean up.
  const std::vector<fs::path> temps = temp_files(dir.path(""));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_EQ(slurp(temps.front()), "01234567");  // half the bytes landed
}

TEST_F(FsChaosTest, EioIsDistinguishableFromEnospc) {
  TempDir dir;
  install_io_chaos(IoChaosConfig::parse("eio=1"));
  try {
    atomic_write_file(dir.path("x").string(), "payload");
    FAIL() << "injected EIO did not fire";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("EIO"), std::string::npos);
  }
}

TEST_F(FsChaosTest, OpenFailLeavesNoTempLitter) {
  TempDir dir;
  install_io_chaos(IoChaosConfig::parse("open_fail=1"));
  EXPECT_THROW(atomic_write_file(dir.path("x").string(), "payload"), IoError);
  EXPECT_TRUE(temp_files(dir.path("")).empty());
}

TEST_F(FsChaosTest, RenameFailLeavesCompleteTempBehind) {
  TempDir dir;
  const fs::path target = dir.path("x");
  install_io_chaos(IoChaosConfig::parse("rename_fail=1"));
  EXPECT_THROW(atomic_write_file(target.string(), "full payload"), IoError);
  EXPECT_FALSE(fs::exists(target));
  // The write itself completed; only the publishing rename failed.
  const std::vector<fs::path> temps = temp_files(dir.path(""));
  ASSERT_EQ(temps.size(), 1u);
  EXPECT_EQ(slurp(temps.front()), "full payload");
}

TEST_F(FsChaosTest, OutOfScopeWritesSucceed) {
  TempDir dir;
  install_io_chaos(IoChaosConfig::parse("enospc=1,scope=journal"));
  // Report-class writes sail through a journal-scoped fault config.
  atomic_write_file(dir.path("r.json").string(), "{}", PathClass::kReport);
  EXPECT_EQ(slurp(dir.path("r.json")), "{}");
  EXPECT_THROW(
      atomic_write_file(dir.path("j.jsonl").string(), "{}",
                        PathClass::kJournal),
      IoError);
}

TEST_F(FsChaosTest, FailWriteAfterBudgetSkipsStoreClassWrites) {
  TempDir dir;
  set_fail_write_after(0);
  // Store-internal writes postdate the legacy hook and must neither fail
  // nor consume the one-shot budget...
  atomic_write_file(dir.path("index.json").string(), "{}",
                    PathClass::kStore);
  EXPECT_EQ(slurp(dir.path("index.json")), "{}");
  // ...so the budget is still armed for the next journal-class write.
  EXPECT_THROW(atomic_write_file(dir.path("j.jsonl").string(), "{}",
                                 PathClass::kJournal),
               IoError);
}

TEST_F(FsChaosTest, StaleTempSweepRemovesOnlyPreExistingTemps) {
  TempDir dir;
  // A temp older than this process: orphaned by a crashed predecessor.
  const fs::path stale = dir.path("report.json.tmp.3");
  std::ofstream(stale) << "orphan";
  fs::last_write_time(stale,
                      process_start_file_time() - std::chrono::hours(1));
  // A fresh temp: could be a concurrent writer's in-flight publish.
  const fs::path fresh = dir.path("index.json.tmp.9");
  std::ofstream(fresh) << "in flight";
  // An old non-temp file: never the sweeper's business.
  const fs::path bystander = dir.path("data.json");
  std::ofstream(bystander) << "keep";
  fs::last_write_time(bystander,
                      process_start_file_time() - std::chrono::hours(1));

  EXPECT_EQ(remove_stale_temp_files(dir.path("")), 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  EXPECT_TRUE(fs::exists(bystander));

  // Idempotent: a second sweep finds nothing.
  EXPECT_EQ(remove_stale_temp_files(dir.path("")), 0u);
}

TEST_F(FsChaosTest, StaleTempSweepToleratesMissingRoot) {
  TempDir dir;
  EXPECT_EQ(remove_stale_temp_files(dir.path("does-not-exist")), 0u);
}

TEST_F(FsChaosTest, CommitDurabilityKeepsWritesAtomicAndClean) {
  TempDir dir;
  set_durability(Durability::kCommit);
  const fs::path target = dir.path("a/b.json");
  atomic_write_file(target.string(), "durable", PathClass::kJournal);
  EXPECT_EQ(slurp(target), "durable");
  EXPECT_TRUE(temp_files(dir.path("")).empty());

  set_durability(Durability::kParanoid);
  atomic_write_file(target.string(), "more durable", PathClass::kJournal);
  EXPECT_EQ(slurp(target), "more durable");
}

TEST_F(FsChaosTest, DurableCommitsAdvanceTheDurableOpCount) {
  TempDir dir;
  const std::uint64_t before = io_chaos::durable_op_count();
  atomic_write_file(dir.path("1").string(), "1");
  atomic_write_file(dir.path("2").string(), "2");
  EXPECT_EQ(io_chaos::durable_op_count(), before + 2);
}

}  // namespace
}  // namespace anacin::support

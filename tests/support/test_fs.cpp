#include "support/fs.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace anacin::support {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class TempDir {
public:
  TempDir() {
    root_ = fs::temp_directory_path() /
            ("anacin_fs_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  fs::path path(const std::string& name) const { return root_ / name; }

private:
  static inline int counter_ = 0;
  fs::path root_;
};

TEST(AtomicWriteFile, WritesContentAndCreatesParents) {
  TempDir dir;
  const fs::path target = dir.path("a/b/c.txt");
  atomic_write_file(target.string(), "hello\n");
  EXPECT_EQ(slurp(target), "hello\n");
}

TEST(AtomicWriteFile, OverwritesExistingFile) {
  TempDir dir;
  const fs::path target = dir.path("f.txt");
  atomic_write_file(target.string(), "old");
  atomic_write_file(target.string(), "new");
  EXPECT_EQ(slurp(target), "new");
}

TEST(AtomicWriteFile, LeavesNoTempFileBehind) {
  TempDir dir;
  atomic_write_file(dir.path("x.json").string(), "{}");
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path(""))) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicWriteFile, CountsSuccessfulWrites) {
  TempDir dir;
  const std::uint64_t before = atomic_write_count();
  atomic_write_file(dir.path("1").string(), "1");
  atomic_write_file(dir.path("2").string(), "2");
  EXPECT_EQ(atomic_write_count(), before + 2);
}

TEST(AtomicWriteFile, InjectedFailureLeavesDestinationUntouched) {
  TempDir dir;
  const fs::path target = dir.path("report.json");
  atomic_write_file(target.string(), "intact previous version");

  // Budget 0: the very next write fails as if the disk filled mid-write.
  set_fail_write_after(0);
  EXPECT_THROW(atomic_write_file(target.string(), "would-be new version"),
               IoError);
  EXPECT_EQ(slurp(target), "intact previous version");

  // The injection fires exactly once — the process recovers afterwards.
  atomic_write_file(target.string(), "recovered");
  EXPECT_EQ(slurp(target), "recovered");
}

TEST(AtomicWriteFile, InjectionBudgetCountsWrites) {
  TempDir dir;
  set_fail_write_after(2);
  atomic_write_file(dir.path("ok1").string(), "1");
  atomic_write_file(dir.path("ok2").string(), "2");
  EXPECT_THROW(atomic_write_file(dir.path("boom").string(), "3"), IoError);
  EXPECT_FALSE(fs::exists(dir.path("boom")));
  atomic_write_file(dir.path("ok3").string(), "4");
  EXPECT_EQ(slurp(dir.path("ok3")), "4");
}

TEST(AtomicWriteFile, FailedInjectionDoesNotCountAsSuccess) {
  TempDir dir;
  const std::uint64_t before = atomic_write_count();
  set_fail_write_after(0);
  EXPECT_THROW(atomic_write_file(dir.path("f").string(), "x"), IoError);
  EXPECT_EQ(atomic_write_count(), before);
}

}  // namespace
}  // namespace anacin::support

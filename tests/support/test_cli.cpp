#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/error.hpp"

namespace anacin {
namespace {

TEST(ArgParser, ParsesAllOptionKinds) {
  int count = 1;
  double ratio = 0.5;
  std::string name = "default";
  bool verbose = false;
  std::uint64_t seed = 0;

  ArgParser parser("test");
  parser.add_int("count", "a count", &count);
  parser.add_double("ratio", "a ratio", &ratio);
  parser.add_string("name", "a name", &name);
  parser.add_flag("verbose", "chatty", &verbose);
  parser.add_uint64("seed", "rng seed", &seed);

  const std::array<const char*, 10> argv{"prog",    "--count", "42",
                                         "--ratio", "0.25",    "--name",
                                         "x",       "--verbose", "--seed",
                                         "123456789012345"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "x");
  EXPECT_TRUE(verbose);
  EXPECT_EQ(seed, 123456789012345ull);
}

TEST(ArgParser, EqualsSyntax) {
  int count = 0;
  ArgParser parser("test");
  parser.add_int("count", "", &count);
  const std::array<const char*, 2> argv{"prog", "--count=7"};
  ASSERT_TRUE(parser.parse(2, argv.data()));
  EXPECT_EQ(count, 7);
}

TEST(ArgParser, DefaultsSurviveWhenUnset) {
  int count = 9;
  ArgParser parser("test");
  parser.add_int("count", "", &count);
  const std::array<const char*, 1> argv{"prog"};
  ASSERT_TRUE(parser.parse(1, argv.data()));
  EXPECT_EQ(count, 9);
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser parser("test");
  const std::array<const char*, 2> argv{"prog", "--nope"};
  EXPECT_THROW(parser.parse(2, argv.data()), ConfigError);
}

TEST(ArgParser, MissingValueThrows) {
  int count = 0;
  ArgParser parser("test");
  parser.add_int("count", "", &count);
  const std::array<const char*, 2> argv{"prog", "--count"};
  EXPECT_THROW(parser.parse(2, argv.data()), ConfigError);
}

TEST(ArgParser, MalformedNumberThrows) {
  int count = 0;
  double ratio = 0;
  ArgParser parser("test");
  parser.add_int("count", "", &count);
  parser.add_double("ratio", "", &ratio);
  {
    const std::array<const char*, 3> argv{"prog", "--count", "12x"};
    EXPECT_THROW(parser.parse(3, argv.data()), ConfigError);
  }
  {
    const std::array<const char*, 3> argv{"prog", "--ratio", "abc"};
    EXPECT_THROW(parser.parse(3, argv.data()), ConfigError);
  }
}

TEST(ArgParser, FlagRejectsValue) {
  bool flag = false;
  ArgParser parser("test");
  parser.add_flag("flag", "", &flag);
  const std::array<const char*, 2> argv{"prog", "--flag=true"};
  EXPECT_THROW(parser.parse(2, argv.data()), ConfigError);
}

TEST(ArgParser, PositionalArgumentRejected) {
  ArgParser parser("test");
  const std::array<const char*, 2> argv{"prog", "stray"};
  EXPECT_THROW(parser.parse(2, argv.data()), ConfigError);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser("test tool");
  const std::array<const char*, 2> argv{"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv.data()));
}

TEST(ArgParser, HelpTextMentionsOptionsAndDefaults) {
  int count = 3;
  ArgParser parser("my tool");
  parser.add_int("count", "how many", &count);
  const std::string help = parser.help_text();
  EXPECT_NE(help.find("my tool"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
  EXPECT_NE(help.find("default: 3"), std::string::npos);
}

TEST(ArgParser, DuplicateOptionNameRejected) {
  int a = 0;
  int b = 0;
  ArgParser parser("test");
  parser.add_int("x", "", &a);
  EXPECT_THROW(parser.add_int("x", "", &b), Error);
}

TEST(ArgParser, NegativeNumbersParse) {
  int count = 0;
  double ratio = 0;
  ArgParser parser("test");
  parser.add_int("count", "", &count);
  parser.add_double("ratio", "", &ratio);
  const std::array<const char*, 5> argv{"prog", "--count", "-4", "--ratio",
                                        "-1.5"};
  ASSERT_TRUE(parser.parse(5, argv.data()));
  EXPECT_EQ(count, -4);
  EXPECT_DOUBLE_EQ(ratio, -1.5);
}

}  // namespace
}  // namespace anacin

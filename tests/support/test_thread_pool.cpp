#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace anacin {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; }, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForLargeGrain) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 1000, [&](std::size_t i) { sum += static_cast<long>(i); },
                    250);
  EXPECT_EQ(sum.load(), 999L * 1000L / 2);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A worker calling parallel_for on its own pool used to block on chunks
  // that could never be scheduled (every worker waiting, queue full). A
  // one-thread pool makes the old deadlock deterministic.
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 4, [&](std::size_t i) {
    pool.parallel_for(0, 8, [&](std::size_t j) {
      sum += static_cast<long>(i * 8 + j);
    });
  });
  EXPECT_EQ(sum.load(), 31L * 32L / 2);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::size_t i) {
                                   pool.parallel_for(0, 4, [&](std::size_t j) {
                                     if (i == 1 && j == 2) {
                                       throw std::runtime_error("nested");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForFromSubmittedTask) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  auto done = pool.submit([&] {
    pool.parallel_for(0, 16, [&](std::size_t) { ++count; });
  });
  done.get();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedParallelForUnderSaturation) {
  // Every worker runs a nested parallel_for at once, so all of them must
  // help-drain (and steal from each other) simultaneously — the shape
  // that deadlocked the pre-work-stealing pool under load.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 32, [&](std::size_t i) {
    pool.parallel_for(0, 16, [&](std::size_t j) {
      sum += static_cast<long>(i * 16 + j);
    });
  });
  EXPECT_EQ(sum.load(), 511L * 512L / 2);
}

TEST(ThreadPool, DeeplyNestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) {
    pool.parallel_for(0, 3, [&](std::size_t) {
      pool.parallel_for(0, 3, [&](std::size_t) { ++count; });
    });
  });
  EXPECT_EQ(count.load(), 27);
}

TEST(ThreadPool, StealingBalancesExternalBurst) {
  // External submits round-robin across worker deques; idle workers must
  // steal to finish a burst even when the round-robin lands unevenly.
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, CancelDuringSaturatedNestedWork) {
  // Cancellation must drain cleanly while every worker is busy stealing
  // nested chunks; in-flight items finish, unstarted ones are skipped.
  ThreadPool pool(8);
  CancelToken token;
  std::atomic<int> executed{0};
  pool.parallel_for(
      0, 64,
      [&](std::size_t i) {
        pool.parallel_for(0, 8, [&](std::size_t) { ++executed; });
        if (i == 0) token.cancel();
      },
      1, &token);
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(executed.load(), 8);
  EXPECT_LE(executed.load(), 64 * 8);
}

TEST(CancelToken, StartsClearAndSticksUntilReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ThreadPool, PreCancelledTokenSkipsAllItems) {
  ThreadPool pool(2);
  CancelToken token;
  token.cancel();
  std::atomic<int> executed{0};
  // Cancellation is not an error: parallel_for returns normally and the
  // caller inspects the token.
  pool.parallel_for(0, 64, [&](std::size_t) { ++executed; }, 1, &token);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPool, CancelMidFlightSkipsUnstartedItems) {
  ThreadPool pool(2);
  CancelToken token;
  std::atomic<int> executed{0};
  pool.parallel_for(
      0, 256,
      [&](std::size_t i) {
        ++executed;
        if (i == 0) token.cancel();
      },
      1, &token);
  // Item 0 always runs; everything not yet started when the token flipped
  // is skipped. With 2 workers that leaves far fewer than 256 executions.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), 256);
}

TEST(ThreadPool, ExceptionCancelsUnstartedItems) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 256,
                        [&](std::size_t i) {
                          ++executed;
                          if (i == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  EXPECT_LT(executed.load(), 256);
}

TEST(ThreadPool, NullTokenBehavesAsBefore) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 32, [&](std::size_t) { ++count; }, 4, nullptr);
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace anacin

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/error.hpp"

namespace anacin {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(11);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, DerivedStreamsAreIndependent) {
  const Rng parent(99);
  Rng child_a = parent.derive(0);
  Rng child_b = parent.derive(1);
  Rng child_a2 = parent.derive(0);
  int same_ab = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = child_a.next_u64();
    const auto b = child_b.next_u64();
    EXPECT_EQ(a, child_a2.next_u64());  // derivation is deterministic
    if (a == b) ++same_ab;
  }
  EXPECT_EQ(same_ab, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(10, 10);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(5);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Mix64, HashCombineOrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(Mix64, MixesSequentialValues) {
  // Low-entropy inputs should map to well-spread outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

}  // namespace
}  // namespace anacin

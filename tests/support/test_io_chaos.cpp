#include "support/io_chaos.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <vector>

#include "support/error.hpp"

namespace anacin::support {
namespace {

using io_chaos::WriteFault;

/// Every test starts from a clean engine: no installed config, no
/// environment spec, no compat budget, durability unresolved. TearDown
/// repeats the reset so a chaos config installed here can never leak into
/// the other test_support suites (test_fs in particular writes files).
class IoChaosTest : public ::testing::Test {
protected:
  void SetUp() override {
    ::unsetenv("ANACIN_IO_CHAOS");
    ::unsetenv("ANACIN_FAIL_WRITE_AFTER");
    ::unsetenv("ANACIN_DURABILITY");
    io_chaos::reset_for_tests();
  }
  void TearDown() override { SetUp(); }

  static std::vector<WriteFault::Kind> draw(PathClass path_class, int n) {
    std::vector<WriteFault::Kind> kinds;
    kinds.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      kinds.push_back(io_chaos::next_write_fault(path_class).kind);
    }
    return kinds;
  }
};

TEST_F(IoChaosTest, DefaultConfigIsDisabled) {
  const IoChaosConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_TRUE(config.in_scope(PathClass::kJournal));
  EXPECT_TRUE(config.in_scope(PathClass::kOther));
}

TEST_F(IoChaosTest, ParseFullSpecRoundTrips) {
  const IoChaosConfig config = IoChaosConfig::parse(
      "seed=7, enospc=0.05, eio=0.01, open_fail=0.02, rename_fail=0.03, "
      "fsync_drop=0.1, crash_after=12, scope=journal+store");
  EXPECT_EQ(config.seed, 7u);
  EXPECT_DOUBLE_EQ(config.enospc, 0.05);
  EXPECT_DOUBLE_EQ(config.eio, 0.01);
  EXPECT_DOUBLE_EQ(config.open_fail, 0.02);
  EXPECT_DOUBLE_EQ(config.rename_fail, 0.03);
  EXPECT_DOUBLE_EQ(config.fsync_drop, 0.1);
  EXPECT_EQ(config.crash_after, 12);
  EXPECT_TRUE(config.scope_journal);
  EXPECT_TRUE(config.scope_store);
  EXPECT_FALSE(config.scope_report);
  EXPECT_FALSE(config.scope_other);
  EXPECT_TRUE(config.enabled());

  // spec() is the canonical form the CLI re-exports into ANACIN_IO_CHAOS
  // for worker children; parsing it back must change nothing.
  const IoChaosConfig reparsed = IoChaosConfig::parse(config.spec());
  EXPECT_EQ(reparsed.spec(), config.spec());
  EXPECT_EQ(reparsed.crash_after, config.crash_after);
  EXPECT_EQ(reparsed.scope_report, config.scope_report);
}

TEST_F(IoChaosTest, ParseRejectsMalformedSpecs) {
  // A typo'd chaos spec silently running a clean campaign would invalidate
  // the experiment, so every malformation is a hard error.
  EXPECT_THROW(IoChaosConfig::parse("enospc"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("turbo=1"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("enospc=pony"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("enospc=0.5x"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("enospc=1.5"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("eio=-0.1"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("crash_after=12abc"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("crash_after=-2"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("scope=journal+disk"), ConfigError);
  EXPECT_THROW(IoChaosConfig::parse("seed="), ConfigError);
}

TEST_F(IoChaosTest, ScopeAllKeywordRestoresEveryClass) {
  const IoChaosConfig config = IoChaosConfig::parse("scope=store,scope=all");
  EXPECT_TRUE(config.scope_journal && config.scope_store &&
              config.scope_report && config.scope_other);
}

TEST_F(IoChaosTest, InScopeFollowsScopeFlags) {
  const IoChaosConfig config = IoChaosConfig::parse("enospc=1,scope=report");
  EXPECT_FALSE(config.in_scope(PathClass::kJournal));
  EXPECT_FALSE(config.in_scope(PathClass::kStore));
  EXPECT_TRUE(config.in_scope(PathClass::kReport));
  EXPECT_FALSE(config.in_scope(PathClass::kOther));
}

TEST_F(IoChaosTest, SummaryListsOnlyActiveKnobs) {
  const IoChaosConfig config =
      IoChaosConfig::parse("seed=3,eio=0.25,scope=journal");
  const std::string summary = config.summary();
  EXPECT_NE(summary.find("seed=3"), std::string::npos);
  EXPECT_NE(summary.find("eio=0.25"), std::string::npos);
  EXPECT_NE(summary.find("scope=journal"), std::string::npos);
  EXPECT_EQ(summary.find("enospc"), std::string::npos);
  EXPECT_EQ(summary.find("crash_after"), std::string::npos);
}

TEST_F(IoChaosTest, NoConfigMeansNoFaults) {
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(io_chaos::next_write_fault(PathClass::kOther).kind,
              WriteFault::Kind::kNone);
    EXPECT_FALSE(io_chaos::fail_rename(PathClass::kStore));
  }
  EXPECT_EQ(io_chaos::injected_fault_count(), 0u);
}

TEST_F(IoChaosTest, FaultStreamIsDeterministicPerSeed) {
  const IoChaosConfig config =
      IoChaosConfig::parse("seed=42,enospc=0.4,eio=0.4,rename_fail=0.2");
  install_io_chaos(config);
  const std::vector<WriteFault::Kind> first = draw(PathClass::kOther, 64);

  // Reinstalling restarts the stream from the seed: same decisions, same
  // order — a chaos campaign replays bit-for-bit.
  install_io_chaos(config);
  EXPECT_EQ(draw(PathClass::kOther, 64), first);

  // A different seed gives a different fault history.
  IoChaosConfig reseeded = config;
  reseeded.seed = 43;
  install_io_chaos(reseeded);
  EXPECT_NE(draw(PathClass::kOther, 64), first);
}

TEST_F(IoChaosTest, OutOfScopeOpsDoNotAdvanceTheStream) {
  const IoChaosConfig config =
      IoChaosConfig::parse("seed=11,enospc=0.5,scope=journal");
  install_io_chaos(config);
  const std::vector<WriteFault::Kind> journal_only =
      draw(PathClass::kJournal, 32);

  install_io_chaos(config);
  // Interleave out-of-scope store ops: they draw nothing and must not
  // perturb the journal's fault sequence.
  std::vector<WriteFault::Kind> interleaved;
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(io_chaos::next_write_fault(PathClass::kStore).kind,
              WriteFault::Kind::kNone);
    interleaved.push_back(io_chaos::next_write_fault(PathClass::kJournal).kind);
  }
  EXPECT_EQ(interleaved, journal_only);
}

TEST_F(IoChaosTest, CountsDurableOpsAndInjectedFaults) {
  install_io_chaos(IoChaosConfig::parse("enospc=1"));
  EXPECT_EQ(io_chaos::durable_op_count(), 0u);
  EXPECT_EQ(io_chaos::injected_fault_count(), 0u);
  EXPECT_EQ(io_chaos::next_write_fault(PathClass::kOther).kind,
            WriteFault::Kind::kEnospc);
  EXPECT_EQ(io_chaos::injected_fault_count(), 1u);
  io_chaos::note_durable_op();
  io_chaos::note_durable_op();
  EXPECT_EQ(io_chaos::durable_op_count(), 2u);
}

TEST_F(IoChaosTest, CrashAfterKillsTheProcessOnTheExactOp) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        install_io_chaos(IoChaosConfig::parse("crash_after=2"));
        io_chaos::note_durable_op();  // op 1: survives
        io_chaos::note_durable_op();  // op 2: SIGKILL, no cleanup
        std::exit(0);                 // must never be reached
      },
      ::testing::KilledBySignal(SIGKILL), "");
}

TEST_F(IoChaosTest, EnvironmentSpecIsAdoptedLazily) {
  ::setenv("ANACIN_IO_CHAOS", "seed=9,eio=1.0", 1);
  io_chaos::reset_for_tests();
  const std::optional<IoChaosConfig> active = active_io_chaos();
  ASSERT_TRUE(active.has_value());
  EXPECT_DOUBLE_EQ(active->eio, 1.0);
  EXPECT_EQ(io_chaos::next_write_fault(PathClass::kOther).kind,
            WriteFault::Kind::kEio);
}

TEST_F(IoChaosTest, MalformedEnvironmentSpecThrows) {
  ::setenv("ANACIN_IO_CHAOS", "enospc=lots", 1);
  io_chaos::reset_for_tests();
  EXPECT_THROW(active_io_chaos(), ConfigError);
}

TEST_F(IoChaosTest, ExplicitInstallOutranksTheEnvironment) {
  ::setenv("ANACIN_IO_CHAOS", "eio=1.0", 1);
  install_io_chaos(std::nullopt);  // "no chaos", despite the env var
  EXPECT_FALSE(active_io_chaos().has_value());
  EXPECT_EQ(io_chaos::next_write_fault(PathClass::kOther).kind,
            WriteFault::Kind::kNone);
}

TEST_F(IoChaosTest, FailWriteAfterBudgetIsOneShot) {
  io_chaos::set_fail_write_after(2);
  EXPECT_FALSE(io_chaos::consume_fail_write_after());
  EXPECT_FALSE(io_chaos::consume_fail_write_after());
  EXPECT_TRUE(io_chaos::consume_fail_write_after());
  // The injection disarms itself: the process recovers afterwards.
  EXPECT_FALSE(io_chaos::consume_fail_write_after());
}

TEST_F(IoChaosTest, FailWriteAfterEnvIsStrictlyParsed) {
  // The historical hook used std::strtoll, so "12abc" silently became 12
  // and "pony" became "never fail" — both now refuse to run.
  ::setenv("ANACIN_FAIL_WRITE_AFTER", "12abc", 1);
  io_chaos::reset_for_tests();
  EXPECT_THROW(io_chaos::consume_fail_write_after(), ConfigError);

  ::setenv("ANACIN_FAIL_WRITE_AFTER", "-5", 1);
  io_chaos::reset_for_tests();
  EXPECT_THROW(io_chaos::consume_fail_write_after(), ConfigError);

  ::setenv("ANACIN_FAIL_WRITE_AFTER", "1", 1);
  io_chaos::reset_for_tests();
  EXPECT_FALSE(io_chaos::consume_fail_write_after());
  EXPECT_TRUE(io_chaos::consume_fail_write_after());
}

TEST_F(IoChaosTest, DurabilityParsesStrictly) {
  EXPECT_EQ(parse_durability("none"), Durability::kNone);
  EXPECT_EQ(parse_durability("commit"), Durability::kCommit);
  EXPECT_EQ(parse_durability("paranoid"), Durability::kParanoid);
  EXPECT_THROW(parse_durability("NONE"), ConfigError);
  EXPECT_THROW(parse_durability("max"), ConfigError);
  EXPECT_STREQ(durability_name(Durability::kCommit), "commit");
}

TEST_F(IoChaosTest, DurabilityResolvesFromEnvironmentOnce) {
  EXPECT_EQ(durability_level(), Durability::kNone);  // default

  ::setenv("ANACIN_DURABILITY", "commit", 1);
  io_chaos::reset_for_tests();
  EXPECT_EQ(durability_level(), Durability::kCommit);

  // An explicit set (the --durability flag) overrides the environment.
  set_durability(Durability::kParanoid);
  EXPECT_EQ(durability_level(), Durability::kParanoid);

  ::setenv("ANACIN_DURABILITY", "extreme", 1);
  io_chaos::reset_for_tests();
  EXPECT_THROW(durability_level(), ConfigError);
}

}  // namespace
}  // namespace anacin::support

#include "support/log.hpp"

#include <gtest/gtest.h>

namespace anacin::log {
namespace {

class LogThresholdGuard {
public:
  LogThresholdGuard() : saved_(threshold()) {}
  ~LogThresholdGuard() { set_threshold(saved_); }

private:
  Level saved_;
};

TEST(Log, ThresholdIsAdjustable) {
  const LogThresholdGuard guard;
  set_threshold(Level::kDebug);
  EXPECT_EQ(threshold(), Level::kDebug);
  set_threshold(Level::kError);
  EXPECT_EQ(threshold(), Level::kError);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(level_name(Level::kDebug), "DEBUG");
  EXPECT_STREQ(level_name(Level::kInfo), "INFO");
  EXPECT_STREQ(level_name(Level::kWarn), "WARN");
  EXPECT_STREQ(level_name(Level::kError), "ERROR");
  EXPECT_STREQ(level_name(Level::kOff), "OFF");
}

TEST(Log, MacroRespectsThreshold) {
  const LogThresholdGuard guard;
  set_threshold(Level::kOff);
  int evaluations = 0;
  // The stream expression must not be evaluated below the threshold.
  ANACIN_LOG_DEBUG("count " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  set_threshold(Level::kDebug);
  testing::internal::CaptureStderr();
  ANACIN_LOG_DEBUG("count " << ++evaluations);
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(output.find("[anacin:DEBUG] count 1"), std::string::npos);
}

TEST(Log, WriteEmitsPrefixedLine) {
  testing::internal::CaptureStderr();
  write(Level::kWarn, "something odd");
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output, "[anacin:WARN] something odd\n");
}

}  // namespace
}  // namespace anacin::log

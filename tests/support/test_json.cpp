#include "support/json.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace anacin::json {
namespace {

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Value(1).as_string(), ParseError);
  EXPECT_THROW(Value("x").as_number(), ParseError);
  EXPECT_THROW(Value(true).at(0), ParseError);
  EXPECT_THROW(Value(true).at("k"), ParseError);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Value obj = Value::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  const auto& members = obj.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "zebra");
  EXPECT_EQ(members[1].first, "alpha");
  EXPECT_EQ(members[2].first, "mid");
}

TEST(Json, CanonicalDumpIsKeyOrderIndependent) {
  // Two semantically equal documents built in different insertion orders
  // must serialize byte-identically — this is what makes artifact-store
  // keys (digests of dump_canonical) stable.
  Value a = Value::object();
  a.set("pattern", "amg2013");
  a.set("ranks", 16);
  Value nested_a = Value::object();
  nested_a.set("seed", 7);
  nested_a.set("nd", 0.5);
  a.set("sim", std::move(nested_a));

  Value b = Value::object();
  Value nested_b = Value::object();
  nested_b.set("nd", 0.5);
  nested_b.set("seed", 7);
  b.set("sim", std::move(nested_b));
  b.set("ranks", 16);
  b.set("pattern", "amg2013");

  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.dump_canonical(), b.dump_canonical());
  // Keys are sorted at every level and output is compact.
  EXPECT_EQ(a.dump_canonical(),
            "{\"pattern\":\"amg2013\",\"ranks\":16,"
            "\"sim\":{\"nd\":0.5,\"seed\":7}}");
  // The regular dump still preserves insertion order.
  EXPECT_NE(a.dump(), b.dump());
}

TEST(Json, CanonicalDumpParsesBackEqual) {
  Value doc = Value::object();
  doc.set("zebra", Value::array_of<int>({3, 1, 2}));
  doc.set("alpha", true);
  const Value reparsed = parse(doc.dump_canonical());
  EXPECT_TRUE(reparsed == doc);
}

TEST(Json, ObjectSetOverwrites) {
  Value obj = Value::object();
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 2);
}

TEST(Json, FindMissingReturnsNull) {
  Value obj = Value::object();
  obj.set("present", 1);
  EXPECT_NE(obj.find("present"), nullptr);
  EXPECT_EQ(obj.find("absent"), nullptr);
  EXPECT_THROW(obj.at("absent"), ParseError);
}

TEST(Json, DumpCompactRoundTrip) {
  Value doc = Value::object();
  doc.set("name", "anacin");
  doc.set("count", 3);
  doc.set("ratio", 0.25);
  doc.set("ok", true);
  doc.set("nothing", nullptr);
  Value list = Value::array();
  list.push_back(1);
  list.push_back("two");
  doc.set("list", std::move(list));

  const Value parsed = parse(doc.dump());
  EXPECT_EQ(parsed, doc);
}

TEST(Json, DumpIndentedParses) {
  Value doc = Value::object();
  Value inner = Value::object();
  inner.set("x", 1);
  doc.set("inner", std::move(inner));
  const std::string text = doc.dump(2);
  EXPECT_NE(text.find('\n'), std::string::npos);
  EXPECT_EQ(parse(text), doc);
}

TEST(Json, EscapesSpecialCharacters) {
  Value doc = Value::object();
  doc.set("s", "line\nquote\"back\\slash\ttab");
  const Value parsed = parse(doc.dump());
  EXPECT_EQ(parsed.at("s").as_string(), "line\nquote\"back\\slash\ttab");
}

TEST(Json, ParseUnicodeEscape) {
  const Value v = parse(R"("aAb")");
  EXPECT_EQ(v.as_string(), "aAb");
}

TEST(Json, ParseNumbers) {
  EXPECT_DOUBLE_EQ(parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(parse("-2e3").as_number(), -2000.0);
  EXPECT_EQ(parse("12").as_int(), 12);
}

TEST(Json, LargeIntegerRoundTripsExactly) {
  Value v(std::int64_t{1234567890123});
  EXPECT_EQ(parse(v.dump()).as_int(), 1234567890123);
}

TEST(Json, ParseLiterals) {
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_TRUE(parse("null").is_null());
}

TEST(Json, ParseNestedContainers) {
  const Value doc = parse(R"({"a": [1, {"b": [true, null]}], "c": {}})");
  EXPECT_EQ(doc.at("a").at(1).at("b").at(0).as_bool(), true);
  EXPECT_TRUE(doc.at("c").is_object());
  EXPECT_EQ(doc.at("c").size(), 0u);
}

TEST(Json, ParseWhitespaceTolerant) {
  const Value doc = parse("  {\n\t\"a\" :  1 , \"b\" : [ ]\r\n}  ");
  EXPECT_EQ(doc.at("a").as_int(), 1);
  EXPECT_EQ(doc.at("b").size(), 0u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("{\"a\" 1}"), ParseError);
}

TEST(Json, ArrayOfHelper) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const Value arr = Value::array_of(values);
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr.at(2).as_number(), 3.0);
}

TEST(Json, EqualityIsDeep) {
  const Value a = parse(R"({"x": [1, 2]})");
  const Value b = parse(R"({"x": [1, 2]})");
  const Value c = parse(R"({"x": [2, 1]})");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace anacin::json

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "kernels/kernel.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace anacin::kernels {
namespace {

graph::EventGraph mesh_graph(double nd, std::uint64_t seed) {
  sim::SimConfig config;
  config.num_ranks = 8;
  config.seed = seed;
  config.network.nd_fraction = nd;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [](sim::Comm& comm) {
                            const int n = comm.size();
                            for (int lap = 0; lap < 3; ++lap) {
                              std::vector<sim::Request> requests;
                              requests.push_back(comm.irecv());
                              requests.push_back(comm.irecv());
                              comm.send((comm.rank() + 1) % n, 0);
                              comm.send((comm.rank() + 3) % n, 0);
                              (void)comm.wait_all(requests);
                            }
                          })
          .trace;
  return graph::EventGraph::from_trace(trace);
}

TEST(GraphletKernel, IdenticalGraphsAtDistanceZero) {
  const GraphletSamplingKernel kernel;
  const LabeledGraph a =
      build_labeled_graph(mesh_graph(0.0, 1), LabelPolicy::kTypePeer);
  const LabeledGraph b =
      build_labeled_graph(mesh_graph(0.0, 2), LabelPolicy::kTypePeer);
  EXPECT_DOUBLE_EQ(kernel.distance(a, b), 0.0);
}

TEST(GraphletKernel, FeaturesAreDeterministic) {
  const GraphletSamplingKernel kernel;
  const LabeledGraph g =
      build_labeled_graph(mesh_graph(1.0, 5), LabelPolicy::kTypePeer);
  const FeatureVector f1 = kernel.features(g);
  const FeatureVector f2 = kernel.features(g);
  EXPECT_EQ(f1, f2);
  EXPECT_DOUBLE_EQ(kernel_distance(f1, f2), 0.0);
}

TEST(GraphletKernel, DetectsRacingRuns) {
  const GraphletSamplingKernel kernel(16);
  const LabeledGraph a =
      build_labeled_graph(mesh_graph(1.0, 1), LabelPolicy::kTypePeer);
  const LabeledGraph b =
      build_labeled_graph(mesh_graph(1.0, 99), LabelPolicy::kTypePeer);
  EXPECT_GT(kernel.distance(a, b), 0.0);
}

TEST(GraphletKernel, HandlesDegenerateGraphs) {
  const GraphletSamplingKernel kernel;
  LabeledGraph isolated;
  isolated.labels = {1, 2, 3};
  isolated.neighbors.resize(3);  // no edges: no 3-node graphlets
  EXPECT_TRUE(kernel.features(isolated).empty());
  EXPECT_TRUE(kernel.features(LabeledGraph{}).empty());
}

TEST(GraphletKernel, ConstructibleViaSpec) {
  EXPECT_EQ(make_kernel("graphlet_sampling")->name(), "graphlet_sampling");
}

/// WL features must be invariant under node renumbering: permuting a
/// labelled graph's node ids cannot change its feature multiset. This is
/// the core soundness property that makes cross-run comparisons
/// meaningful (runs build their graphs in different event orders).
class WlPermutationInvariance
    : public ::testing::TestWithParam<std::uint64_t> {};

LabeledGraph permute(const LabeledGraph& graph, Rng& rng) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::uint32_t> mapping(n);
  std::iota(mapping.begin(), mapping.end(), 0u);
  rng.shuffle(mapping);
  LabeledGraph permuted;
  permuted.labels.resize(n);
  permuted.neighbors.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    permuted.labels[mapping[v]] = graph.labels[v];
    for (const auto& [w, is_out] : graph.neighbors[v]) {
      permuted.neighbors[mapping[v]].emplace_back(mapping[w], is_out);
    }
  }
  return permuted;
}

TEST_P(WlPermutationInvariance, FeaturesUnchangedByRelabeling) {
  Rng rng(GetParam());
  const LabeledGraph original =
      build_labeled_graph(mesh_graph(1.0, GetParam()), LabelPolicy::kTypePeer);
  const LabeledGraph shuffled = permute(original, rng);

  for (const unsigned depth : {0u, 1u, 2u, 3u}) {
    const WLSubtreeKernel kernel(depth);
    const FeatureVector fa = kernel.features(original);
    const FeatureVector fb = kernel.features(shuffled);
    EXPECT_EQ(fa, fb) << "depth " << depth;
  }
  // Histogram kernels share the property.
  EXPECT_EQ(VertexHistogramKernel().features(original),
            VertexHistogramKernel().features(shuffled));
  EXPECT_EQ(EdgeHistogramKernel().features(original),
            EdgeHistogramKernel().features(shuffled));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlPermutationInvariance,
                         ::testing::Values(1u, 2u, 3u, 11u, 23u));

}  // namespace
}  // namespace anacin::kernels

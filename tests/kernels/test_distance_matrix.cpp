#include "kernels/distance_matrix.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace anacin::kernels {
namespace {

std::vector<LabeledGraph> sample_graphs(int count, double nd) {
  std::vector<LabeledGraph> graphs;
  for (int i = 0; i < count; ++i) {
    sim::SimConfig config;
    config.num_ranks = 5;
    config.seed = static_cast<std::uint64_t>(i) + 1;
    config.network.nd_fraction = nd;
    const trace::Trace trace =
        sim::run_simulation(config,
                            [](sim::Comm& comm) {
                              if (comm.rank() == 0) {
                                for (int k = 0; k < comm.size() - 1; ++k) {
                                  (void)comm.recv();
                                }
                              } else {
                                comm.send(0, 0);
                              }
                            })
            .trace;
    graphs.push_back(build_labeled_graph(
        graph::EventGraph::from_trace(trace), LabelPolicy::kTypePeer));
  }
  return graphs;
}

TEST(DistanceMatrix, SymmetricWithZeroDiagonal) {
  ThreadPool pool(2);
  const WLSubtreeKernel kernel(2);
  const auto graphs = sample_graphs(6, 1.0);
  const DistanceMatrix matrix = pairwise_distances(kernel, graphs, pool);
  ASSERT_EQ(matrix.size, 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(matrix.at(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), matrix.at(j, i));
      EXPECT_GE(matrix.at(i, j), 0.0);
    }
  }
}

TEST(DistanceMatrix, UpperTriangleSizeAndContent) {
  ThreadPool pool(2);
  const WLSubtreeKernel kernel(1);
  const auto graphs = sample_graphs(5, 1.0);
  const DistanceMatrix matrix = pairwise_distances(kernel, graphs, pool);
  const auto flat = matrix.upper_triangle();
  ASSERT_EQ(flat.size(), 10u);
  std::size_t index = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(flat[index++], matrix.at(i, j));
    }
  }
}

TEST(DistanceMatrix, IdenticalRunsGiveAllZeros) {
  ThreadPool pool(2);
  const WLSubtreeKernel kernel(2);
  const auto graphs = sample_graphs(4, 0.0);  // nd=0: all runs identical
  const DistanceMatrix matrix = pairwise_distances(kernel, graphs, pool);
  for (const double d : matrix.values) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(DistancesToReference, MatchesDirectComputation) {
  ThreadPool pool(2);
  const WLSubtreeKernel kernel(2);
  const auto graphs = sample_graphs(5, 1.0);
  const auto distances =
      distances_to_reference(kernel, graphs[0], graphs, pool);
  ASSERT_EQ(distances.size(), 5u);
  EXPECT_DOUBLE_EQ(distances[0], 0.0);  // reference vs itself
  for (std::size_t i = 1; i < 5; ++i) {
    const double direct =
        kernel_distance(kernel.features(graphs[0]), kernel.features(graphs[i]));
    EXPECT_DOUBLE_EQ(distances[i], direct);
  }
}

TEST(DistanceMatrix, SingleGraph) {
  ThreadPool pool(1);
  const VertexHistogramKernel kernel;
  const auto graphs = sample_graphs(1, 1.0);
  const DistanceMatrix matrix = pairwise_distances(kernel, graphs, pool);
  EXPECT_EQ(matrix.size, 1u);
  EXPECT_TRUE(matrix.upper_triangle().empty());
}

}  // namespace
}  // namespace anacin::kernels

#include "kernels/batch_engine.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/distance_matrix.hpp"
#include "kernels/kernel.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace anacin::kernels {
namespace {

graph::EventGraph mesh_graph(std::uint64_t seed) {
  sim::SimConfig config;
  config.num_ranks = 8;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [](sim::Comm& comm) {
                            const int n = comm.size();
                            for (int lap = 0; lap < 3; ++lap) {
                              std::vector<sim::Request> requests;
                              requests.push_back(comm.irecv());
                              requests.push_back(comm.irecv());
                              comm.send((comm.rank() + 1) % n, 0);
                              comm.send((comm.rank() + 3) % n, 0);
                              (void)comm.wait_all(requests);
                            }
                          })
          .trace;
  return graph::EventGraph::from_trace(trace);
}

std::vector<LabeledGraph> labeled_runs(std::size_t count) {
  std::vector<LabeledGraph> graphs;
  graphs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    graphs.push_back(
        build_labeled_graph(mesh_graph(i + 1), LabelPolicy::kTypePeer));
  }
  return graphs;
}

std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

/// Every kernel spec the batched engine must reproduce bit-for-bit,
/// including all WL depths the paper's course module sweeps.
const std::vector<std::string> kAllSpecs = {
    "wl:0", "wl:1", "wl:2", "wl:3", "wl:4",
    "vertex_histogram", "edge_histogram", "graphlet_sampling"};

/// The byte-identity contract: the tiled all-pairs sweep must equal the
/// naive per-pair reference (`kernel_distance(features(a), features(b))`)
/// in every bit of every distance, for every kernel family.
TEST(BatchEngine, PairwiseMatchesNaivePerPairBitwise) {
  const std::vector<LabeledGraph> graphs = labeled_runs(13);
  ThreadPool pool(2);
  for (const std::string& spec : kAllSpecs) {
    const auto kernel = make_kernel(spec);
    const DistanceMatrix batched = pairwise_distances(*kernel, graphs, pool);
    ASSERT_EQ(batched.size, graphs.size());

    std::vector<FeatureVector> naive_features;
    naive_features.reserve(graphs.size());
    for (const LabeledGraph& g : graphs) {
      naive_features.push_back(kernel->features(g));
    }
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      EXPECT_EQ(bits(batched.at(i, i)), bits(0.0)) << spec;
      for (std::size_t j = i + 1; j < graphs.size(); ++j) {
        const double naive =
            kernel_distance(naive_features[i], naive_features[j]);
        EXPECT_EQ(bits(batched.at(i, j)), bits(naive))
            << spec << " pair (" << i << ", " << j << ")";
        EXPECT_EQ(bits(batched.at(j, i)), bits(naive))
            << spec << " transpose (" << j << ", " << i << ")";
      }
    }
  }
}

TEST(BatchEngine, ReferenceSweepMatchesNaiveBitwise) {
  const std::vector<LabeledGraph> graphs = labeled_runs(9);
  const LabeledGraph reference =
      build_labeled_graph(mesh_graph(77), LabelPolicy::kTypePeer);
  ThreadPool pool(2);
  for (const std::string& spec : kAllSpecs) {
    const auto kernel = make_kernel(spec);
    const std::vector<double> batched =
        distances_to_reference(*kernel, reference, graphs, pool);
    ASSERT_EQ(batched.size(), graphs.size());
    const FeatureVector reference_features = kernel->features(reference);
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      const double naive =
          kernel_distance(reference_features, kernel->features(graphs[i]));
      EXPECT_EQ(bits(batched[i]), bits(naive)) << spec << " run " << i;
    }
  }
}

TEST(BatchEngine, HandlesEmptyAndSingletonInputs) {
  ThreadPool pool(2);
  const auto kernel = make_kernel("wl:2");
  EXPECT_EQ(pairwise_distances(*kernel, {}, pool).size, 0u);

  const std::vector<LabeledGraph> one = labeled_runs(1);
  const DistanceMatrix single = pairwise_distances(*kernel, one, pool);
  ASSERT_EQ(single.size, 1u);
  EXPECT_EQ(bits(single.at(0, 0)), bits(0.0));
}

TEST(BatchEngine, EmptyHistogramsAreAtDistanceZero) {
  // Degenerate graphs produce empty feature vectors; the sweep must not
  // trip over an empty vocabulary.
  ThreadPool pool(2);
  const auto kernel = make_kernel("graphlet_sampling");
  std::vector<LabeledGraph> isolated(3);
  for (auto& g : isolated) {
    g.labels = {1, 2};
    g.neighbors.resize(2);
  }
  const DistanceMatrix matrix = pairwise_distances(*kernel, isolated, pool);
  for (const double value : matrix.values) {
    EXPECT_EQ(bits(value), bits(0.0));
  }
}

/// Property test: the sparse merge-join dot must equal a dense
/// scatter/gather reference — the exact strategy the batched sweep uses —
/// bit for bit, on randomized histograms (shared ids, disjoint ids,
/// integer counts of wildly different magnitudes).
TEST(SparseHistogram, DotMatchesDenseReferenceOnRandomInputs) {
  Rng rng(0xD07);
  constexpr std::size_t kUniverse = 512;
  for (int trial = 0; trial < 200; ++trial) {
    SparseHistogram a;
    SparseHistogram b;
    std::vector<double> dense_a(kUniverse, 0.0);
    std::vector<double> dense_b(kUniverse, 0.0);
    for (std::uint64_t id = 0; id < kUniverse; ++id) {
      // ~25% of ids in each histogram; overlaps arise naturally.
      if (rng.uniform_int(0, 3) == 0) {
        const double count = static_cast<double>(rng.uniform_int(1, 1 << 20));
        a.push(id * 0x9E3779B9u, count);  // scattered, still ascending
        dense_a[id] = count;
      }
      if (rng.uniform_int(0, 3) == 0) {
        const double count = static_cast<double>(rng.uniform_int(1, 1 << 20));
        b.push(id * 0x9E3779B9u, count);
        dense_b[id] = count;
      }
    }
    // Dense reference accumulates every slot in ascending id order; the
    // interleaved zero products must not change any bit (all products are
    // non-negative, and x + 0.0 == x bitwise for x >= +0.0).
    double dense_dot = 0.0;
    for (std::size_t i = 0; i < kUniverse; ++i) {
      dense_dot += dense_a[i] * dense_b[i];
    }
    EXPECT_EQ(bits(dot(a, b)), bits(dense_dot)) << "trial " << trial;
    EXPECT_EQ(bits(dot(a, b)), bits(dot(b, a))) << "trial " << trial;

    double self = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      self += a.counts[i] * a.counts[i];
    }
    EXPECT_EQ(bits(a.self_dot), bits(self)) << "trial " << trial;
  }
}

TEST(SparseHistogram, DotWithEmptyIsZero) {
  SparseHistogram empty;
  SparseHistogram loaded;
  loaded.push(3, 2.0);
  loaded.push(9, 5.0);
  EXPECT_EQ(bits(dot(empty, loaded)), bits(0.0));
  EXPECT_EQ(bits(dot(loaded, empty)), bits(0.0));
  EXPECT_EQ(bits(dot(empty, empty)), bits(0.0));
}

}  // namespace
}  // namespace anacin::kernels

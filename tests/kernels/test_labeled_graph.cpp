#include "kernels/labeled_graph.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::kernels {
namespace {

graph::EventGraph small_graph(std::uint64_t seed = 1, double nd = 0.0) {
  sim::SimConfig config;
  config.num_ranks = 3;
  config.seed = seed;
  config.network.nd_fraction = nd;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [](sim::Comm& comm) {
                            const auto frame =
                                comm.scoped_frame("app_phase");
                            if (comm.rank() == 0) {
                              (void)comm.recv();
                              (void)comm.recv();
                            } else {
                              comm.send(0, comm.rank());
                            }
                          })
          .trace;
  return graph::EventGraph::from_trace(trace);
}

TEST(LabelPolicy, NamesRoundTrip) {
  for (const LabelPolicy policy :
       {LabelPolicy::kTypeOnly, LabelPolicy::kTypePeer,
        LabelPolicy::kTypePeerTag, LabelPolicy::kTypeCallstack,
        LabelPolicy::kTypePeerCallstack}) {
    EXPECT_EQ(label_policy_from_name(label_policy_name(policy)), policy);
  }
  EXPECT_THROW(label_policy_from_name("nope"), ConfigError);
}

TEST(LabeledGraph, WholeGraphShape) {
  const graph::EventGraph eg = small_graph();
  const LabeledGraph lg = build_labeled_graph(eg, LabelPolicy::kTypePeer);
  EXPECT_EQ(lg.num_nodes(), eg.num_nodes());
  // Every directed edge appears twice (out at source, in at target).
  std::size_t degree_total = 0;
  for (const auto& adjacency : lg.neighbors) degree_total += adjacency.size();
  EXPECT_EQ(degree_total, 2 * eg.digraph().num_edges());
}

TEST(LabeledGraph, TypeOnlyLabelsCollapseSends) {
  const graph::EventGraph eg = small_graph();
  const LabeledGraph lg = build_labeled_graph(eg, LabelPolicy::kTypeOnly);
  // Both send events (ranks 1 and 2) share one label under kTypeOnly.
  const auto send1 = lg.labels[eg.node_of(1, 1)];
  const auto send2 = lg.labels[eg.node_of(2, 1)];
  EXPECT_EQ(send1, send2);
}

TEST(LabeledGraph, TypePeerSeparatesMatchedSources) {
  const graph::EventGraph eg = small_graph();
  const LabeledGraph lg = build_labeled_graph(eg, LabelPolicy::kTypePeer);
  // Rank 0's two receives matched different sources -> different labels.
  const auto recv_a = lg.labels[eg.node_of(0, 1)];
  const auto recv_b = lg.labels[eg.node_of(0, 2)];
  EXPECT_NE(recv_a, recv_b);
}

TEST(LabeledGraph, TagDistinguishesUnderPeerTag) {
  const graph::EventGraph eg = small_graph();
  // Senders used tag == their rank, so kTypePeerTag must differ from
  // kTypePeer only in label values, not structure.
  const LabeledGraph peer = build_labeled_graph(eg, LabelPolicy::kTypePeer);
  const LabeledGraph peer_tag =
      build_labeled_graph(eg, LabelPolicy::kTypePeerTag);
  EXPECT_EQ(peer.num_nodes(), peer_tag.num_nodes());
  EXPECT_NE(peer.labels, peer_tag.labels);
}

TEST(LabeledGraph, CallstackPolicyUsesPathStrings) {
  const graph::EventGraph a = small_graph(1);
  const graph::EventGraph b = small_graph(2);
  // Different runs build registries independently, but labels hash path
  // strings, so identical executions produce identical label multisets.
  const LabeledGraph la = build_labeled_graph(a, LabelPolicy::kTypeCallstack);
  LabeledGraph lb = build_labeled_graph(b, LabelPolicy::kTypeCallstack);
  std::vector<std::uint64_t> sa = la.labels;
  std::vector<std::uint64_t> sb = lb.labels;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

TEST(LabeledSubgraph, InducedEdgesOnly) {
  const graph::EventGraph eg = small_graph();
  // Take only rank 0's nodes: message edges to other ranks must vanish.
  std::vector<graph::NodeId> nodes;
  for (std::size_t i = 0; i < eg.rank_size(0); ++i) {
    nodes.push_back(eg.rank_base(0) + static_cast<graph::NodeId>(i));
  }
  const LabeledGraph sub =
      build_labeled_subgraph(eg, nodes, LabelPolicy::kTypePeer);
  EXPECT_EQ(sub.num_nodes(), nodes.size());
  std::size_t degree_total = 0;
  for (const auto& adjacency : sub.neighbors) degree_total += adjacency.size();
  // Only the program-order chain of rank 0 survives: (n-1) edges, twice.
  EXPECT_EQ(degree_total, 2 * (nodes.size() - 1));
}

TEST(LabeledSubgraph, EmptySubgraph) {
  const graph::EventGraph eg = small_graph();
  const LabeledGraph sub =
      build_labeled_subgraph(eg, {}, LabelPolicy::kTypePeer);
  EXPECT_EQ(sub.num_nodes(), 0u);
}

TEST(LabeledSubgraph, RejectsUnsortedInput) {
  const graph::EventGraph eg = small_graph();
  const std::vector<graph::NodeId> unsorted{2, 1};
  EXPECT_THROW(build_labeled_subgraph(eg, unsorted, LabelPolicy::kTypePeer),
               Error);
}

}  // namespace
}  // namespace anacin::kernels

#include "kernels/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::kernels {
namespace {

graph::EventGraph race_graph(int ranks, double nd, std::uint64_t seed) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [](sim::Comm& comm) {
                            if (comm.rank() == 0) {
                              for (int i = 0; i < comm.size() - 1; ++i) {
                                (void)comm.recv();
                              }
                            } else {
                              comm.send(0, 0);
                            }
                          })
          .trace;
  return graph::EventGraph::from_trace(trace);
}

/// Find two seeds whose races resolve differently (guaranteed quickly at
/// 100% ND with several senders).
std::pair<graph::EventGraph, graph::EventGraph> differing_runs(int ranks) {
  const graph::EventGraph first = race_graph(ranks, 1.0, 1);
  const VertexHistogramKernel probe;
  const LabeledGraph lg_first =
      build_labeled_graph(first, LabelPolicy::kTypePeer);
  for (std::uint64_t seed = 2; seed <= 50; ++seed) {
    graph::EventGraph candidate = race_graph(ranks, 1.0, seed);
    // Compare recv order on rank 0 directly.
    bool same = true;
    for (std::size_t i = 0; i < first.rank_size(0) && same; ++i) {
      const auto a = first.node(first.rank_base(0) +
                                static_cast<graph::NodeId>(i));
      const auto b = candidate.node(candidate.rank_base(0) +
                                    static_cast<graph::NodeId>(i));
      same = a.peer == b.peer;
    }
    if (!same) return {first, std::move(candidate)};
  }
  throw Error("no differing seed found — jitter model broken?");
}

TEST(FeatureVector, DotAndSelfDotAgree) {
  const graph::EventGraph g = race_graph(4, 0.0, 1);
  const WLSubtreeKernel kernel(2);
  const FeatureVector f =
      kernel.features(build_labeled_graph(g, LabelPolicy::kTypePeer));
  EXPECT_DOUBLE_EQ(dot(f, f), f.self_dot);
  EXPECT_GT(f.self_dot, 0.0);
}

TEST(KernelDistance, IdenticalGraphsAreAtDistanceZero) {
  const graph::EventGraph a = race_graph(4, 0.0, 1);
  const graph::EventGraph b = race_graph(4, 0.0, 2);  // nd=0: identical runs
  for (const auto* kernel_spec :
       {"wl:0", "wl:2", "vertex_histogram", "edge_histogram"}) {
    const auto kernel = make_kernel(kernel_spec);
    const double d = kernel->distance(
        build_labeled_graph(a, LabelPolicy::kTypePeer),
        build_labeled_graph(b, LabelPolicy::kTypePeer));
    EXPECT_DOUBLE_EQ(d, 0.0) << kernel_spec;
  }
}

TEST(KernelDistance, DetectsPermutedMatchingWithPeerLabels) {
  const auto [a, b] = differing_runs(5);
  const WLSubtreeKernel kernel(2);
  const double d = kernel.distance(
      build_labeled_graph(a, LabelPolicy::kTypePeer),
      build_labeled_graph(b, LabelPolicy::kTypePeer));
  EXPECT_GT(d, 0.0);
}

TEST(KernelDistance, TypeOnlyLabelsAreBlindToPureMatchingPermutation) {
  // The two matchings of a symmetric message race are isomorphic graphs;
  // with type-only labels WL cannot distinguish them. This motivates the
  // default kTypePeer policy (see DESIGN.md).
  const auto [a, b] = differing_runs(5);
  const WLSubtreeKernel kernel(3);
  const double d = kernel.distance(
      build_labeled_graph(a, LabelPolicy::kTypeOnly),
      build_labeled_graph(b, LabelPolicy::kTypeOnly));
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(KernelDistance, WlDepthZeroEqualsVertexHistogram) {
  const auto [a, b] = differing_runs(5);
  const LabeledGraph la = build_labeled_graph(a, LabelPolicy::kTypePeer);
  const LabeledGraph lb = build_labeled_graph(b, LabelPolicy::kTypePeer);
  const double d_wl0 = WLSubtreeKernel(0).distance(la, lb);
  const double d_vh = VertexHistogramKernel().distance(la, lb);
  EXPECT_NEAR(d_wl0, d_vh, 1e-12);
}

TEST(KernelDistance, DeeperWlSeesAtLeastAsMuch) {
  const auto [a, b] = differing_runs(6);
  const LabeledGraph la = build_labeled_graph(a, LabelPolicy::kTypePeer);
  const LabeledGraph lb = build_labeled_graph(b, LabelPolicy::kTypePeer);
  double previous = 0.0;
  for (unsigned depth = 0; depth <= 4; ++depth) {
    const double d = WLSubtreeKernel(depth).distance(la, lb);
    EXPECT_GE(d, previous - 1e-9) << "depth " << depth;
    previous = d;
  }
}

// Metric axioms: WL distance is the Euclidean metric of the feature
// embedding, so symmetry and the triangle inequality hold exactly.
class MetricAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricAxioms, SymmetryAndTriangle) {
  const std::uint64_t seed = GetParam();
  const graph::EventGraph a = race_graph(5, 1.0, seed);
  const graph::EventGraph b = race_graph(5, 1.0, seed + 100);
  const graph::EventGraph c = race_graph(5, 1.0, seed + 200);
  const WLSubtreeKernel kernel(2);
  const FeatureVector fa =
      kernel.features(build_labeled_graph(a, LabelPolicy::kTypePeer));
  const FeatureVector fb =
      kernel.features(build_labeled_graph(b, LabelPolicy::kTypePeer));
  const FeatureVector fc =
      kernel.features(build_labeled_graph(c, LabelPolicy::kTypePeer));

  const double ab = kernel_distance(fa, fb);
  const double ba = kernel_distance(fb, fa);
  const double ac = kernel_distance(fa, fc);
  const double cb = kernel_distance(fc, fb);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_LE(ab, ac + cb + 1e-9);
  EXPECT_DOUBLE_EQ(kernel_distance(fa, fa), 0.0);
  EXPECT_GE(ab, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAxioms,
                         ::testing::Values(1u, 7u, 13u, 29u, 41u, 53u));

TEST(NormalizedKernel, BoundsAndIdentity) {
  const auto [a, b] = differing_runs(5);
  const WLSubtreeKernel kernel(2);
  const FeatureVector fa =
      kernel.features(build_labeled_graph(a, LabelPolicy::kTypePeer));
  const FeatureVector fb =
      kernel.features(build_labeled_graph(b, LabelPolicy::kTypePeer));
  const double same = normalized_kernel(fa, fa);
  const double cross = normalized_kernel(fa, fb);
  EXPECT_NEAR(same, 1.0, 1e-12);
  EXPECT_GE(cross, 0.0);
  EXPECT_LE(cross, 1.0);
  EXPECT_LT(cross, 1.0);  // the runs differ
}

TEST(EdgeHistogramKernel, SeesEdgeRelabeling) {
  const auto [a, b] = differing_runs(5);
  const EdgeHistogramKernel kernel;
  const double d = kernel.distance(
      build_labeled_graph(a, LabelPolicy::kTypePeer),
      build_labeled_graph(b, LabelPolicy::kTypePeer));
  EXPECT_GT(d, 0.0);
}

TEST(MakeKernel, SpecsAndErrors) {
  EXPECT_EQ(make_kernel("wl")->name(), "wl_subtree_h2");
  EXPECT_EQ(make_kernel("wl:5")->name(), "wl_subtree_h5");
  EXPECT_EQ(make_kernel("vertex_histogram")->name(), "vertex_histogram");
  EXPECT_EQ(make_kernel("edge_histogram")->name(), "edge_histogram");
  EXPECT_THROW(make_kernel("wl:99"), ConfigError);
  EXPECT_THROW(make_kernel("wl:x"), ConfigError);
  EXPECT_THROW(make_kernel("nope"), ConfigError);
}

TEST(MakeKernel, RejectsEmptyOrPaddedWlDepth) {
  // "wl:" used to strtol an empty string to 0 and silently build a
  // depth-0 kernel; these must all be hard errors.
  EXPECT_THROW(make_kernel("wl:"), ConfigError);
  EXPECT_THROW(make_kernel("wl: 2"), ConfigError);
  EXPECT_THROW(make_kernel("wl:2 "), ConfigError);
  EXPECT_THROW(make_kernel("wl:2x"), ConfigError);
  EXPECT_THROW(make_kernel("wl:-1"), ConfigError);
  EXPECT_EQ(make_kernel("wl:0")->name(), "wl_subtree_h0");
}

TEST(EmptyGraphs, KernelsHandleGracefully) {
  const LabeledGraph empty;
  const WLSubtreeKernel kernel(2);
  const FeatureVector f = kernel.features(empty);
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(kernel_distance(f, f), 0.0);
  EXPECT_DOUBLE_EQ(normalized_kernel(f, f), 1.0);
}

}  // namespace
}  // namespace anacin::kernels

#include "core/html_report.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/report.hpp"

namespace anacin::core {
namespace {

TEST(HtmlEscape, EscapesMarkupCharacters) {
  EXPECT_EQ(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(html_escape("plain"), "plain");
  EXPECT_EQ(html_escape(""), "");
}

TEST(HtmlReport, SkeletonAndTitle) {
  const HtmlReport report("My <Report>");
  const std::string html = report.render();
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<title>My &lt;Report&gt;</title>"),
            std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(HtmlReport, SectionsRenderInOrder) {
  HtmlReport report("r");
  report.add_heading("First");
  report.add_paragraph("body text with <angle>");
  report.add_heading("Second");
  const std::string html = report.render();
  const auto first = html.find("<h2>First</h2>");
  const auto paragraph = html.find("<p>body text with &lt;angle&gt;</p>");
  const auto second = html.find("<h2>Second</h2>");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(paragraph, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, paragraph);
  EXPECT_LT(paragraph, second);
}

TEST(HtmlReport, PreformattedPreservesAsciiArt) {
  HtmlReport report("r");
  report.add_preformatted("rank 0  I-S->R\n  <raw>");
  const std::string html = report.render();
  EXPECT_NE(html.find("<pre>rank 0  I-S-&gt;R\n  &lt;raw&gt;</pre>"),
            std::string::npos);
}

TEST(HtmlReport, TableRows) {
  HtmlReport report("r");
  report.add_table({{"pattern", "amg2013"}, {"runs", "20"}});
  const std::string html = report.render();
  EXPECT_NE(html.find("<th>pattern</th><td>amg2013</td>"),
            std::string::npos);
  EXPECT_NE(html.find("<th>runs</th><td>20</td>"), std::string::npos);
}

TEST(HtmlReport, InlinesSvgFigures) {
  HtmlReport report("r");
  viz::SvgDocument svg(50, 40);
  svg.circle(10, 10, 5, {});
  report.add_figure(svg, "a & b");
  const std::string html = report.render();
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<figcaption>a &amp; b</figcaption>"),
            std::string::npos);
}

TEST(HtmlReport, SaveWritesFile) {
  HtmlReport report("saved");
  report.add_paragraph("x");
  report.save("test_output/report/r.html");
  const std::string text = read_text_file("test_output/report/r.html");
  EXPECT_NE(text.find("saved"), std::string::npos);
  std::filesystem::remove_all("test_output");
}

}  // namespace
}  // namespace anacin::core

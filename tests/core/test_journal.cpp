#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/json.hpp"

namespace anacin::core {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_journal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
    path_ = (dir_ / "sweep.jsonl").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static json::Value payload(double median) {
    json::Value doc = json::Value::object();
    doc.set("median", median);
    return doc;
  }

  static inline int counter_ = 0;
  fs::path dir_;
  std::string path_;
};

TEST_F(JournalTest, FreshJournalIsEmpty) {
  const CampaignJournal journal(path_, "campaign-a");
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped_lines(), 0u);
  EXPECT_EQ(journal.lookup("point-1"), nullptr);
}

TEST_F(JournalTest, RecordedUnitsSurviveReopen) {
  {
    CampaignJournal journal(path_, "campaign-a");
    journal.record("point-1", payload(0.5));
    journal.record("point-2", payload(0.75));
  }
  const CampaignJournal reopened(path_, "campaign-a");
  EXPECT_EQ(reopened.size(), 2u);
  ASSERT_NE(reopened.lookup("point-1"), nullptr);
  EXPECT_DOUBLE_EQ(reopened.lookup("point-1")->at("median").as_number(), 0.5);
  ASSERT_NE(reopened.lookup("point-2"), nullptr);
  EXPECT_EQ(reopened.lookup("point-3"), nullptr);
}

TEST_F(JournalTest, RecordIsDurableImmediately) {
  CampaignJournal journal(path_, "campaign-a");
  journal.record("point-1", payload(1.0));
  // A concurrent reader (or a post-SIGKILL resume) sees the record without
  // any explicit flush/close.
  const CampaignJournal other(path_, "campaign-a");
  EXPECT_EQ(other.size(), 1u);
}

TEST_F(JournalTest, ReRecordingOverwrites) {
  CampaignJournal journal(path_, "campaign-a");
  journal.record("point-1", payload(1.0));
  journal.record("point-1", payload(2.0));
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_DOUBLE_EQ(journal.lookup("point-1")->at("median").as_number(), 2.0);
}

TEST_F(JournalTest, CampaignKeyMismatchThrows) {
  { CampaignJournal journal(path_, "campaign-a"); journal.record("p", payload(0)); }
  EXPECT_THROW(CampaignJournal(path_, "campaign-b"), ConfigError);
}

TEST_F(JournalTest, TruncatedTailDropsOnlyTheTail) {
  {
    CampaignJournal journal(path_, "campaign-a");
    journal.record("point-1", payload(0.1));
    journal.record("point-2", payload(0.2));
    journal.record("point-3", payload(0.3));
  }
  // Simulate a crash mid-append on a non-atomic filesystem: cut the last
  // line in half.
  std::string content;
  {
    std::ifstream in(path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    content = buffer.str();
  }
  const std::size_t last_line_start =
      content.rfind('\n', content.size() - 2) + 1;
  const std::size_t cut = last_line_start + (content.size() - last_line_start) / 2;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content.substr(0, cut);
  }

  const CampaignJournal salvaged(path_, "campaign-a");
  EXPECT_EQ(salvaged.size(), 2u);
  EXPECT_EQ(salvaged.dropped_lines(), 1u);
  EXPECT_NE(salvaged.lookup("point-1"), nullptr);
  EXPECT_NE(salvaged.lookup("point-2"), nullptr);
  EXPECT_EQ(salvaged.lookup("point-3"), nullptr);
}

TEST_F(JournalTest, CorruptMiddleRecordEndsTheLogThere) {
  {
    CampaignJournal journal(path_, "campaign-a");
    journal.record("point-1", payload(0.1));
    journal.record("point-2", payload(0.2));
    journal.record("point-3", payload(0.3));
  }
  // Flip payload bytes of the middle record without fixing its checksum.
  std::vector<std::string> lines;
  {
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 3 records
  const std::size_t digit = lines[2].find("0.2");
  ASSERT_NE(digit, std::string::npos);
  lines[2].replace(digit, 3, "9.9");
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  }

  // An append-ordered log is untrustworthy past the first bad record: the
  // tampered record and everything after it are dropped.
  const CampaignJournal salvaged(path_, "campaign-a");
  EXPECT_EQ(salvaged.size(), 1u);
  EXPECT_EQ(salvaged.dropped_lines(), 2u);
  EXPECT_NE(salvaged.lookup("point-1"), nullptr);
  EXPECT_EQ(salvaged.lookup("point-2"), nullptr);
}

TEST_F(JournalTest, TruncationFuzzRecoversExactlyTheCompletePrefix) {
  {
    CampaignJournal journal(path_, "campaign-a");
    journal.record("point-1", payload(0.1));
    journal.record("point-2", payload(0.2));
    journal.record("point-3", payload(0.3));
  }
  std::string full;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  ASSERT_FALSE(full.empty());

  // End offset (one past the '\n') of every complete line. Line 0 is the
  // campaign header; lines 1..3 are the records.
  std::vector<std::size_t> line_ends;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '\n') line_ends.push_back(i + 1);
  }
  ASSERT_EQ(line_ends.size(), 4u);

  // A crash can tear the file at ANY byte. Whatever the cut, the loader
  // must recover exactly the records whose full line survived — never
  // throw, never resurrect a half-written record, never drop a whole one.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out << full.substr(0, cut);
    }
    // A line is recoverable once its full content is on disk; the
    // trailing '\n' itself carries no payload, so a cut that drops only
    // the newline still validates.
    std::size_t complete_lines = 0;
    for (const std::size_t end : line_ends) {
      if (end - 1 <= cut) ++complete_lines;
    }
    const std::size_t expected_records =
        complete_lines == 0 ? 0 : complete_lines - 1;

    std::unique_ptr<CampaignJournal> salvaged;
    ASSERT_NO_THROW(salvaged =
                        std::make_unique<CampaignJournal>(path_, "campaign-a"))
        << "cut at byte " << cut;
    EXPECT_EQ(salvaged->size(), expected_records) << "cut at byte " << cut;
    for (std::size_t r = 1; r <= 3; ++r) {
      const std::string unit = "point-" + std::to_string(r);
      if (r <= expected_records) {
        EXPECT_NE(salvaged->lookup(unit), nullptr)
            << unit << " lost at cut " << cut;
      } else {
        EXPECT_EQ(salvaged->lookup(unit), nullptr)
            << unit << " resurrected at cut " << cut;
      }
    }
  }
}

TEST_F(JournalTest, NonJournalJsonLoadsAsEmpty) {
  // Valid JSON without the record framing fails the checksum validation
  // like any corrupt line — the journal loads as empty (and the sweep
  // simply recomputes) instead of erroring.
  {
    std::ofstream out(path_);
    out << "{\"not\": \"a journal\"}\n";
  }
  const CampaignJournal journal(path_, "campaign-a");
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped_lines(), 1u);
}

TEST_F(JournalTest, GarbageFirstLineLoadsAsEmpty) {
  // A header that fails checksum validation is indistinguishable from a
  // truncated write of the very first record: the tolerant loader treats
  // the whole file as unusable and starts fresh rather than erroring.
  {
    std::ofstream out(path_);
    out << "complete garbage, not even JSON\n";
  }
  const CampaignJournal journal(path_, "campaign-a");
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.dropped_lines(), 1u);
}

TEST_F(JournalTest, PersistsThroughParentDirectoryCreation) {
  const std::string nested = (dir_ / "deep" / "er" / "sweep.jsonl").string();
  CampaignJournal journal(nested, "campaign-a");
  journal.record("point-1", payload(1.5));
  EXPECT_TRUE(fs::exists(nested));
}

}  // namespace
}  // namespace anacin::core

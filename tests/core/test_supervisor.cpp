#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace anacin::core {
namespace {

// Policies use base_backoff_us = 0 throughout so retry tests don't sleep.
RetryPolicy fast_policy(int max_retries, double deadline_ms = 0.0) {
  RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.base_backoff_us = 0;
  policy.run_deadline_ms = deadline_ms;
  return policy;
}

TEST(Supervisor, SuccessFirstAttempt) {
  const Supervisor supervisor(fast_policy(3), 1, FailureInjector{});
  int calls = 0;
  const UnitReport report = supervisor.run("run:0", [&] { ++calls; });
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(report.error.empty());
  EXPECT_EQ(supervisor.retries_performed(), 0u);
}

TEST(Supervisor, TransientFailureRetriesUntilSuccess) {
  const Supervisor supervisor(fast_policy(3), 1, FailureInjector{});
  int calls = 0;
  const UnitReport report = supervisor.run("run:0", [&] {
    if (++calls < 3) throw TransientError("flaky");
  });
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(supervisor.retries_performed(), 2u);
}

TEST(Supervisor, TransientFailureExhaustsRetries) {
  const Supervisor supervisor(fast_policy(2), 1, FailureInjector{});
  int calls = 0;
  const UnitReport report =
      supervisor.run("run:0", [&] { ++calls; throw TransientError("flaky"); });
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.transient);
  EXPECT_EQ(report.attempts, 3);  // 1 attempt + 2 retries
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(report.error, "flaky");
}

TEST(Supervisor, PermanentFailureNeverRetries) {
  const Supervisor supervisor(fast_policy(5), 1, FailureInjector{});
  int calls = 0;
  const UnitReport report = supervisor.run(
      "run:0", [&] { ++calls; throw PermanentError("broken"); });
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.transient);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(supervisor.retries_performed(), 0u);
}

TEST(Supervisor, UntypedExceptionIsPermanent) {
  const Supervisor supervisor(fast_policy(5), 1, FailureInjector{});
  const UnitReport report =
      supervisor.run("run:0", [] { throw std::runtime_error("surprise"); });
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.transient);
  EXPECT_EQ(report.attempts, 1);
}

TEST(Supervisor, DeadlineExceededIsTransientAndRetries) {
  // 1 ms deadline; injected 20 ms hang makes every attempt blow it.
  const Supervisor supervisor(fast_policy(1, /*deadline_ms=*/1.0), 1,
                              FailureInjector("slow=hang:20"));
  int calls = 0;
  const UnitReport report = supervisor.run("slow", [&] { ++calls; });
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.transient);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(calls, 2);
  EXPECT_NE(report.error.find("deadline"), std::string::npos);
}

TEST(Supervisor, DeadlineNotTriggeredByFastWork) {
  const Supervisor supervisor(fast_policy(0, /*deadline_ms=*/5000.0), 1,
                              FailureInjector{});
  const UnitReport report = supervisor.run("fast", [] {});
  EXPECT_TRUE(report.ok);
}

TEST(FailureInjector, TransientSpecFailsFirstNAttempts) {
  const Supervisor supervisor(fast_policy(5), 1,
                              FailureInjector("run:2=transient:3"));
  int calls = 0;
  const UnitReport report = supervisor.run("run:2", [&] { ++calls; });
  EXPECT_TRUE(report.ok);
  // Attempts 1..3 are injected failures before the work runs at all.
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(calls, 1);
}

TEST(FailureInjector, OnlyNamedUnitIsAffected) {
  const Supervisor supervisor(fast_policy(0), 1,
                              FailureInjector("run:7=permanent"));
  EXPECT_TRUE(supervisor.run("run:6", [] {}).ok);
  EXPECT_FALSE(supervisor.run("run:7", [] {}).ok);
}

TEST(FailureInjector, WildcardMatchesAnyUnitWithoutExactEntry) {
  // "*" hits whatever unit comes along — how tests fell a fleet agent on
  // its first unit when unit placement is racy — while an exact entry
  // still wins over the wildcard.
  const Supervisor supervisor(
      fast_policy(0), 1, FailureInjector("*=permanent,run:3=transient:0"));
  EXPECT_FALSE(supervisor.run("run:1", [] {}).ok);
  EXPECT_FALSE(supervisor.run("reference", [] {}).ok);
  EXPECT_TRUE(supervisor.run("run:3", [] {}).ok);
}

TEST(FailureInjector, MalformedSpecsThrowConfigError) {
  EXPECT_THROW(FailureInjector("nonsense"), ConfigError);
  EXPECT_THROW(FailureInjector("u=explode"), ConfigError);
  EXPECT_THROW(FailureInjector("u=transient:abc"), ConfigError);
  EXPECT_THROW(FailureInjector("u=hang:-5"), ConfigError);
}

TEST(FailureInjector, EmptySpecInjectsNothing) {
  EXPECT_TRUE(FailureInjector{}.empty());
  EXPECT_TRUE(FailureInjector("").empty());
  EXPECT_FALSE(FailureInjector("u=permanent").empty());
}

TEST(FailureInjector, CrashSpecParsesSignalNames) {
  EXPECT_FALSE(FailureInjector("", "run:1=SEGV").empty());
  EXPECT_FALSE(FailureInjector("", "run:1=KILL,run:2=XCPU").empty());
  EXPECT_THROW(FailureInjector("", "run:1=NOTASIGNAL"), ConfigError);
  EXPECT_THROW(FailureInjector("", "run:1"), ConfigError);
}

TEST(FailureInjector, HangSpecParsesSleepAndStop) {
  EXPECT_FALSE(FailureInjector("", "", "run:2=500").empty());
  EXPECT_FALSE(FailureInjector("", "", "run:2=stop").empty());
  EXPECT_THROW(FailureInjector("", "", "run:2=-5"), ConfigError);
  EXPECT_THROW(FailureInjector("", "", "run:2=abc"), ConfigError);
}

TEST(FailureInjector, ExecutionHooksIgnoreOtherUnits) {
  // Hooks for run:9 must be inert for every other unit — and a sleep hook
  // applied in-process returns normally (the crash hooks are exercised in
  // worker children by the proc/ tests; raising here would kill the test).
  const FailureInjector injector("", "", "run:9=1");
  injector.apply_execution_hooks("run:0");
  injector.apply_execution_hooks("reference");
  injector.apply_execution_hooks("run:9");
}

TEST(Supervisor, RetryScheduleIsDeterministic) {
  // Same seed + same injected schedule => identical attempt counts and
  // retry totals across repeated executions (the acceptance criterion for
  // reproducible retried campaigns).
  const auto run_campaign_like = [] {
    const Supervisor supervisor(fast_policy(4), 42,
                                FailureInjector("a=transient:2,b=transient:1"));
    std::vector<int> attempts;
    for (const std::string unit : {"a", "b", "c"}) {
      attempts.push_back(supervisor.run(unit, [] {}).attempts);
    }
    attempts.push_back(static_cast<int>(supervisor.retries_performed()));
    return attempts;
  };
  EXPECT_EQ(run_campaign_like(), run_campaign_like());
}

TEST(Supervisor, ConcurrentRunsAreSafe) {
  const Supervisor supervisor(fast_policy(1), 1, FailureInjector{});
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const UnitReport report =
          supervisor.run("run:" + std::to_string(t), [] {});
      if (report.ok) ++ok;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), 8);
}

}  // namespace
}  // namespace anacin::core

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace anacin::core {
namespace {

CampaignConfig small_campaign(double nd, int runs = 6) {
  CampaignConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 6;
  config.nd_fraction = nd;
  config.num_runs = runs;
  return config;
}

TEST(Campaign, ProducesOneGraphPerRun) {
  ThreadPool pool(2);
  const CampaignResult result = run_campaign(small_campaign(1.0), pool);
  EXPECT_EQ(result.graphs.size(), 6u);
  EXPECT_EQ(result.measurement.distances.size(), 6u);
  EXPECT_GT(result.total_messages, 0u);
  EXPECT_GT(result.total_wildcard_recvs, 0u);
  EXPECT_EQ(result.reference.num_ranks(), 6);
}

TEST(Campaign, ZeroNdGivesZeroDistances) {
  ThreadPool pool(2);
  const CampaignResult result = run_campaign(small_campaign(0.0), pool);
  for (const double d : result.measurement.distances) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.distance_summary.max, 0.0);
}

TEST(Campaign, FullNdGivesMostlyPositiveDistances) {
  ThreadPool pool(2);
  const CampaignResult result = run_campaign(small_campaign(1.0, 10), pool);
  int positive = 0;
  for (const double d : result.measurement.distances) {
    if (d > 0.0) ++positive;
  }
  EXPECT_GE(positive, 8);
  EXPECT_GT(result.distance_summary.median, 0.0);
}

TEST(Campaign, IsReproducible) {
  ThreadPool pool(2);
  const CampaignResult a = run_campaign(small_campaign(1.0), pool);
  const CampaignResult b = run_campaign(small_campaign(1.0), pool);
  ASSERT_EQ(a.measurement.distances.size(), b.measurement.distances.size());
  for (std::size_t i = 0; i < a.measurement.distances.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.measurement.distances[i], b.measurement.distances[i]);
  }
}

TEST(Campaign, RunSeedsAreDistinct) {
  const CampaignConfig config = small_campaign(1.0);
  const auto s0 = config.sim_config_for_run(0).seed;
  const auto s1 = config.sim_config_for_run(1).seed;
  const auto ref = config.reference_sim_config();
  EXPECT_NE(s0, s1);
  EXPECT_DOUBLE_EQ(ref.network.nd_fraction, 0.0);
}

TEST(Campaign, PairwiseReductionWorks) {
  ThreadPool pool(2);
  CampaignConfig config = small_campaign(1.0, 5);
  config.reduction = analysis::DistanceReduction::kPairwise;
  const CampaignResult result = run_campaign(config, pool);
  EXPECT_EQ(result.measurement.distances.size(), 10u);
}

TEST(Campaign, JsonReportHasAllSections) {
  ThreadPool pool(2);
  const CampaignResult result = run_campaign(small_campaign(1.0, 3), pool);
  const json::Value doc = result.to_json();
  EXPECT_TRUE(doc.contains("config"));
  EXPECT_TRUE(doc.contains("distances"));
  EXPECT_TRUE(doc.contains("summary"));
  EXPECT_EQ(doc.at("distances").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("config").at("nd_percent").as_number(), 100.0);
  EXPECT_EQ(doc.at("config").at("pattern").as_string(), "message_race");
}

TEST(Campaign, ReferenceSimulatedOncePerUniqueKeyWithoutStore) {
  ThreadPool pool(2);
  obs::Counter& reference_sims = obs::counter("campaign.reference_sims");

  // A sweep varies nd_fraction while (pattern, shape, base_seed) stay
  // fixed; the jitter-free reference is identical across all points and
  // must be simulated exactly once — even with no artifact store.
  CampaignConfig config = small_campaign(1.0, 3);
  config.base_seed = 987654321;  // unique key within this test binary
  const std::uint64_t before = reference_sims.value();
  for (const double nd : {0.2, 0.6, 1.0}) {
    config.nd_fraction = nd;
    run_campaign(config, pool, nullptr);
  }
  EXPECT_EQ(reference_sims.value(), before + 1);

  // A different base_seed is a different reference: one more simulation.
  config.base_seed = 987654322;
  run_campaign(config, pool, nullptr);
  EXPECT_EQ(reference_sims.value(), before + 2);
}

TEST(Campaign, InvalidConfigsRejected) {
  ThreadPool pool(1);
  CampaignConfig bad_runs = small_campaign(1.0, 0);
  EXPECT_THROW(run_campaign(bad_runs, pool), Error);
  CampaignConfig bad_nd = small_campaign(1.5);
  EXPECT_THROW(run_campaign(bad_nd, pool), Error);
  CampaignConfig bad_pattern = small_campaign(1.0);
  bad_pattern.pattern = "nope";
  EXPECT_THROW(run_campaign(bad_pattern, pool), ConfigError);
}

TEST(RunPatternOnce, ShapeMismatchRejected) {
  patterns::PatternConfig shape;
  shape.num_ranks = 4;
  sim::SimConfig config;
  config.num_ranks = 5;
  EXPECT_THROW(run_pattern_once("message_race", shape, config), Error);
}

// ---------------------------------------------------------------------------
// Resilience (supervised units, keep-going, cancellation)
// ---------------------------------------------------------------------------

/// Injected failures via an env snapshot: the Supervisor inside
/// run_campaign reads ANACIN_INJECT_FAILURES at construction.
class ScopedInjection {
public:
  explicit ScopedInjection(const char* spec) {
    ::setenv("ANACIN_INJECT_FAILURES", spec, 1);
  }
  ~ScopedInjection() { ::unsetenv("ANACIN_INJECT_FAILURES"); }
};

ResilienceOptions no_backoff(bool keep_going, int max_retries = 0) {
  ResilienceOptions resilience;
  resilience.keep_going = keep_going;
  resilience.retry.max_retries = max_retries;
  resilience.retry.base_backoff_us = 0;
  return resilience;
}

TEST(CampaignResilience, FailFastAbortsOnPermanentFailure) {
  const ScopedInjection inject("run:2=permanent");
  ThreadPool pool(2);
  EXPECT_THROW(run_campaign(small_campaign(1.0), pool, nullptr,
                            no_backoff(/*keep_going=*/false)),
               PermanentError);
}

TEST(CampaignResilience, KeepGoingQuarantinesExactlyTheFailingRun) {
  const ScopedInjection inject("run:2=permanent");
  ThreadPool pool(2);
  const CampaignResult result = run_campaign(
      small_campaign(1.0), pool, nullptr, no_backoff(/*keep_going=*/true));
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined.front().unit, "run:2");
  EXPECT_EQ(result.quarantined.front().attempts, 1);
  EXPECT_FALSE(result.complete());
  // The failed slot is an empty graph; the survivors are measured.
  EXPECT_EQ(result.graphs.size(), 6u);
  EXPECT_EQ(result.graphs[2].num_nodes(), 0u);
  EXPECT_EQ(result.measurement.distances.size(), 5u);
  EXPECT_EQ(result.distance_summary.count, 5u);
}

TEST(CampaignResilience, TransientFailuresRetryToSuccess) {
  const ScopedInjection inject("run:1=transient:2");
  ThreadPool pool(2);
  const CampaignResult result =
      run_campaign(small_campaign(1.0), pool, nullptr,
                   no_backoff(/*keep_going=*/false, /*max_retries=*/3));
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.retries, 2u);
  EXPECT_EQ(result.measurement.distances.size(), 6u);
}

TEST(CampaignResilience, RetriedCampaignMatchesUnfailedCampaign) {
  ThreadPool pool(2);
  const CampaignResult clean = run_campaign(small_campaign(1.0), pool);
  const ScopedInjection inject("run:0=transient:1,run:3=transient:2");
  const CampaignResult retried =
      run_campaign(small_campaign(1.0), pool, nullptr,
                   no_backoff(/*keep_going=*/false, /*max_retries=*/2));
  // Retries must not leak into the results: same seeds, same graphs, same
  // distances as a campaign that never failed.
  EXPECT_EQ(retried.retries, 3u);
  ASSERT_EQ(retried.measurement.distances.size(),
            clean.measurement.distances.size());
  for (std::size_t i = 0; i < clean.measurement.distances.size(); ++i) {
    EXPECT_DOUBLE_EQ(retried.measurement.distances[i],
                     clean.measurement.distances[i]);
  }
}

TEST(CampaignResilience, AllRunsQuarantinedIsFatalEvenWithKeepGoing) {
  const ScopedInjection inject(
      "run:0=permanent,run:1=permanent,run:2=permanent");
  ThreadPool pool(2);
  EXPECT_THROW(run_campaign(small_campaign(1.0, /*runs=*/3), pool, nullptr,
                            no_backoff(/*keep_going=*/true)),
               Error);
}

TEST(CampaignResilience, ReferenceFailureIsFatalEvenWithKeepGoing) {
  const ScopedInjection inject("reference=permanent");
  ThreadPool pool(2);
  EXPECT_THROW(run_campaign(small_campaign(1.0), pool, nullptr,
                            no_backoff(/*keep_going=*/true)),
               PermanentError);
}

TEST(CampaignResilience, CancelledTokenInterrupts) {
  ThreadPool pool(2);
  CancelToken token;
  token.cancel();
  ResilienceOptions resilience;
  resilience.cancel = &token;
  EXPECT_THROW(run_campaign(small_campaign(1.0), pool, nullptr, resilience),
               InterruptedError);
}

TEST(CampaignResilience, QuarantineIsSurfacedInJson) {
  const ScopedInjection inject("run:4=permanent");
  ThreadPool pool(2);
  const CampaignResult result = run_campaign(
      small_campaign(1.0), pool, nullptr, no_backoff(/*keep_going=*/true));
  const json::Value doc = result.to_json();
  EXPECT_FALSE(doc.at("resilience").at("complete").as_bool());
  ASSERT_EQ(doc.at("resilience").at("quarantined").size(), 1u);
  EXPECT_EQ(
      doc.at("resilience").at("quarantined").at(0).at("unit").as_string(),
      "run:4");
}

}  // namespace
}  // namespace anacin::core

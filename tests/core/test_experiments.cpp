#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include <set>

namespace anacin::core {
namespace {

TEST(ExperimentRegistry, CoversEveryPaperItem) {
  std::set<std::string> ids;
  for (const ExperimentInfo& experiment : paper_experiments()) {
    ids.insert(experiment.id);
  }
  for (const std::string id :
       {"tab1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8"}) {
    EXPECT_TRUE(ids.count(id) > 0) << "missing experiment " << id;
  }
  EXPECT_EQ(paper_experiments().size(), 9u);
}

TEST(ExperimentRegistry, EntriesAreComplete) {
  for (const ExperimentInfo& experiment : paper_experiments()) {
    EXPECT_FALSE(experiment.paper_item.empty()) << experiment.id;
    EXPECT_FALSE(experiment.title.empty()) << experiment.id;
    EXPECT_FALSE(experiment.workload.empty()) << experiment.id;
    EXPECT_FALSE(experiment.bench_target.empty()) << experiment.id;
    EXPECT_FALSE(experiment.expected_shape.empty()) << experiment.id;
  }
}

TEST(ExperimentRegistry, BenchTargetsAreUnique) {
  std::set<std::string> targets;
  for (const ExperimentInfo& experiment : paper_experiments()) {
    EXPECT_TRUE(targets.insert(experiment.bench_target).second)
        << "duplicate bench target " << experiment.bench_target;
  }
}

TEST(ExperimentRegistry, FindByIdAndMiss) {
  const ExperimentInfo* fig7 = find_experiment("fig7");
  ASSERT_NE(fig7, nullptr);
  EXPECT_EQ(fig7->bench_target, "fig07_nd_sweep");
  EXPECT_EQ(find_experiment("fig99"), nullptr);
}

TEST(ExperimentRegistry, IndexMentionsEveryExperiment) {
  const std::string index = render_experiment_index();
  for (const ExperimentInfo& experiment : paper_experiments()) {
    EXPECT_NE(index.find(experiment.bench_target), std::string::npos)
        << experiment.id;
  }
}

}  // namespace
}  // namespace anacin::core

#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "support/error.hpp"

namespace anacin::core {
namespace {

TEST(TextFiles, WriteAndReadRoundTrip) {
  const std::string path = "test_output/report/inner/file.txt";
  write_text_file(path, "hello\nworld\n");
  EXPECT_EQ(read_text_file(path), "hello\nworld\n");
  std::filesystem::remove_all("test_output");
}

TEST(TextFiles, ReadMissingThrows) {
  EXPECT_THROW(read_text_file("definitely/not/here.txt"), Error);
}

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter csv({"pattern", "ranks", "median"});
  csv.add_row({"amg2013", "32", "12.5"});
  csv.add_row({"message_race", "16", "3.25"});
  EXPECT_EQ(csv.render(),
            "pattern,ranks,median\n"
            "amg2013,32,12.5\n"
            "message_race,16,3.25\n");
}

TEST(Csv, EscapesSpecialFields) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"x,y", "say \"hi\""});
  csv.add_row({"line\nbreak", "plain"});
  const std::string out = csv.render();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(Csv, RowWidthEnforced) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), Error);
  EXPECT_THROW(CsvWriter({}), Error);
}

TEST(Csv, SaveWritesFile) {
  CsvWriter csv({"x"});
  csv.add_row({"1"});
  csv.save("test_output/data.csv");
  EXPECT_EQ(read_text_file("test_output/data.csv"), "x\n1\n");
  std::filesystem::remove_all("test_output");
}

TEST(JsonFile, WritesPrettyJson) {
  json::Value doc = json::Value::object();
  doc.set("k", 1);
  write_json_file("test_output/doc.json", doc);
  const std::string text = read_text_file("test_output/doc.json");
  EXPECT_NE(text.find("\"k\": 1"), std::string::npos);
  EXPECT_EQ(json::parse(text), doc);
  std::filesystem::remove_all("test_output");
}

TEST(ResultsDir, HonorsEnvironmentOverride) {
  ::setenv("ANACIN_RESULTS_DIR", "custom_results", 1);
  EXPECT_EQ(results_dir(), "custom_results");
  ::unsetenv("ANACIN_RESULTS_DIR");
  EXPECT_EQ(results_dir(), "results");
}

}  // namespace
}  // namespace anacin::core

#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <fstream>

#include "core/campaign.hpp"
#include "obs/obs.hpp"
#include "store/store.hpp"

namespace anacin::store {
namespace {

namespace fs = std::filesystem;

core::CampaignConfig small_campaign(std::uint64_t base_seed) {
  core::CampaignConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 4;
  config.shape.iterations = 2;
  config.num_runs = 5;
  config.base_seed = base_seed;
  return config;
}

class StoreCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("anacin_campaign_store_" + std::string(::testing::UnitTest::
                                                        GetInstance()
                                                            ->current_test_info()
                                                            ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(StoreCampaignTest, KeysAreStableAndDistanceKeyIsSymmetric) {
  const core::CampaignConfig config = small_campaign(123);
  const Digest a = ArtifactStore::run_key(config.pattern, config.shape,
                                          config.sim_config_for_run(0));
  const Digest b = ArtifactStore::run_key(config.pattern, config.shape,
                                          config.sim_config_for_run(0));
  EXPECT_EQ(a, b);
  const Digest other = ArtifactStore::run_key(config.pattern, config.shape,
                                              config.sim_config_for_run(1));
  EXPECT_NE(a, other);

  const Digest forward = ArtifactStore::distance_key(
      "wl:2", kernels::LabelPolicy::kTypePeer, a, other);
  const Digest backward = ArtifactStore::distance_key(
      "wl:2", kernels::LabelPolicy::kTypePeer, other, a);
  EXPECT_EQ(forward, backward);
  EXPECT_NE(forward, ArtifactStore::distance_key(
                         "wl:3", kernels::LabelPolicy::kTypePeer, a, other));
}

TEST_F(StoreCampaignTest, WarmRerunSkipsAllSimulationAndDistanceWork) {
  ArtifactStore store({root_, 64 << 20});
  ThreadPool pool(2);
  const core::CampaignConfig config = small_campaign(2026);

  const core::CampaignResult cold = core::run_campaign(config, pool, &store);

  obs::Counter& sims = obs::counter("sim.engine.runs");
  obs::Counter& distances = obs::counter("kernels.distances_computed");
  const std::uint64_t sims_before = sims.value();
  const std::uint64_t distances_before = distances.value();
  const std::uint64_t hits_before = obs::counter("store.hits").value();

  const core::CampaignResult warm = core::run_campaign(config, pool, &store);

  EXPECT_EQ(sims.value(), sims_before) << "warm campaign ran a simulation";
  EXPECT_EQ(distances.value(), distances_before)
      << "warm campaign recomputed a kernel distance";
  EXPECT_GT(obs::counter("store.hits").value(), hits_before);

  // Bit-identical results, not merely close ones.
  ASSERT_EQ(warm.measurement.distances.size(),
            cold.measurement.distances.size());
  for (std::size_t i = 0; i < cold.measurement.distances.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.measurement.distances[i]),
              std::bit_cast<std::uint64_t>(cold.measurement.distances[i]));
  }
  EXPECT_EQ(warm.total_messages, cold.total_messages);
  EXPECT_EQ(warm.total_wildcard_recvs, cold.total_wildcard_recvs);
  EXPECT_EQ(warm.to_json().dump(), cold.to_json().dump());
}

TEST_F(StoreCampaignTest, StoreDoesNotChangeResults) {
  ArtifactStore store({root_, 64 << 20});
  ThreadPool pool(2);
  const core::CampaignConfig config = small_campaign(777);

  const core::CampaignResult without =
      core::run_campaign(config, pool, nullptr);
  const core::CampaignResult with = core::run_campaign(config, pool, &store);
  EXPECT_EQ(with.to_json().dump(), without.to_json().dump());
}

TEST_F(StoreCampaignTest, PairwiseReductionIsAlsoCached) {
  ArtifactStore store({root_, 64 << 20});
  ThreadPool pool(2);
  core::CampaignConfig config = small_campaign(31337);
  config.reduction = analysis::DistanceReduction::kPairwise;

  const core::CampaignResult plain = core::run_campaign(config, pool, nullptr);
  const core::CampaignResult cold = core::run_campaign(config, pool, &store);
  EXPECT_EQ(cold.to_json().dump(), plain.to_json().dump());

  obs::Counter& distances = obs::counter("kernels.distances_computed");
  const std::uint64_t before = distances.value();
  const core::CampaignResult warm = core::run_campaign(config, pool, &store);
  EXPECT_EQ(distances.value(), before);
  EXPECT_EQ(warm.to_json().dump(), cold.to_json().dump());
}

TEST_F(StoreCampaignTest, DifferentFaultConfigsNeverShareRunKeys) {
  const core::CampaignConfig clean = small_campaign(99);
  core::CampaignConfig faulty = small_campaign(99);
  faulty.faults.drop_probability = 0.05;
  core::CampaignConfig faultier = small_campaign(99);
  faultier.faults.drop_probability = 0.10;

  const Digest clean_key = ArtifactStore::run_key(
      clean.pattern, clean.shape, clean.sim_config_for_run(0));
  const Digest faulty_key = ArtifactStore::run_key(
      faulty.pattern, faulty.shape, faulty.sim_config_for_run(0));
  const Digest faultier_key = ArtifactStore::run_key(
      faultier.pattern, faultier.shape, faultier.sim_config_for_run(0));
  EXPECT_NE(clean_key, faulty_key);
  EXPECT_NE(faulty_key, faultier_key);

  // The reference run zeroes the faults, so every fault-sweep point shares
  // one clean baseline key.
  EXPECT_EQ(ArtifactStore::run_key(clean.pattern, clean.shape,
                                   clean.reference_sim_config()),
            ArtifactStore::run_key(faulty.pattern, faulty.shape,
                                   faulty.reference_sim_config()));
}

TEST_F(StoreCampaignTest, ChangingOnlyFaultConfigRecomputesOnWarmStore) {
  ArtifactStore store({root_, 64 << 20});
  ThreadPool pool(2);
  core::CampaignConfig faulty = small_campaign(2027);
  faulty.faults.drop_probability = 0.5;
  faulty.faults.duplicate_probability = 0.25;

  const core::CampaignResult cold = core::run_campaign(faulty, pool, &store);
  EXPECT_GT(cold.total_drops + cold.total_duplicates, 0u);

  obs::Counter& sims = obs::counter("sim.engine.runs");
  obs::Counter& distances = obs::counter("kernels.distances_computed");

  // Same faults, warm store: zero simulations, zero distances,
  // bit-identical result (fault counters included).
  const std::uint64_t sims_before = sims.value();
  const std::uint64_t distances_before = distances.value();
  const core::CampaignResult warm = core::run_campaign(faulty, pool, &store);
  EXPECT_EQ(sims.value(), sims_before)
      << "warm fault campaign ran a simulation";
  EXPECT_EQ(distances.value(), distances_before);
  EXPECT_EQ(warm.total_drops, cold.total_drops);
  EXPECT_EQ(warm.total_duplicates, cold.total_duplicates);
  EXPECT_EQ(warm.to_json().dump(), cold.to_json().dump());
  ASSERT_EQ(warm.measurement.distances.size(),
            cold.measurement.distances.size());
  for (std::size_t i = 0; i < cold.measurement.distances.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.measurement.distances[i]),
              std::bit_cast<std::uint64_t>(cold.measurement.distances[i]));
  }

  // Different faults, same everything else: no stale cache hits — the
  // noisy runs must be re-simulated.
  core::CampaignConfig other = faulty;
  other.faults.drop_probability = 0.9;
  const std::uint64_t sims_before_other = sims.value();
  const core::CampaignResult changed = core::run_campaign(other, pool, &store);
  EXPECT_EQ(sims.value() - sims_before_other,
            static_cast<std::uint64_t>(other.num_runs))
      << "changing only the FaultConfig must invalidate every noisy run";
  EXPECT_NE(changed.to_json().dump(), cold.to_json().dump());
}

TEST_F(StoreCampaignTest, CorruptObjectIsRecomputedNotServed) {
  ArtifactStore store({root_, 0});  // no memory cache: force disk reads
  ThreadPool pool(2);
  const core::CampaignConfig config = small_campaign(555);
  const core::CampaignResult cold = core::run_campaign(config, pool, &store);

  // Corrupt every stored object on disk.
  for (const auto& shard : fs::directory_iterator(root_ / "objects")) {
    for (const auto& file : fs::directory_iterator(shard.path())) {
      std::fstream stream(file.path(),
                          std::ios::binary | std::ios::in | std::ios::out);
      stream.seekp(static_cast<std::streamoff>(kEnvelopeSize));
      const char garbage = 0x55;
      stream.write(&garbage, 1);
    }
  }

  const std::uint64_t corrupt_before = obs::counter("store.corrupt").value();
  const core::CampaignResult recovered =
      core::run_campaign(config, pool, &store);
  EXPECT_GT(obs::counter("store.corrupt").value(), corrupt_before);
  EXPECT_EQ(recovered.to_json().dump(), cold.to_json().dump());
  // Every re-read artifact was removed, recomputed, and re-published. The
  // jitter-free reference run is served from the in-process memo, so its
  // (corrupted) object is never re-read — it stays as the one bad object.
  EXPECT_LE(store.objects().verify().corrupt.size(), 1u);
}

}  // namespace
}  // namespace anacin::store

#include "store/object_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/io_chaos.hpp"

namespace anacin::store {
namespace {

namespace fs = std::filesystem;

class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("anacin_store_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static std::vector<std::uint8_t> artifact(double value) {
    return encode_distances({value});
  }

  fs::path root_;
};

TEST_F(ObjectStoreTest, PutGetRoundTrip) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(1.25);
  const Digest key = digest_bytes(bytes.data(), bytes.size());

  EXPECT_FALSE(store.contains(key));
  EXPECT_EQ(store.get(key), nullptr);
  EXPECT_TRUE(store.put(key, Kind::kDistances, bytes));
  EXPECT_TRUE(store.contains(key));

  const ObjectBytes fetched = store.get(key);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(*fetched, bytes);
  // Second put of the same key is a no-op.
  EXPECT_FALSE(store.put(key, Kind::kDistances, bytes));
}

TEST_F(ObjectStoreTest, ObjectsLandInShardedLayout) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(2.0);
  const Digest key = digest_bytes(bytes.data(), bytes.size());
  store.put(key, Kind::kDistances, bytes);

  const std::string hex = key.to_hex();
  EXPECT_TRUE(
      fs::exists(root_ / "objects" / hex.substr(0, 2) / hex.substr(2)));
  EXPECT_TRUE(fs::exists(root_ / "index.json"));
}

TEST_F(ObjectStoreTest, SurvivesReopenAndIndexLoss) {
  const std::vector<std::uint8_t> bytes = artifact(3.0);
  const Digest key = digest_bytes(bytes.data(), bytes.size());
  {
    ObjectStore store({root_, 1 << 20});
    store.put(key, Kind::kDistances, bytes);
  }
  {
    ObjectStore reopened({root_, 1 << 20});
    const ObjectBytes fetched = reopened.get(key);
    ASSERT_NE(fetched, nullptr);
    EXPECT_EQ(*fetched, bytes);
  }
  // The index is a cache: deleting it must not lose objects.
  fs::remove(root_ / "index.json");
  {
    ObjectStore healed({root_, 1 << 20});
    const ObjectBytes fetched = healed.get(key);
    ASSERT_NE(fetched, nullptr);
    EXPECT_EQ(*fetched, bytes);
    EXPECT_EQ(healed.stats().objects, 1u);
  }
}

TEST_F(ObjectStoreTest, MemoryCacheEvictsByBytes) {
  // Budget fits roughly one artifact; inserting several must evict.
  const std::vector<std::uint8_t> bytes = artifact(0.0);
  ObjectStore store({root_, bytes.size() + 4});
  const std::uint64_t evictions_before =
      obs::counter("store.evictions").value();
  for (int i = 0; i < 4; ++i) {
    const std::vector<std::uint8_t> blob = artifact(static_cast<double>(i));
    store.put(digest_bytes(blob.data(), blob.size()), Kind::kDistances, blob);
  }
  EXPECT_GT(obs::counter("store.evictions").value(), evictions_before);
  EXPECT_LE(store.stats().memory_bytes, bytes.size() + 4);
  // Evicted objects are still served from disk.
  const std::vector<std::uint8_t> first = artifact(0.0);
  const ObjectBytes fetched =
      store.get(digest_bytes(first.data(), first.size()));
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(*fetched, first);
}

TEST_F(ObjectStoreTest, CountsHitsAndMisses) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(9.0);
  const Digest key = digest_bytes(bytes.data(), bytes.size());

  const std::uint64_t misses_before = obs::counter("store.misses").value();
  const std::uint64_t hits_before = obs::counter("store.hits").value();
  EXPECT_EQ(store.get(key), nullptr);
  EXPECT_EQ(obs::counter("store.misses").value(), misses_before + 1);

  store.put(key, Kind::kDistances, bytes);
  ASSERT_NE(store.get(key), nullptr);
  EXPECT_EQ(obs::counter("store.hits").value(), hits_before + 1);
}

TEST_F(ObjectStoreTest, StatsCountKinds) {
  ObjectStore store({root_, 1 << 20});
  for (int i = 0; i < 3; ++i) {
    const std::vector<std::uint8_t> blob = artifact(static_cast<double>(i));
    store.put(digest_bytes(blob.data(), blob.size()), Kind::kDistances, blob);
  }
  const ObjectStore::Stats stats = store.stats();
  EXPECT_EQ(stats.objects, 3u);
  EXPECT_EQ(stats.kind_counts.at("distances"), 3u);
  EXPECT_GT(stats.total_bytes, 0u);
}

TEST_F(ObjectStoreTest, VerifyFlagsCorruptAndForeignFiles) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(5.0);
  const Digest key = digest_bytes(bytes.data(), bytes.size());
  store.put(key, Kind::kDistances, bytes);
  EXPECT_TRUE(store.verify().ok());

  // Flip one payload byte on disk.
  const std::string hex = key.to_hex();
  const fs::path path = root_ / "objects" / hex.substr(0, 2) / hex.substr(2);
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(kEnvelopeSize + 2));
    const char garbage = 0x7f;
    file.write(&garbage, 1);
  }
  // Plant a file whose name is not a digest.
  fs::create_directories(root_ / "objects" / "zz");
  std::ofstream(root_ / "objects" / "zz" / "not-a-digest") << "hello";

  const ObjectStore::VerifyReport report = store.verify();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.corrupt.size(), 1u);
  EXPECT_EQ(report.corrupt.front(), hex);
  EXPECT_EQ(report.foreign.size(), 1u);
}

TEST_F(ObjectStoreTest, RepairQuarantinesCorruptAndForeignObjects) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> good = artifact(7.0);
  const Digest good_key = digest_bytes(good.data(), good.size());
  store.put(good_key, Kind::kDistances, good);
  const std::vector<std::uint8_t> bad = artifact(8.0);
  const Digest bad_key = digest_bytes(bad.data(), bad.size());
  store.put(bad_key, Kind::kDistances, bad);

  // A healthy store repairs to a no-op.
  EXPECT_TRUE(store.repair().ok());
  EXPECT_EQ(store.repair().quarantined, 0u);

  // Corrupt one object and plant a foreign file.
  const std::string hex = bad_key.to_hex();
  const fs::path bad_path =
      root_ / "objects" / hex.substr(0, 2) / hex.substr(2);
  {
    std::fstream file(bad_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(kEnvelopeSize + 2));
    const char garbage = 0x7f;
    file.write(&garbage, 1);
  }
  fs::create_directories(root_ / "objects" / "zz");
  std::ofstream(root_ / "objects" / "zz" / "not-a-digest") << "hello";

  const ObjectStore::RepairReport report = store.repair();
  EXPECT_TRUE(report.ok());  // nothing failed to move
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.verified.corrupt.size(), 1u);
  EXPECT_EQ(report.verified.foreign.size(), 1u);

  // Quarantined objects moved aside (inspectable), not deleted.
  EXPECT_FALSE(fs::exists(bad_path));
  EXPECT_TRUE(fs::exists(root_ / "quarantine" / hex));
  EXPECT_TRUE(fs::exists(root_ / "quarantine" / "not-a-digest"));

  // The store no longer serves the corrupt object (callers recompute) but
  // keeps serving the healthy one.
  EXPECT_FALSE(store.contains(bad_key));
  EXPECT_EQ(store.get(bad_key), nullptr);
  ASSERT_NE(store.get(good_key), nullptr);
  EXPECT_TRUE(store.verify().ok());
}

TEST_F(ObjectStoreTest, RepeatedRepairUniquifiesQuarantineNames) {
  ObjectStore store({root_, 1 << 20});
  for (int round = 0; round < 2; ++round) {
    fs::create_directories(root_ / "objects" / "zz");
    std::ofstream(root_ / "objects" / "zz" / "junk") << "round " << round;
    EXPECT_EQ(store.repair().quarantined, 1u);
  }
  EXPECT_TRUE(fs::exists(root_ / "quarantine" / "junk"));
  EXPECT_TRUE(fs::exists(root_ / "quarantine" / "junk.1"));
}

TEST_F(ObjectStoreTest, RemoveDropsObjectEverywhere) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(6.0);
  const Digest key = digest_bytes(bytes.data(), bytes.size());
  store.put(key, Kind::kDistances, bytes);
  store.remove(key);
  EXPECT_FALSE(store.contains(key));
  EXPECT_EQ(store.get(key), nullptr);
  EXPECT_EQ(store.stats().objects, 0u);
}

TEST_F(ObjectStoreTest, GcEvictsDownToBudget) {
  ObjectStore store({root_, 1 << 20});
  std::uint64_t one_size = 0;
  for (int i = 0; i < 5; ++i) {
    const std::vector<std::uint8_t> blob = artifact(static_cast<double>(i));
    one_size = blob.size();
    store.put(digest_bytes(blob.data(), blob.size()), Kind::kDistances, blob);
  }
  const ObjectStore::GcReport report = store.gc(2 * one_size);
  EXPECT_EQ(report.removed_objects, 3u);
  EXPECT_EQ(report.remaining_objects, 2u);
  EXPECT_LE(report.remaining_bytes, 2 * one_size);
  EXPECT_EQ(store.stats().objects, 2u);

  // gc(0) empties the store.
  const ObjectStore::GcReport empty = store.gc(0);
  EXPECT_EQ(empty.remaining_objects, 0u);
  EXPECT_EQ(store.stats().objects, 0u);
}

/// Disk-chaos tests: every one installs a process-global fault config, so
/// SetUp/TearDown reset the engine to keep the plain tests deterministic.
class ObjectStoreChaosTest : public ObjectStoreTest {
 protected:
  void SetUp() override {
    ObjectStoreTest::SetUp();
    support::io_chaos::reset_for_tests();
  }
  void TearDown() override {
    support::io_chaos::reset_for_tests();
    ObjectStoreTest::TearDown();
  }

  void corrupt_object(const Digest& key) {
    const std::string hex = key.to_hex();
    const fs::path path =
        root_ / "objects" / hex.substr(0, 2) / hex.substr(2);
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(kEnvelopeSize + 2));
    const char garbage = 0x7f;
    file.write(&garbage, 1);
  }
};

TEST_F(ObjectStoreChaosTest, PutUnderEnospcThrowsAndStoreStaysScannable) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(1.0);
  const Digest key = digest_bytes(bytes.data(), bytes.size());

  support::install_io_chaos(
      support::IoChaosConfig::parse("enospc=1,scope=store"));
  EXPECT_THROW(store.put(key, Kind::kDistances, bytes), IoError);
  EXPECT_FALSE(store.contains(key));

  // The failed publish left (at most) temp litter, never a partial object:
  // the store still verifies clean.
  support::io_chaos::reset_for_tests();
  EXPECT_TRUE(store.verify().ok());

  // Once the disk "recovers", the same put succeeds.
  EXPECT_TRUE(store.put(key, Kind::kDistances, bytes));
  const ObjectBytes fetched = store.get(key);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(*fetched, bytes);
}

TEST_F(ObjectStoreChaosTest, RepairUnderRenameChaosIsRerunnable) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> good = artifact(7.0);
  const Digest good_key = digest_bytes(good.data(), good.size());
  store.put(good_key, Kind::kDistances, good);
  const std::vector<std::uint8_t> bad = artifact(8.0);
  const Digest bad_key = digest_bytes(bad.data(), bad.size());
  store.put(bad_key, Kind::kDistances, bad);
  corrupt_object(bad_key);

  // Every quarantine rename fails mid-repair, as if the disk died between
  // verify and heal. The repair must report the failures, not abort.
  support::install_io_chaos(
      support::IoChaosConfig::parse("rename_fail=1,scope=store"));
  const ObjectStore::RepairReport wounded = store.repair();
  EXPECT_FALSE(wounded.ok());
  EXPECT_FALSE(wounded.failed.empty());
  EXPECT_EQ(wounded.quarantined, 0u);

  // The store survived: still scannable, healthy object still served, and
  // a re-run after the disk recovers completes the quarantine.
  support::io_chaos::reset_for_tests();
  ASSERT_NE(store.get(good_key), nullptr);
  const ObjectStore::RepairReport healed = store.repair();
  EXPECT_TRUE(healed.ok());
  EXPECT_EQ(healed.quarantined, 1u);
  EXPECT_TRUE(store.verify().ok());
  EXPECT_TRUE(fs::exists(root_ / "quarantine" / bad_key.to_hex()));
}

TEST_F(ObjectStoreChaosTest, ConstructionSweepsPreExistingTempLitter) {
  // A crashed predecessor left a stale temp next to the objects; a fresh
  // temp (a sibling worker's in-flight publish) must survive the sweep.
  fs::create_directories(root_ / "objects" / "ab");
  const fs::path stale = root_ / "objects" / "ab" / "cdef.tmp.4";
  std::ofstream(stale) << "orphan";
  fs::last_write_time(stale, support::process_start_file_time() -
                                 std::chrono::hours(1));
  const fs::path fresh = root_ / "objects" / "ab" / "cdef.tmp.5";
  std::ofstream(fresh) << "in flight";

  ObjectStore store({root_, 1 << 20});
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  EXPECT_TRUE(store.verify().ok());  // temps are not foreign files
}

TEST_F(ObjectStoreChaosTest, GcReportsSweptTempFiles) {
  ObjectStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(2.0);
  store.put(digest_bytes(bytes.data(), bytes.size()), Kind::kDistances,
            bytes);
  const fs::path stale = root_ / "objects" / "zz.tmp.1";
  fs::create_directories(stale.parent_path());
  std::ofstream(stale) << "orphan";
  fs::last_write_time(stale, support::process_start_file_time() -
                                 std::chrono::hours(1));

  const ObjectStore::GcReport report = store.gc(1 << 20);
  EXPECT_EQ(report.removed_temp_files, 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_EQ(report.remaining_objects, 1u);
}

TEST_F(ObjectStoreChaosTest, ArtifactStoreDegradesInsteadOfFailing) {
  ArtifactStore store({root_, 1 << 20});
  const std::vector<std::uint8_t> bytes = artifact(4.5);
  const Digest key = digest_bytes(bytes.data(), bytes.size());
  EXPECT_FALSE(store.degraded());

  support::install_io_chaos(
      support::IoChaosConfig::parse("enospc=1,scope=store"));
  const std::uint64_t degraded_before =
      obs::counter("store.degraded").value();
  // A full disk must not kill the campaign: the save is swallowed, the
  // store latches degraded, and the caller just loses caching.
  EXPECT_NO_THROW(store.save_distance(key, 4.5));
  EXPECT_TRUE(store.degraded());
  EXPECT_EQ(obs::counter("store.degraded").value(), degraded_before + 1);
  EXPECT_FALSE(store.load_distance(key).has_value());

  // Degradation latches for the campaign's lifetime — even after the disk
  // recovers, no further publishes are attempted (and the warning fired
  // exactly once).
  support::io_chaos::reset_for_tests();
  EXPECT_NO_THROW(store.save_distance(key, 4.5));
  EXPECT_TRUE(store.degraded());
  EXPECT_FALSE(store.load_distance(key).has_value());
  EXPECT_EQ(obs::counter("store.degraded").value(), degraded_before + 1);
}

}  // namespace
}  // namespace anacin::store

#include "store/codec.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <limits>

#include "graph/event_graph.hpp"
#include "patterns/pattern.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::store {
namespace {

sim::RunResult sample_run(std::uint64_t seed = 42) {
  patterns::PatternConfig shape;
  shape.num_ranks = 4;
  shape.iterations = 2;
  sim::SimConfig config;
  config.num_ranks = 4;
  config.seed = seed;
  const auto pattern = patterns::make_pattern("amg2013");
  return sim::run_simulation(config, pattern->program(shape));
}

TEST(CodecTrace, RoundTripMatchesJsonForm) {
  const trace::Trace original = sample_run().trace;
  const std::vector<std::uint8_t> blob = encode_trace(original);
  const trace::Trace decoded = decode_trace(blob);
  // The JSON form is the existing canonical serialization of a trace;
  // byte-identical dumps mean the binary codec loses nothing.
  EXPECT_EQ(decoded.to_json().dump(), original.to_json().dump());
}

TEST(CodecEventGraph, RoundTripIsExact) {
  const graph::EventGraph original =
      graph::EventGraph::from_trace(sample_run().trace);
  const std::vector<std::uint8_t> blob = encode_event_graph(original);
  const graph::EventGraph decoded = decode_event_graph(blob);

  EXPECT_EQ(decoded.num_ranks(), original.num_ranks());
  EXPECT_EQ(decoded.num_nodes(), original.num_nodes());
  EXPECT_EQ(decoded.message_edges(), original.message_edges());
  EXPECT_EQ(decoded.max_lamport(), original.max_lamport());
  // Re-encoding captures every node field, offsets, edges, and callstacks:
  // byte equality is full structural equality.
  EXPECT_EQ(encode_event_graph(decoded), blob);
}

TEST(CodecDistances, DoublesRoundTripBitwise) {
  const std::vector<double> values = {
      0.0, -0.0, 1.0 / 3.0, 0.1, 1e-308, 1e308,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity()};
  const std::vector<double> decoded = decode_distances(
      encode_distances(values));
  ASSERT_EQ(decoded.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "value " << i;
  }
}

TEST(CodecDistanceMatrix, RoundTrip) {
  kernels::DistanceMatrix matrix;
  matrix.size = 3;
  matrix.values = {0.0, 1.5, 2.5, 1.5, 0.0, 3.5, 2.5, 3.5, 0.0};
  const kernels::DistanceMatrix decoded =
      decode_distance_matrix(encode_distance_matrix(matrix));
  EXPECT_EQ(decoded.size, matrix.size);
  EXPECT_EQ(decoded.values, matrix.values);
}

TEST(CodecRun, RoundTripKeepsStats) {
  const sim::RunResult run = sample_run();
  EncodedRun original;
  original.graph = graph::EventGraph::from_trace(run.trace);
  original.messages = run.stats.messages;
  original.wildcard_recvs = run.stats.wildcard_recvs;
  original.drops = 17;
  original.retries = 17;
  original.duplicates = 5;
  original.straggler_events = 2;
  const EncodedRun decoded = decode_run(encode_run(original));
  EXPECT_EQ(decoded.messages, original.messages);
  EXPECT_EQ(decoded.wildcard_recvs, original.wildcard_recvs);
  EXPECT_EQ(decoded.drops, original.drops);
  EXPECT_EQ(decoded.retries, original.retries);
  EXPECT_EQ(decoded.duplicates, original.duplicates);
  EXPECT_EQ(decoded.straggler_events, original.straggler_events);
  EXPECT_EQ(encode_event_graph(decoded.graph),
            encode_event_graph(original.graph));
}

TEST(CodecRun, FaultEventsInGraphRoundTrip) {
  patterns::PatternConfig shape;
  shape.num_ranks = 4;
  sim::SimConfig config;
  config.num_ranks = 4;
  config.seed = 3;
  config.faults.drop_probability = 1.0;
  config.faults.max_retries = 1;
  const auto pattern = patterns::make_pattern("message_race");
  const sim::RunResult run =
      sim::run_simulation(config, pattern->program(shape));
  ASSERT_GT(run.stats.drops, 0u);

  EncodedRun original;
  original.graph = graph::EventGraph::from_trace(run.trace);
  original.drops = run.stats.drops;
  const EncodedRun decoded = decode_run(encode_run(original));
  EXPECT_EQ(encode_event_graph(decoded.graph),
            encode_event_graph(original.graph));
}

TEST(CodecCorruption, TruncationIsRejected) {
  const std::vector<std::uint8_t> blob = encode_distances({1.0, 2.0, 3.0});
  // Cut inside the envelope.
  const std::vector<std::uint8_t> headerless(blob.begin(), blob.begin() + 8);
  EXPECT_THROW(validate_envelope(headerless), ParseError);
  // Cut inside the payload.
  std::vector<std::uint8_t> short_payload(blob.begin(), blob.end() - 5);
  try {
    decode_distances(short_payload);
    FAIL() << "truncated artifact was accepted";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated"),
              std::string::npos);
  }
}

TEST(CodecCorruption, FlippedPayloadByteFailsChecksum) {
  std::vector<std::uint8_t> blob = encode_distances({1.0, 2.0, 3.0});
  blob[kEnvelopeSize + 3] ^= 0x40;
  try {
    decode_distances(blob);
    FAIL() << "corrupt artifact was accepted";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos);
  }
}

TEST(CodecCorruption, BadMagicIsRejected) {
  std::vector<std::uint8_t> blob = encode_distances({1.0});
  blob[0] = 'X';
  try {
    validate_envelope(blob);
    FAIL() << "bad magic was accepted";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("magic"), std::string::npos);
  }
}

TEST(CodecCorruption, FutureFormatVersionIsRefusedWithClearError) {
  std::vector<std::uint8_t> blob = encode_distances({1.0});
  blob[4] = static_cast<std::uint8_t>(kFormatVersion + 1);
  try {
    validate_envelope(blob);
    FAIL() << "future-version artifact was accepted";
  } catch (const ParseError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("newer"), std::string::npos) << message;
    EXPECT_NE(message.find(std::to_string(kFormatVersion)),
              std::string::npos)
        << message;
  }
}

TEST(CodecCorruption, KindMismatchIsRejected) {
  const std::vector<std::uint8_t> blob = encode_distances({1.0});
  try {
    decode_trace(blob);
    FAIL() << "kind mismatch was accepted";
  } catch (const ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("kind"), std::string::npos);
  }
}

TEST(CodecFeatures, RoundTripIsBitExact) {
  kernels::SparseHistogram features;
  features.push(3, 1.0);
  features.push(0x9E3779B97F4A7C15ull, 42.0);
  features.push(0xFFFFFFFFFFFFFFFEull, 7.0);
  const kernels::SparseHistogram decoded =
      decode_features(encode_features(features));
  EXPECT_EQ(decoded, features);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded.self_dot),
            std::bit_cast<std::uint64_t>(features.self_dot));

  const kernels::SparseHistogram empty_decoded =
      decode_features(encode_features(kernels::SparseHistogram{}));
  EXPECT_TRUE(empty_decoded.empty());
}

TEST(CodecFeatures, RejectsUnsortedOrInconsistentPayloads) {
  // The encoder writes whatever it is handed; the decoder is the gate.
  kernels::SparseHistogram unsorted;
  unsorted.ids = {20, 10};
  unsorted.counts = {3.0, 2.0};
  unsorted.self_dot = 13.0;
  EXPECT_THROW(decode_features(encode_features(unsorted)), ParseError);

  kernels::SparseHistogram bad_norm;
  bad_norm.ids = {10, 20};
  bad_norm.counts = {3.0, 2.0};
  bad_norm.self_dot = 999.0;  // does not match 3^2 + 2^2
  EXPECT_THROW(decode_features(encode_features(bad_norm)), ParseError);
}

TEST(CodecDeterminism, EncodingIsStable) {
  const trace::Trace trace = sample_run(7).trace;
  EXPECT_EQ(encode_trace(trace), encode_trace(trace));
  const graph::EventGraph graph = graph::EventGraph::from_trace(trace);
  EXPECT_EQ(encode_event_graph(graph), encode_event_graph(graph));
}

}  // namespace
}  // namespace anacin::store

#include "store/hash.hpp"

#include <gtest/gtest.h>

#include "support/json.hpp"

namespace anacin::store {
namespace {

TEST(Fnv1aHash, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  Fnv1a empty;
  EXPECT_EQ(empty.value(), 14695981039346656037ull);

  Fnv1a a;
  a.update("a");
  EXPECT_EQ(a.value(), 0xaf63dc4c8601ec8cull);

  Fnv1a foobar;
  foobar.update("foobar");
  EXPECT_EQ(foobar.value(), 0x85944171f73967e8ull);
}

TEST(Fnv1aHash, StreamingEqualsOneShot) {
  Fnv1a streaming;
  streaming.update("hello ");
  streaming.update("world");
  Fnv1a one_shot;
  one_shot.update("hello world");
  EXPECT_EQ(streaming.value(), one_shot.value());
}

TEST(DigestTest, HexRoundTrip) {
  const Digest digest = digest_string("some artifact identity");
  const std::string hex = digest.to_hex();
  EXPECT_EQ(hex.size(), 32u);
  const auto parsed = Digest::from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, digest);
}

TEST(DigestTest, FromHexRejectsMalformedInput) {
  EXPECT_FALSE(Digest::from_hex("").has_value());
  EXPECT_FALSE(Digest::from_hex("abc").has_value());
  EXPECT_FALSE(
      Digest::from_hex("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz").has_value());
  // Uppercase is not canonical.
  EXPECT_FALSE(
      Digest::from_hex("ABCDEF0123456789ABCDEF0123456789").has_value());
}

TEST(DigestTest, HalvesAreIndependent) {
  const Digest digest = digest_string("x");
  EXPECT_NE(digest.hi, digest.lo);
  EXPECT_NE(digest_string("x"), digest_string("y"));
}

TEST(DigestTest, JsonDigestIgnoresInsertionOrder) {
  json::Value a = json::Value::object();
  a.set("pattern", "message_race");
  a.set("ranks", 8);
  json::Value b = json::Value::object();
  b.set("ranks", 8);
  b.set("pattern", "message_race");
  EXPECT_EQ(digest_json(a), digest_json(b));

  b.set("ranks", 16);
  EXPECT_NE(digest_json(a), digest_json(b));
}

}  // namespace
}  // namespace anacin::store

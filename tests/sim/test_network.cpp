#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::sim {
namespace {

SimConfig two_node_config() {
  SimConfig config;
  config.num_ranks = 8;
  config.num_nodes = 2;
  return config;
}

TEST(NodeMapping, BlockMappingSplitsEvenly) {
  const SimConfig config = two_node_config();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(config.node_of(r), 0);
  for (int r = 4; r < 8; ++r) EXPECT_EQ(config.node_of(r), 1);
}

TEST(NodeMapping, UnevenRanksStillCovered) {
  SimConfig config;
  config.num_ranks = 5;
  config.num_nodes = 2;
  // ceil(5/2)=3 ranks per node: 0,1,2 -> node 0; 3,4 -> node 1.
  EXPECT_EQ(config.node_of(2), 0);
  EXPECT_EQ(config.node_of(3), 1);
  EXPECT_EQ(config.node_of(4), 1);
}

TEST(NodeMapping, SingleNodePutsEveryoneTogether) {
  SimConfig config;
  config.num_ranks = 16;
  config.num_nodes = 1;
  for (int r = 0; r < 16; ++r) EXPECT_EQ(config.node_of(r), 0);
}

TEST(NetworkModel, DelayAtLeastBaseLatency) {
  const SimConfig config = two_node_config();
  NetworkModel model(config.network, config, Rng(1));
  for (int i = 0; i < 100; ++i) {
    const auto d = model.sample(0, 1, 0);
    EXPECT_GE(d.delay_us, config.network.latency_intra_us);
  }
}

TEST(NetworkModel, InterNodeLatencyHigher) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 0.0;
  NetworkModel model(config.network, config, Rng(1));
  const auto intra = model.sample(0, 1, 0);
  const auto inter = model.sample(0, 7, 0);
  EXPECT_DOUBLE_EQ(intra.delay_us, config.network.latency_intra_us);
  EXPECT_DOUBLE_EQ(inter.delay_us, config.network.latency_inter_us);
  EXPECT_GT(inter.delay_us, intra.delay_us);
}

TEST(NetworkModel, BandwidthTermScalesWithSize) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 0.0;
  NetworkModel model(config.network, config, Rng(1));
  const auto small = model.sample(0, 1, 0);
  const auto big = model.sample(0, 1, 100000);
  EXPECT_NEAR(big.delay_us - small.delay_us,
              100000.0 / config.network.bandwidth_bytes_per_us, 1e-9);
}

TEST(NetworkModel, ZeroNdNeverJitters) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 0.0;
  NetworkModel model(config.network, config, Rng(1));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.sample(0, 1, 0).jittered);
}

TEST(NetworkModel, FullNdAlwaysJitters) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 1.0;
  NetworkModel model(config.network, config, Rng(1));
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(model.sample(0, 1, 0).jittered);
}

TEST(NetworkModel, InterNodeLinksJitterMoreOften) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 0.2;
  config.network.inter_node_nd_multiplier = 3.0;
  NetworkModel model(config.network, config, Rng(1));
  int intra_jittered = 0;
  int inter_jittered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(0, 1, 0).jittered) ++intra_jittered;  // same node
    if (model.sample(0, 7, 0).jittered) ++inter_jittered;  // across nodes
  }
  EXPECT_NEAR(static_cast<double>(intra_jittered) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(inter_jittered) / n, 0.6, 0.02);
}

TEST(NetworkModel, InterNodeMultiplierCapsAtOne) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 0.9;
  config.network.inter_node_nd_multiplier = 5.0;
  NetworkModel model(config.network, config, Rng(1));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(model.sample(0, 7, 0).jittered);
  }
}

TEST(NetworkConfig, RejectsSubUnitInterNodeMultiplier) {
  NetworkConfig config;
  config.inter_node_nd_multiplier = 0.5;
  EXPECT_THROW(config.validate(), Error);
}

TEST(NetworkModel, PartialNdJittersAboutTheRightFraction) {
  SimConfig config = two_node_config();
  config.network.nd_fraction = 0.3;
  NetworkModel model(config.network, config, Rng(1));
  int jittered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(0, 1, 0).jittered) ++jittered;
  }
  EXPECT_NEAR(static_cast<double>(jittered) / n, 0.3, 0.02);
}

TEST(NetworkModel, OutOfRangeRankRejected) {
  const SimConfig config = two_node_config();
  NetworkModel model(config.network, config, Rng(1));
  EXPECT_THROW(model.node_of(8), Error);
  EXPECT_THROW(model.node_of(-1), Error);
}

TEST(NetworkConfig, ValidationCatchesBadValues) {
  NetworkConfig config;
  config.nd_fraction = 1.5;
  EXPECT_THROW(config.validate(), Error);
  config.nd_fraction = -0.1;
  EXPECT_THROW(config.validate(), Error);
  config.nd_fraction = 0.5;
  config.bandwidth_bytes_per_us = 0.0;
  EXPECT_THROW(config.validate(), Error);
}

TEST(NetworkConfig, JsonRoundTrip) {
  NetworkConfig config;
  config.nd_fraction = 0.75;
  config.latency_inter_us = 12.5;
  const NetworkConfig copy = NetworkConfig::from_json(config.to_json());
  EXPECT_DOUBLE_EQ(copy.nd_fraction, 0.75);
  EXPECT_DOUBLE_EQ(copy.latency_inter_us, 12.5);
}

TEST(SimConfigValidation, RejectsBadShapes) {
  SimConfig config;
  config.num_ranks = 0;
  EXPECT_THROW(config.validate(), Error);
  config.num_ranks = 4;
  config.num_nodes = 5;
  EXPECT_THROW(config.validate(), Error);
  config.num_nodes = 0;
  EXPECT_THROW(config.validate(), Error);
}

TEST(MultiNode, CrossNodeTrafficIsSlower) {
  // Same program on 1 node vs 2 nodes: the 2-node run's makespan must be
  // larger because half the messages pay inter-node latency.
  auto pingpong = [](Comm& comm) {
    const int peer = comm.rank() == 0 ? comm.size() - 1 : 0;
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        comm.send(peer, 0);
        (void)comm.recv(peer, 0);
      }
    } else if (comm.rank() == comm.size() - 1) {
      for (int i = 0; i < 50; ++i) {
        (void)comm.recv(0, 0);
        comm.send(0, 0);
      }
    }
  };
  SimConfig one_node;
  one_node.num_ranks = 4;
  one_node.num_nodes = 1;
  one_node.network.nd_fraction = 0.0;
  SimConfig two_nodes = one_node;
  two_nodes.num_nodes = 2;

  const RunResult a = run_simulation(one_node, pingpong);
  const RunResult b = run_simulation(two_nodes, pingpong);
  EXPECT_GT(b.stats.makespan_us, a.stats.makespan_us);
}

}  // namespace
}  // namespace anacin::sim

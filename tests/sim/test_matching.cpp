#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "sim/simulator.hpp"

namespace anacin::sim {
namespace {

SimConfig config_with_nd(int ranks, double nd_fraction, std::uint64_t seed) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd_fraction;
  return config;
}

TEST(Matching, ChannelsAreFifoEvenWithFullJitter) {
  // One sender fires 50 messages carrying sequence numbers at a single
  // receiver that receives from the explicit source. The MPI non-overtaking
  // rule says they must match in send order, jitter or not.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    std::vector<std::uint64_t> order;
    run_simulation(config_with_nd(2, 1.0, seed), [&order](Comm& comm) {
      constexpr int kCount = 50;
      if (comm.rank() == 0) {
        for (int i = 0; i < kCount; ++i) {
          comm.send(1, 0, payload_from_u64(static_cast<std::uint64_t>(i)));
        }
      } else {
        for (int i = 0; i < kCount; ++i) {
          order.push_back(u64_from_payload(comm.recv(0, 0).payload));
        }
      }
    });
    ASSERT_EQ(order.size(), 50u);
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i) << "seed " << seed;
    }
  }
}

TEST(Matching, WildcardRaceResolvesDifferentlyAcrossSeeds) {
  // Classic message race: ranks 1..3 each send once to rank 0, which posts
  // wildcard receives. Under 100% jitter the arrival order varies by seed.
  std::set<std::vector<int>> observed_orders;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<int> order;
    run_simulation(config_with_nd(4, 1.0, seed), [&order](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < 3; ++i) order.push_back(comm.recv().source);
      } else {
        comm.send(0, 0);
      }
    });
    observed_orders.insert(order);
  }
  EXPECT_GT(observed_orders.size(), 1u)
      << "100% non-determinism should produce varying match orders";
}

TEST(Matching, ZeroNdFractionFreezesTheRace) {
  std::set<std::vector<int>> observed_orders;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<int> order;
    run_simulation(config_with_nd(4, 0.0, seed), [&order](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < 3; ++i) order.push_back(comm.recv().source);
      } else {
        comm.send(0, 0);
      }
    });
    observed_orders.insert(order);
  }
  EXPECT_EQ(observed_orders.size(), 1u)
      << "0% non-determinism must make every run identical";
}

TEST(Matching, TagFilteringSkipsNonMatching) {
  std::vector<int> tags;
  run_simulation(config_with_nd(2, 0.0, 1), [&tags](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 10, payload_from_u64(10));
      comm.send(1, 20, payload_from_u64(20));
    } else {
      // Receive tag 20 first even though tag 10 arrives first; the tag-10
      // message must wait in the unexpected queue.
      tags.push_back(comm.recv(kAnySource, 20).tag);
      tags.push_back(comm.recv(kAnySource, 10).tag);
    }
  });
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 20);
  EXPECT_EQ(tags[1], 10);
}

TEST(Matching, UnexpectedMessagesMatchInArrivalOrder) {
  std::vector<std::uint64_t> got;
  run_simulation(config_with_nd(2, 0.0, 1), [&got](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 5; ++i) {
        comm.send(1, 0, payload_from_u64(i));
      }
    } else {
      comm.compute(1e6);  // all five messages arrive before any post
      for (int i = 0; i < 5; ++i) {
        got.push_back(u64_from_payload(comm.recv().payload));
      }
    }
  });
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], i);
}

TEST(Matching, PostedReceivesMatchInPostOrder) {
  std::vector<RecvResult> results;
  run_simulation(config_with_nd(2, 0.0, 1), [&results](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(1000.0);  // ensure both irecvs are posted first
      comm.send(1, 0, payload_from_u64(7));
    } else {
      std::array<Request, 2> reqs{comm.irecv(), comm.irecv()};
      const WaitAnyResult first = comm.wait_any(reqs);
      // The first-posted receive must win the match.
      EXPECT_EQ(first.index, 0u);
      results.push_back(first.result);
      comm.send(0, 1);  // unblock nothing; keep graph interesting
      comm.compute(1.0);
      // Second request is still pending; satisfy it.
      // (rank 0 sends one more message below)
    }
    if (comm.rank() == 0) {
      comm.send(1, 0, payload_from_u64(8));
      (void)comm.recv(1, 1);
    } else {
      // retire the remaining request
    }
  });
}

TEST(Matching, WaitAnyReturnsEarliestCompletion) {
  // Rank 1 and rank 2 send to rank 0 with very different compute delays;
  // without jitter the earlier sender must win wait_any.
  std::size_t winner_index = 99;
  int winner_source = -1;
  run_simulation(config_with_nd(3, 0.0, 1),
                 [&winner_index, &winner_source](Comm& comm) {
                   if (comm.rank() == 0) {
                     std::array<Request, 2> reqs{comm.irecv(1, kAnyTag),
                                                 comm.irecv(2, kAnyTag)};
                     const WaitAnyResult w = comm.wait_any(reqs);
                     winner_index = w.index;
                     winner_source = w.result.source;
                     (void)comm.wait(reqs[w.index == 0 ? 1 : 0]);
                   } else if (comm.rank() == 1) {
                     comm.compute(500.0);
                     comm.send(0, 0);
                   } else {
                     comm.send(0, 0);  // rank 2 sends immediately
                   }
                 });
  EXPECT_EQ(winner_index, 1u);
  EXPECT_EQ(winner_source, 2);
}

TEST(Matching, WaitAllReturnsResultsInRequestOrder) {
  std::vector<int> sources;
  run_simulation(config_with_nd(3, 0.0, 1), [&sources](Comm& comm) {
    if (comm.rank() == 0) {
      std::array<Request, 2> reqs{comm.irecv(1, kAnyTag),
                                  comm.irecv(2, kAnyTag)};
      const std::vector<RecvResult> all = comm.wait_all(reqs);
      for (const auto& r : all) sources.push_back(r.source);
    } else {
      if (comm.rank() == 2) comm.compute(100.0);
      comm.send(0, 0);
    }
  });
  // Results align with the request span, not with completion order.
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 1);
  EXPECT_EQ(sources[1], 2);
}

TEST(Matching, SsendBlocksUntilMatched) {
  const RunResult result = run_simulation(
      config_with_nd(2, 0.0, 1), [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.ssend(1, 0);
          comm.compute(1.0);
        } else {
          comm.compute(2000.0);  // receiver is late
          (void)comm.recv();
        }
      });
  // The sender's finalize must happen after the receiver finally posted,
  // i.e. after its 2000us compute phase.
  EXPECT_GE(result.trace.rank_events(0).back().t_end, 2000.0);
}

TEST(Matching, WildcardTagReceivesAnyTag) {
  int got_tag = -1;
  run_simulation(config_with_nd(2, 0.0, 1), [&got_tag](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 17);
    else got_tag = comm.recv(0, kAnyTag).tag;
  });
  EXPECT_EQ(got_tag, 17);
}

TEST(Matching, ManySendersStressUnexpectedQueue) {
  // All senders fire before the receiver posts anything; every message is
  // consumed from the unexpected queue, in arrival order per channel.
  std::vector<int> counts;
  run_simulation(config_with_nd(8, 1.0, 3), [&counts](Comm& comm) {
    constexpr int kPerSender = 10;
    if (comm.rank() == 0) {
      comm.compute(1e7);
      std::vector<int> seen(8, 0);
      for (int i = 0; i < 7 * kPerSender; ++i) {
        const RecvResult r = comm.recv();
        ++seen[static_cast<std::size_t>(r.source)];
      }
      counts = seen;
    } else {
      for (int i = 0; i < kPerSender; ++i) comm.send(0, 0);
    }
  });
  ASSERT_EQ(counts.size(), 8u);
  EXPECT_EQ(counts[0], 0);
  for (int r = 1; r < 8; ++r) EXPECT_EQ(counts[static_cast<std::size_t>(r)], 10);
}

}  // namespace
}  // namespace anacin::sim

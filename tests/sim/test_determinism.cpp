#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace anacin::sim {
namespace {

/// Message-race toy program: ranks 1..n-1 send to rank 0, which receives
/// with wildcards.
void message_race(Comm& comm) {
  if (comm.rank() == 0) {
    for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
  } else {
    comm.send(0, 0, payload_from_u64(static_cast<std::uint64_t>(comm.rank())));
  }
}

/// All-pairs exchange with wildcard receives (AMG-flavoured).
void all_pairs(Comm& comm) {
  const int n = comm.size();
  for (int phase = 0; phase < 2; ++phase) {
    std::vector<Request> requests;
    for (int i = 0; i < n - 1; ++i) requests.push_back(comm.irecv());
    for (int dst = 0; dst < n; ++dst) {
      if (dst != comm.rank()) comm.send(dst, phase);
    }
    (void)comm.wait_all(requests);
  }
}

SimConfig make_config(int ranks, double nd, std::uint64_t seed) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  return config;
}

std::string trace_fingerprint(const trace::Trace& trace) {
  return trace.to_json().dump();
}

TEST(Determinism, IdenticalSeedIdenticalTrace) {
  for (const double nd : {0.0, 0.5, 1.0}) {
    const RunResult a = run_simulation(make_config(6, nd, 42), message_race);
    const RunResult b = run_simulation(make_config(6, nd, 42), message_race);
    EXPECT_EQ(trace_fingerprint(a.trace), trace_fingerprint(b.trace))
        << "nd=" << nd;
  }
}

TEST(Determinism, IdenticalSeedIdenticalTraceAllPairs) {
  const RunResult a = run_simulation(make_config(5, 1.0, 9), all_pairs);
  const RunResult b = run_simulation(make_config(5, 1.0, 9), all_pairs);
  EXPECT_EQ(trace_fingerprint(a.trace), trace_fingerprint(b.trace));
}

TEST(Determinism, ZeroNdIdenticalAcrossSeeds) {
  const RunResult reference =
      run_simulation(make_config(6, 0.0, 1), message_race);
  for (std::uint64_t seed = 2; seed <= 8; ++seed) {
    const RunResult other =
        run_simulation(make_config(6, 0.0, seed), message_race);
    EXPECT_EQ(trace_fingerprint(reference.trace),
              trace_fingerprint(other.trace))
        << "seed " << seed;
  }
}

TEST(Determinism, FullNdVariesAcrossSeeds) {
  const RunResult reference =
      run_simulation(make_config(8, 1.0, 1), message_race);
  int different = 0;
  for (std::uint64_t seed = 2; seed <= 11; ++seed) {
    const RunResult other =
        run_simulation(make_config(8, 1.0, seed), message_race);
    if (trace_fingerprint(reference.trace) != trace_fingerprint(other.trace)) {
      ++different;
    }
  }
  EXPECT_GE(different, 7) << "most seeds should produce distinct traces";
}

ReplaySchedule schedule_from_trace(const trace::Trace& trace) {
  ReplaySchedule schedule;
  schedule.wildcard_matches.resize(
      static_cast<std::size_t>(trace.num_ranks()));
  for (int r = 0; r < trace.num_ranks(); ++r) {
    for (const auto& event : trace.rank_events(r)) {
      if (event.type == trace::EventType::kRecv &&
          event.posted_source == kAnySource) {
        schedule.wildcard_matches[static_cast<std::size_t>(r)].push_back(
            {event.matched_rank, event.matched_seq});
      }
    }
  }
  return schedule;
}

std::vector<std::vector<int>> match_orders(const trace::Trace& trace) {
  std::vector<std::vector<int>> orders(
      static_cast<std::size_t>(trace.num_ranks()));
  for (int r = 0; r < trace.num_ranks(); ++r) {
    for (const auto& event : trace.rank_events(r)) {
      if (event.type == trace::EventType::kRecv) {
        orders[static_cast<std::size_t>(r)].push_back(event.matched_rank);
      }
    }
  }
  return orders;
}

TEST(Determinism, ReplayForcesRecordedWildcardOrder) {
  // Record a noisy run, then replay it under a *different* seed: matching
  // decisions must reproduce the recorded run exactly (ReMPI-style).
  const RunResult recorded =
      run_simulation(make_config(8, 1.0, 5), message_race);
  const ReplaySchedule schedule = schedule_from_trace(recorded.trace);
  ASSERT_GT(schedule.total_matches(), 0u);

  SimConfig replay_config = make_config(8, 1.0, 999);
  replay_config.replay = &schedule;
  const RunResult replayed = run_simulation(replay_config, message_race);

  EXPECT_EQ(match_orders(recorded.trace), match_orders(replayed.trace));
}

TEST(Determinism, ReplayWorksForWaitAllPrograms) {
  const RunResult recorded = run_simulation(make_config(5, 1.0, 3), all_pairs);
  const ReplaySchedule schedule = schedule_from_trace(recorded.trace);

  SimConfig replay_config = make_config(5, 1.0, 12345);
  replay_config.replay = &schedule;
  const RunResult replayed = run_simulation(replay_config, all_pairs);

  EXPECT_EQ(match_orders(recorded.trace), match_orders(replayed.trace));
}

TEST(Determinism, ReplayOfOwnScheduleIsIdempotent) {
  const RunResult recorded =
      run_simulation(make_config(6, 1.0, 8), message_race);
  const ReplaySchedule schedule = schedule_from_trace(recorded.trace);

  SimConfig replay_config = make_config(6, 1.0, 8);
  replay_config.replay = &schedule;
  const RunResult replayed = run_simulation(replay_config, message_race);
  EXPECT_EQ(match_orders(recorded.trace), match_orders(replayed.trace));
}

TEST(Determinism, StatsCountersAreConsistent) {
  const RunResult result = run_simulation(make_config(6, 1.0, 2), all_pairs);
  // 2 phases x 5 ranks sending to 5 peers.
  EXPECT_EQ(result.stats.messages, 2u * 6u * 5u);
  EXPECT_EQ(result.stats.wildcard_recvs, 2u * 6u * 5u);
  EXPECT_EQ(result.stats.jittered_messages, result.stats.messages)
      << "nd_fraction=1 jitters every message";
  EXPECT_GT(result.stats.calls, 0u);
}

TEST(Determinism, JitteredFlagPropagatesToRecvEvents) {
  const RunResult result =
      run_simulation(make_config(4, 1.0, 2), message_race);
  for (const auto& event : result.trace.rank_events(0)) {
    if (event.type == trace::EventType::kRecv) {
      EXPECT_TRUE(event.jittered);
    }
  }
  const RunResult quiet = run_simulation(make_config(4, 0.0, 2), message_race);
  for (const auto& event : quiet.trace.rank_events(0)) {
    if (event.type == trace::EventType::kRecv) {
      EXPECT_FALSE(event.jittered);
    }
  }
}

}  // namespace
}  // namespace anacin::sim

#include <gtest/gtest.h>

#include <vector>

#include "graph/event_graph.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace anacin::sim {
namespace {

/// Property tests over *generated* programs: a seeded generator produces a
/// random but deadlock-free communication script (every send is eventually
/// matched by a wildcard receive on its destination), which is then run
/// under several engine configurations. The engine must uphold its
/// invariants for all of them — not just for the handwritten patterns.
struct ScriptStep {
  enum class Kind { kSend, kRecvAll, kCompute } kind = Kind::kCompute;
  int dest = 0;
  double amount = 0.0;
};

struct Script {
  int num_ranks = 2;
  /// steps[rank] executed in order; recv counts derived from send totals.
  std::vector<std::vector<ScriptStep>> steps;
  std::vector<int> expected_recvs;  // per rank
};

Script generate_script(std::uint64_t seed) {
  Rng rng(seed);
  Script script;
  script.num_ranks = static_cast<int>(rng.uniform_int(2, 9));
  script.steps.resize(static_cast<std::size_t>(script.num_ranks));
  script.expected_recvs.assign(static_cast<std::size_t>(script.num_ranks),
                               0);
  for (int rank = 0; rank < script.num_ranks; ++rank) {
    const int operations = static_cast<int>(rng.uniform_int(1, 12));
    for (int op = 0; op < operations; ++op) {
      ScriptStep step;
      if (rng.bernoulli(0.6)) {
        step.kind = ScriptStep::Kind::kSend;
        step.dest = static_cast<int>(
            rng.uniform_int(0, script.num_ranks - 1));
        ++script.expected_recvs[static_cast<std::size_t>(step.dest)];
      } else {
        step.kind = ScriptStep::Kind::kCompute;
        step.amount = rng.uniform(0.0, 50.0);
      }
      script.steps[static_cast<std::size_t>(rank)].push_back(step);
    }
  }
  return script;
}

RankProgram program_for(const Script& script) {
  return [&script](Comm& comm) {
    // Post all receives up front (wildcards), then run the script, then
    // retire the receives — always deadlock-free because sends buffer.
    std::vector<Request> requests;
    const int expected =
        script.expected_recvs[static_cast<std::size_t>(comm.rank())];
    requests.reserve(static_cast<std::size_t>(expected));
    for (int i = 0; i < expected; ++i) requests.push_back(comm.irecv());
    for (const ScriptStep& step :
         script.steps[static_cast<std::size_t>(comm.rank())]) {
      switch (step.kind) {
        case ScriptStep::Kind::kSend: comm.send(step.dest, 0); break;
        case ScriptStep::Kind::kCompute: comm.compute(step.amount); break;
        case ScriptStep::Kind::kRecvAll: break;
      }
    }
    (void)comm.wait_all(requests);
  };
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, EngineInvariantsHoldForGeneratedPrograms) {
  const Script script = generate_script(GetParam());
  const RankProgram program = program_for(script);

  std::uint64_t total_sends = 0;
  for (const int count : script.expected_recvs) {
    total_sends += static_cast<std::uint64_t>(count);
  }

  for (const double nd : {0.0, 0.4, 1.0}) {
    SimConfig config;
    config.num_ranks = script.num_ranks;
    config.num_nodes = script.num_ranks >= 4 ? 2 : 1;
    config.seed = GetParam() * 31 + 7;
    config.network.nd_fraction = nd;

    const RunResult result = run_simulation(config, program);
    // Every message sent was received.
    EXPECT_EQ(result.stats.messages, total_sends);
    EXPECT_EQ(result.stats.wildcard_recvs, total_sends);

    // Traces are per-rank monotone (enforced by Trace::append) and the
    // event graph is a DAG with consistent message edges.
    const graph::EventGraph event_graph =
        graph::EventGraph::from_trace(result.trace);
    EXPECT_TRUE(event_graph.digraph().is_dag());
    EXPECT_EQ(event_graph.message_edges().size(), total_sends);
    for (const auto& [send_node, recv_node] : event_graph.message_edges()) {
      EXPECT_LT(event_graph.node(send_node).lamport,
                event_graph.node(recv_node).lamport);
    }

    // Determinism: the same configuration reruns identically.
    const RunResult rerun = run_simulation(config, program);
    EXPECT_EQ(result.trace.to_json().dump(), rerun.trace.to_json().dump());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace anacin::sim

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::sim {
namespace {

SimConfig make_config(int ranks, double nd = 0.0, std::uint64_t seed = 1) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  return config;
}

TEST(Probe, BlocksUntilMessageArrives) {
  ProbeResult envelope;
  run_simulation(make_config(2), [&envelope](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(500.0);
      comm.send(1, 9, payload_from_u64(1), 128);
    } else {
      envelope = comm.probe();
      (void)comm.recv(envelope.source, envelope.tag);
    }
  });
  EXPECT_EQ(envelope.source, 0);
  EXPECT_EQ(envelope.tag, 9);
  EXPECT_EQ(envelope.size_bytes, 128u);
}

TEST(Probe, DoesNotConsumeTheMessage) {
  run_simulation(make_config(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, payload_from_u64(42));
    } else {
      const ProbeResult first = comm.probe();
      const ProbeResult second = comm.probe();  // still there
      EXPECT_EQ(first.source, second.source);
      const RecvResult r = comm.recv(first.source, first.tag);
      EXPECT_EQ(u64_from_payload(r.payload), 42u);
    }
  });
}

TEST(Probe, RespectsTagFilter) {
  run_simulation(make_config(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, payload_from_u64(1));
      comm.send(1, 2, payload_from_u64(2));
    } else {
      const ProbeResult envelope = comm.probe(kAnySource, 2);
      EXPECT_EQ(envelope.tag, 2);
      (void)comm.recv(kAnySource, 2);
      (void)comm.recv(kAnySource, 1);
    }
  });
}

TEST(Probe, UnmatchedProbeDeadlocksWithDiagnostic) {
  try {
    run_simulation(make_config(2), [](Comm& comm) {
      if (comm.rank() == 1) (void)comm.probe(0, 7);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& error) {
    EXPECT_NE(std::string(error.what()).find("probe"), std::string::npos);
  }
}

TEST(Iprobe, PollsWithoutBlocking) {
  int polls_before_arrival = 0;
  run_simulation(make_config(2), [&polls_before_arrival](Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(100.0);
      comm.send(1, 0);
    } else {
      while (!comm.iprobe().has_value()) ++polls_before_arrival;
      (void)comm.recv();
    }
  });
  // The sender computes for 100us first; polling costs virtual time, so
  // the loop must have spun a bounded, nonzero number of times.
  EXPECT_GT(polls_before_arrival, 0);
  EXPECT_LT(polls_before_arrival, 1e6);
}

TEST(Iprobe, ReturnsEnvelopeWhenAvailable) {
  run_simulation(make_config(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, payload_from_u64(5), 64);
    } else {
      comm.compute(1000.0);  // message certainly arrived
      const auto envelope = comm.iprobe(0, 3);
      ASSERT_TRUE(envelope.has_value());
      EXPECT_EQ(envelope->size_bytes, 64u);
      (void)comm.recv(0, 3);
    }
  });
}

TEST(Issend, RequestCompletesAtMatchTime) {
  const RunResult result = run_simulation(make_config(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      Request r = comm.issend(1, 0);
      (void)comm.wait(r);  // blocks until rank 1 posts its receive
      comm.compute(1.0);
    } else {
      comm.compute(800.0);
      (void)comm.recv();
    }
  });
  EXPECT_GE(result.trace.rank_events(0).back().t_end, 800.0);
}

TEST(Sendrecv, ExchangesWithoutDeadlock) {
  std::vector<std::uint64_t> got(4, 0);
  run_simulation(make_config(4), [&got](Comm& comm) {
    const int partner = comm.rank() ^ 1;  // pairs (0,1), (2,3)
    const RecvResult r = comm.sendrecv(
        partner, 0, payload_from_u64(static_cast<std::uint64_t>(comm.rank())),
        partner, 0);
    got[static_cast<std::size_t>(comm.rank())] = u64_from_payload(r.payload);
  });
  EXPECT_EQ(got[0], 1u);
  EXPECT_EQ(got[1], 0u);
  EXPECT_EQ(got[2], 3u);
  EXPECT_EQ(got[3], 2u);
}

TEST(ReduceOps, MinAndMax) {
  double min_at_root = 0.0;
  double max_everywhere = 0.0;
  run_simulation(make_config(7, 1.0, 5),
                 [&min_at_root, &max_everywhere](Comm& comm) {
                   const double mine = static_cast<double>(
                       (comm.rank() * 13) % 7);
                   const double minimum =
                       comm.reduce(0, mine, Comm::ReduceOp::kMin);
                   if (comm.rank() == 0) min_at_root = minimum;
                   max_everywhere =
                       comm.allreduce(mine, Comm::ReduceOp::kMax);
                   EXPECT_DOUBLE_EQ(max_everywhere, 6.0);
                 });
  EXPECT_DOUBLE_EQ(min_at_root, 0.0);
  EXPECT_DOUBLE_EQ(max_everywhere, 6.0);
}

TEST(Allgather, EveryRankGetsEveryPayload) {
  constexpr int kRanks = 6;
  std::vector<std::vector<std::uint64_t>> received(kRanks);
  run_simulation(make_config(kRanks, 1.0, 9), [&received](Comm& comm) {
    const auto all = comm.allgather(
        payload_from_u64(static_cast<std::uint64_t>(comm.rank() * 11)));
    for (const Payload& p : all) {
      received[static_cast<std::size_t>(comm.rank())].push_back(
          u64_from_payload(p));
    }
  });
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(received[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(kRanks));
    for (int src = 0; src < kRanks; ++src) {
      EXPECT_EQ(received[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(src)],
                static_cast<std::uint64_t>(src * 11));
    }
  }
}

TEST(Allgather, VariableLengthPayloads) {
  constexpr int kRanks = 4;
  std::vector<std::size_t> sizes_seen;
  run_simulation(make_config(kRanks), [&sizes_seen](Comm& comm) {
    const auto all = comm.allgather(
        payload_of_size(static_cast<std::size_t>(comm.rank()) * 3));
    if (comm.rank() == 2) {
      for (const Payload& p : all) sizes_seen.push_back(p.size());
    }
  });
  EXPECT_EQ(sizes_seen, (std::vector<std::size_t>{0, 3, 6, 9}));
}

TEST(Scatter, DistributesChunks) {
  constexpr int kRanks = 5;
  std::vector<std::uint64_t> got(kRanks, 0);
  run_simulation(make_config(kRanks, 1.0, 4), [&got](Comm& comm) {
    std::vector<Payload> chunks;
    if (comm.rank() == 1) {
      for (int r = 0; r < comm.size(); ++r) {
        chunks.push_back(
            payload_from_u64(static_cast<std::uint64_t>(100 + r)));
      }
    }
    const Payload mine = comm.scatter(1, std::move(chunks));
    got[static_cast<std::size_t>(comm.rank())] = u64_from_payload(mine);
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(100 + r));
  }
}

TEST(Scatter, RootChunkCountValidated) {
  EXPECT_THROW(
      run_simulation(make_config(3),
                     [](Comm& comm) {
                       std::vector<Payload> chunks(2);  // wrong: need 3
                       (void)comm.scatter(0, comm.rank() == 0
                                                 ? std::move(chunks)
                                                 : std::vector<Payload>{});
                     }),
      Error);
}

TEST(ScanSum, InclusivePrefix) {
  constexpr int kRanks = 6;
  std::vector<double> prefix(kRanks, -1.0);
  run_simulation(make_config(kRanks, 1.0, 8), [&prefix](Comm& comm) {
    prefix[static_cast<std::size_t>(comm.rank())] =
        comm.scan_sum(static_cast<double>(comm.rank() + 1));
  });
  double expected = 0.0;
  for (int r = 0; r < kRanks; ++r) {
    expected += r + 1;
    EXPECT_DOUBLE_EQ(prefix[static_cast<std::size_t>(r)], expected);
  }
}

TEST(CollectiveContext, WildcardRecvNeverStealsCollectiveTraffic) {
  // A wildcard-everything irecv is outstanding while a barrier runs; the
  // barrier's internal messages must not match it (separate context, as in
  // MPI communicators).
  std::vector<std::uint64_t> got(4, 0);
  run_simulation(make_config(4, 1.0, 3), [&got](Comm& comm) {
    Request r = comm.irecv(kAnySource, kAnyTag);
    comm.barrier();
    comm.barrier();
    // Only now does the real user message arrive.
    const int peer = (comm.rank() + 1) % comm.size();
    comm.send(peer, 5, payload_from_u64(77));
    got[static_cast<std::size_t>(comm.rank())] =
        u64_from_payload(comm.wait(r).payload);
  });
  for (const std::uint64_t v : got) EXPECT_EQ(v, 77u);
}

TEST(ProbeRacePattern, RacesAcrossSeeds) {
  // The probe_race mini-app receives with explicit sources, yet is still
  // non-deterministic: the race lives in the ANY_SOURCE probe.
  std::set<std::string> signatures;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SimConfig config = make_config(6, 1.0, seed);
    std::string signature;
    run_simulation(config, [&signature](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < comm.size() - 1; ++i) {
          const ProbeResult envelope = comm.probe(kAnySource, 0);
          (void)comm.recv(envelope.source, 0);
          signature += static_cast<char>('0' + envelope.source);
        }
      } else {
        comm.send(0, 0);
      }
    });
    signatures.insert(signature);
  }
  EXPECT_GT(signatures.size(), 1u);
}

}  // namespace
}  // namespace anacin::sim

#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::sim {
namespace {

SimConfig tiny(int ranks) {
  SimConfig config;
  config.num_ranks = ranks;
  config.network.nd_fraction = 0.0;
  return config;
}

TEST(Deadlock, MutualBlockingRecvIsDetected) {
  try {
    run_simulation(tiny(2), [](Comm& comm) { (void)comm.recv(); });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos);
    EXPECT_NE(what.find("rank 1"), std::string::npos);
    EXPECT_NE(what.find("recv"), std::string::npos);
    EXPECT_NE(what.find("ANY"), std::string::npos);
  }
}

TEST(Deadlock, SsendWithoutReceiverIsDetected) {
  try {
    run_simulation(tiny(2), [](Comm& comm) {
      if (comm.rank() == 0) comm.ssend(1, 0);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& error) {
    EXPECT_NE(std::string(error.what()).find("ssend"), std::string::npos);
  }
}

TEST(Deadlock, WaitOnNeverMatchedIrecv) {
  EXPECT_THROW(run_simulation(tiny(2),
                              [](Comm& comm) {
                                if (comm.rank() == 0) {
                                  Request r = comm.irecv(1, 5);
                                  (void)comm.wait(r);
                                }
                              }),
               DeadlockError);
}

TEST(Deadlock, TagMismatchDeadlocks) {
  // Sender uses tag 1, receiver insists on tag 2: the message sits in the
  // unexpected queue forever.
  EXPECT_THROW(run_simulation(tiny(2),
                              [](Comm& comm) {
                                if (comm.rank() == 0) comm.send(1, 1);
                                else (void)comm.recv(kAnySource, 2);
                              }),
               DeadlockError);
}

TEST(Deadlock, DiagnosticMentionsUnexpectedMessages) {
  try {
    run_simulation(tiny(2), [](Comm& comm) {
      if (comm.rank() == 0) comm.send(1, 1);
      else (void)comm.recv(kAnySource, 2);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& error) {
    EXPECT_NE(std::string(error.what()).find("1 unexpected"),
              std::string::npos);
  }
}

TEST(Deadlock, CleanRunsDoNotFalselyTrigger) {
  // A program with heavy waiting but a consistent schedule must complete.
  EXPECT_NO_THROW(run_simulation(tiny(4), [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int i = 0; i < 10; ++i) {
      Request r = comm.irecv(prev, 0);
      comm.send(next, 0);
      (void)comm.wait(r);
    }
  }));
}

TEST(Deadlock, EngineReusableAfterDeadlockThrow) {
  // A deadlocked run must not poison subsequent simulations (threads are
  // torn down cleanly).
  EXPECT_THROW(run_simulation(tiny(2), [](Comm& comm) { (void)comm.recv(); }),
               DeadlockError);
  EXPECT_NO_THROW(run_simulation(tiny(2), [](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0);
    else (void)comm.recv();
  }));
}

TEST(Deadlock, WaitOnForeignRequestIsUsageError) {
  EXPECT_THROW(run_simulation(tiny(1),
                              [](Comm& comm) {
                                Request r = comm.irecv(0, 0);
                                comm.send(0, 0);
                                (void)comm.wait(r);
                                (void)comm.wait(r);  // already retired
                              }),
               SimUsageError);
}

}  // namespace
}  // namespace anacin::sim

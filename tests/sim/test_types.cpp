#include "sim/types.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace anacin::sim {
namespace {

TEST(Payload, DoubleRoundTrip) {
  EXPECT_DOUBLE_EQ(double_from_payload(payload_from_double(3.14159)),
                   3.14159);
  EXPECT_DOUBLE_EQ(double_from_payload(payload_from_double(-0.0)), -0.0);
  EXPECT_DOUBLE_EQ(double_from_payload(payload_from_double(1e308)), 1e308);
}

TEST(Payload, DoublesRoundTrip) {
  const std::vector<double> values{1.0, -2.5, 1e-9, 4e7};
  EXPECT_EQ(doubles_from_payload(payload_from_doubles(values)), values);
  EXPECT_TRUE(doubles_from_payload(payload_from_doubles({})).empty());
}

TEST(Payload, U64RoundTrip) {
  EXPECT_EQ(u64_from_payload(payload_from_u64(0)), 0u);
  EXPECT_EQ(u64_from_payload(payload_from_u64(~0ull)), ~0ull);
}

TEST(Payload, StringRoundTrip) {
  EXPECT_EQ(string_from_payload(payload_from_string("hello\0x"
                                                    " world")),
            std::string("hello\0x"
                        " world"));
  EXPECT_EQ(string_from_payload(payload_from_string("")), "");
}

TEST(Payload, SizeHelper) {
  EXPECT_EQ(payload_of_size(0).size(), 0u);
  EXPECT_EQ(payload_of_size(1024).size(), 1024u);
}

TEST(Payload, WrongSizeDecodeThrows) {
  const Payload three_bytes = payload_of_size(3);
  EXPECT_THROW(double_from_payload(three_bytes), Error);
  EXPECT_THROW(u64_from_payload(three_bytes), Error);
  EXPECT_THROW(doubles_from_payload(three_bytes), Error);
}

TEST(Request, DefaultIsInvalid) {
  const Request request;
  EXPECT_FALSE(request.valid());
}

TEST(Constants, WildcardsAreNegative) {
  EXPECT_LT(kAnySource, 0);
  EXPECT_LT(kAnyTag, 0);
  EXPECT_GT(kCollectiveTagBase, 0);
}

}  // namespace
}  // namespace anacin::sim

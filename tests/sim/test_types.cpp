#include "sim/types.hpp"

#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace anacin::sim {
namespace {

TEST(Payload, DoubleRoundTrip) {
  EXPECT_DOUBLE_EQ(double_from_payload(payload_from_double(3.14159)),
                   3.14159);
  EXPECT_DOUBLE_EQ(double_from_payload(payload_from_double(-0.0)), -0.0);
  EXPECT_DOUBLE_EQ(double_from_payload(payload_from_double(1e308)), 1e308);
}

TEST(Payload, DoublesRoundTrip) {
  const std::vector<double> values{1.0, -2.5, 1e-9, 4e7};
  EXPECT_EQ(doubles_from_payload(payload_from_doubles(values)), values);
  EXPECT_TRUE(doubles_from_payload(payload_from_doubles({})).empty());
}

TEST(Payload, U64RoundTrip) {
  EXPECT_EQ(u64_from_payload(payload_from_u64(0)), 0u);
  EXPECT_EQ(u64_from_payload(payload_from_u64(~0ull)), ~0ull);
}

TEST(Payload, StringRoundTrip) {
  EXPECT_EQ(string_from_payload(payload_from_string("hello\0x"
                                                    " world")),
            std::string("hello\0x"
                        " world"));
  EXPECT_EQ(string_from_payload(payload_from_string("")), "");
}

TEST(Payload, SizeHelper) {
  EXPECT_EQ(payload_of_size(0).size(), 0u);
  EXPECT_EQ(payload_of_size(1024).size(), 1024u);
}

TEST(Payload, WrongSizeDecodeThrows) {
  const Payload three_bytes = payload_of_size(3);
  EXPECT_THROW(double_from_payload(three_bytes), Error);
  EXPECT_THROW(u64_from_payload(three_bytes), Error);
  EXPECT_THROW(doubles_from_payload(three_bytes), Error);
}

TEST(Request, DefaultIsInvalid) {
  const Request request;
  EXPECT_FALSE(request.valid());
}

TEST(Constants, WildcardsAreNegative) {
  EXPECT_LT(kAnySource, 0);
  EXPECT_LT(kAnyTag, 0);
  EXPECT_GT(kCollectiveTagBase, 0);
}

TEST(SimConfig, JsonRoundTripIsLossless) {
  // The --isolate=process worker protocol ships configs as JSON; every
  // behavioral field must survive the round trip. (Seeds above 2^53 do
  // not fit a JSON double — the protocol ships the seed separately as a
  // decimal string, so this test stays within exact range.)
  SimConfig config;
  config.num_ranks = 12;
  config.num_nodes = 3;
  config.seed = 987654321;
  config.network.nd_fraction = 0.25;
  config.network.latency_inter_us = 7.5;
  config.network.jitter_mean_inter_us = 33.0;
  config.faults.drop_probability = 0.125;
  config.faults.duplicate_probability = 0.0625;
  config.max_calls = 123456;
  const SimConfig decoded = SimConfig::from_json(config.to_json());
  EXPECT_EQ(decoded.to_json().dump(), config.to_json().dump());
  EXPECT_EQ(decoded.num_ranks, 12);
  EXPECT_EQ(decoded.seed, 987654321u);
  EXPECT_DOUBLE_EQ(decoded.network.nd_fraction, 0.25);
}

TEST(SimConfig, ReplayScheduleDoesNotSerialize) {
  SimConfig config;
  json::Value doc = config.to_json();
  doc.set("replay", true);
  EXPECT_THROW(SimConfig::from_json(doc), ConfigError);
}

}  // namespace
}  // namespace anacin::sim

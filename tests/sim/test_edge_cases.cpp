#include <gtest/gtest.h>

#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::sim {
namespace {

SimConfig config_of(int ranks, double nd = 0.0, std::uint64_t seed = 1) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  return config;
}

TEST(EdgeCases, ZeroCostComputeIsANoop) {
  const RunResult result = run_simulation(config_of(1), [](Comm& comm) {
    comm.compute(0.0);
    comm.compute(0.0);
  });
  EXPECT_DOUBLE_EQ(result.stats.makespan_us, 0.0);
}

TEST(EdgeCases, NegativeComputeRejected) {
  EXPECT_THROW(
      run_simulation(config_of(1), [](Comm& comm) { comm.compute(-1.0); }),
      Error);
}

TEST(EdgeCases, ZeroByteMessages) {
  const RunResult result = run_simulation(config_of(2), [](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0);
    else EXPECT_TRUE(comm.recv().payload.empty());
  });
  EXPECT_EQ(result.trace.rank_events(0)[1].size_bytes, 0u);
}

TEST(EdgeCases, TagBoundaries) {
  // User tags right below the collective base are legal; far above the
  // collective range they are rejected.
  EXPECT_NO_THROW(run_simulation(config_of(2), [](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, kCollectiveTagBase - 1);
    else (void)comm.recv(0, kCollectiveTagBase - 1);
  }));
  EXPECT_THROW(run_simulation(config_of(2),
                              [](Comm& comm) {
                                if (comm.rank() == 0) {
                                  comm.send(1, 2 * kCollectiveTagBase);
                                }
                              }),
               SimUsageError);
}

TEST(EdgeCases, WaitAllOverMixedSendAndRecvRequests) {
  std::vector<int> sources;
  run_simulation(config_of(3), [&sources](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      requests.push_back(comm.irecv(1, 0));
      requests.push_back(comm.isend(2, 7, payload_from_u64(1)));
      requests.push_back(comm.irecv(2, 0));
      const std::vector<RecvResult> results = comm.wait_all(requests);
      // Results align with the request span; the isend slot is empty.
      sources = {results[0].source, results[1].source, results[2].source};
    } else {
      if (comm.rank() == 2) (void)comm.recv(0, 7);
      comm.send(0, 0);
    }
  });
  EXPECT_EQ(sources, (std::vector<int>{1, -1, 2}));
}

TEST(EdgeCases, WaitAnyPrefersCompletedSendOverPendingRecv) {
  run_simulation(config_of(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> requests;
      requests.push_back(comm.irecv(1, 0));            // completes late
      requests.push_back(comm.isend(1, 1));            // completes now
      const WaitAnyResult first = comm.wait_any(requests);
      EXPECT_EQ(first.index, 1u);
      (void)comm.wait(requests[0]);
    } else {
      (void)comm.recv(0, 1);
      comm.compute(500.0);
      comm.send(0, 0);
    }
  });
}

TEST(EdgeCases, IssendMatchedFromUnexpectedQueue) {
  // The issend's message arrives before any receive is posted; the request
  // completes only when the late receive finally matches it.
  const RunResult result = run_simulation(config_of(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      Request r = comm.issend(1, 0);
      (void)comm.wait(r);
      comm.compute(1.0);
    } else {
      comm.compute(700.0);
      (void)comm.recv();
    }
  });
  EXPECT_GE(result.trace.rank_events(0).back().t_end, 700.0);
}

TEST(EdgeCases, ManyRanksSmoke) {
  const RunResult result =
      run_simulation(config_of(64, 1.0, 9), [](Comm& comm) {
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        Request r = comm.irecv(prev, 0);
        comm.send(next, 0);
        (void)comm.wait(r);
        (void)comm.allreduce_sum(1.0);
      });
  EXPECT_EQ(result.trace.num_ranks(), 64);
  EXPECT_GT(result.stats.messages, 64u);
}

TEST(EdgeCases, EmptyProgramGraphAndKernels) {
  const RunResult result = run_simulation(config_of(3), [](Comm&) {});
  const graph::EventGraph graph =
      graph::EventGraph::from_trace(result.trace);
  EXPECT_EQ(graph.num_nodes(), 6u);  // init + finalize per rank
  EXPECT_TRUE(graph.message_edges().empty());
  const auto kernel = kernels::make_kernel("wl:2");
  const kernels::LabeledGraph labeled = kernels::build_labeled_graph(
      graph, kernels::LabelPolicy::kTypePeer);
  EXPECT_DOUBLE_EQ(kernel->distance(labeled, labeled), 0.0);
}

TEST(EdgeCases, SelfSendViaSendrecv) {
  run_simulation(config_of(1), [](Comm& comm) {
    const RecvResult r =
        comm.sendrecv(0, 0, payload_from_u64(5), 0, 0);
    EXPECT_EQ(u64_from_payload(r.payload), 5u);
    EXPECT_EQ(r.source, 0);
  });
}

TEST(EdgeCases, RecvOnSingleRankWorldDeadlocksCleanly) {
  EXPECT_THROW(
      run_simulation(config_of(1), [](Comm& comm) { (void)comm.recv(); }),
      DeadlockError);
}

TEST(EdgeCases, LargePayloadIntegrity) {
  std::vector<double> values(4096);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i) * 0.5;
  }
  run_simulation(config_of(2, 1.0), [&values](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, payload_from_doubles(values));
    } else {
      EXPECT_EQ(doubles_from_payload(comm.recv().payload), values);
    }
  });
}

}  // namespace
}  // namespace anacin::sim

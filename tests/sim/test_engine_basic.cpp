#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::sim {
namespace {

using trace::EventType;

SimConfig quiet_config(int ranks, std::uint64_t seed = 1) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 0.0;
  return config;
}

TEST(EngineBasic, SingleRankComputeOnly) {
  const RunResult result = run_simulation(quiet_config(1), [](Comm& comm) {
    comm.compute(10.0);
    comm.compute(5.0);
  });
  const auto& events = result.trace.rank_events(0);
  ASSERT_EQ(events.size(), 2u);  // init + finalize; compute is not traced
  EXPECT_EQ(events.front().type, EventType::kInit);
  EXPECT_EQ(events.back().type, EventType::kFinalize);
  EXPECT_DOUBLE_EQ(events.back().t_end, 15.0);
  EXPECT_DOUBLE_EQ(result.stats.makespan_us, 15.0);
  EXPECT_EQ(result.stats.messages, 0u);
}

TEST(EngineBasic, TwoRankSendRecvTransfersPayload) {
  std::vector<double> received(2, -1.0);
  const RunResult result =
      run_simulation(quiet_config(2), [&received](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 7, payload_from_double(3.25));
        } else {
          const RecvResult r = comm.recv();
          received[static_cast<std::size_t>(comm.rank())] =
              double_from_payload(r.payload);
          EXPECT_EQ(r.source, 0);
          EXPECT_EQ(r.tag, 7);
        }
      });
  EXPECT_DOUBLE_EQ(received[1], 3.25);
  EXPECT_EQ(result.stats.messages, 1u);
  EXPECT_EQ(result.stats.wildcard_recvs, 1u);
}

TEST(EngineBasic, EventFieldsDescribeTheMessage) {
  const RunResult result = run_simulation(quiet_config(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, payload_from_u64(9));
    } else {
      (void)comm.recv(0, 5);
    }
  });
  const auto& sender = result.trace.rank_events(0);
  ASSERT_EQ(sender.size(), 3u);
  const trace::Event& send = sender[1];
  EXPECT_EQ(send.type, EventType::kSend);
  EXPECT_EQ(send.peer, 1);
  EXPECT_EQ(send.tag, 5);
  EXPECT_EQ(send.size_bytes, sizeof(std::uint64_t));

  const auto& receiver = result.trace.rank_events(1);
  ASSERT_EQ(receiver.size(), 3u);
  const trace::Event& recv = receiver[1];
  EXPECT_EQ(recv.type, EventType::kRecv);
  EXPECT_EQ(recv.peer, 0);
  EXPECT_EQ(recv.matched_rank, 0);
  EXPECT_EQ(recv.matched_seq, 1);  // the send above is event 1 on rank 0
  EXPECT_EQ(recv.posted_source, 0);
  EXPECT_EQ(recv.posted_tag, 5);
  EXPECT_GT(recv.t_end, send.t_end);  // message takes time to travel
}

TEST(EngineBasic, SelfSendWorksWithIrecv) {
  double got = 0.0;
  run_simulation(quiet_config(1), [&got](Comm& comm) {
    const Request r = comm.irecv(0, 1);
    comm.send(0, 1, payload_from_double(1.5));
    got = double_from_payload(comm.wait(r).payload);
  });
  EXPECT_DOUBLE_EQ(got, 1.5);
}

TEST(EngineBasic, IsendWaitCompletesImmediately) {
  run_simulation(quiet_config(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      Request r = comm.isend(1, 0, payload_from_double(2.0));
      (void)comm.wait(r);
    } else {
      (void)comm.recv();
    }
  });
}

TEST(EngineBasic, VirtualTimesAreMonotonePerRank) {
  const RunResult result = run_simulation(quiet_config(4), [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) (void)comm.recv();
    } else {
      for (int i = 0; i < 20; ++i) {
        if (comm.rank() == 1 || i % 2 == 0) {
          if ((i + comm.rank()) % 3 == 0) comm.compute(1.0);
        }
        if (comm.rank() == 1) comm.send(0, 0);
        else if (i < 20 / 2 && comm.rank() == 2) comm.send(0, 0);
        else if (comm.rank() == 3 && i < 10) comm.send(0, 0);
      }
    }
  });
  for (int r = 0; r < 4; ++r) {
    const auto& events = result.trace.rank_events(r);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].t_end, events[i].t_end);
      EXPECT_LE(events[i].t_start, events[i].t_end);
    }
  }
}

TEST(EngineBasic, CallstackFramesAppearInEvents) {
  const RunResult result = run_simulation(quiet_config(2), [](Comm& comm) {
    const auto app = comm.scoped_frame("app");
    if (comm.rank() == 0) {
      const auto phase = comm.scoped_frame("produce");
      comm.send(1, 0);
    } else {
      const auto phase = comm.scoped_frame("consume");
      (void)comm.recv();
    }
  });
  const auto& registry = result.trace.callstacks();
  const trace::Event& send = result.trace.rank_events(0)[1];
  EXPECT_EQ(registry.path(send.callstack_id), "app>produce>MPI_Send");
  const trace::Event& recv = result.trace.rank_events(1)[1];
  EXPECT_EQ(registry.path(recv.callstack_id), "app>consume>MPI_Recv");
}

TEST(EngineBasic, InvalidDestinationThrows) {
  EXPECT_THROW(run_simulation(quiet_config(2),
                              [](Comm& comm) {
                                if (comm.rank() == 0) comm.send(5, 0);
                                else (void)comm.recv();
                              }),
               SimUsageError);
}

TEST(EngineBasic, NegativeTagThrows) {
  EXPECT_THROW(run_simulation(quiet_config(2),
                              [](Comm& comm) {
                                if (comm.rank() == 0) comm.send(1, -3);
                                else (void)comm.recv();
                              }),
               SimUsageError);
}

TEST(EngineBasic, UserExceptionPropagates) {
  EXPECT_THROW(run_simulation(quiet_config(2),
                              [](Comm& comm) {
                                if (comm.rank() == 1) {
                                  throw std::runtime_error("app bug");
                                }
                                // rank 0 would block forever; the engine
                                // must still tear down cleanly.
                                (void)comm.recv();
                              }),
               std::runtime_error);
}

TEST(EngineBasic, SizeHintInflatesMessageSize) {
  const RunResult result = run_simulation(quiet_config(2), [](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 0, {}, 4096);
    else (void)comm.recv();
  });
  EXPECT_EQ(result.trace.rank_events(0)[1].size_bytes, 4096u);
}

TEST(EngineBasic, RankAndSizeAccessors) {
  run_simulation(quiet_config(3), [](Comm& comm) {
    EXPECT_EQ(comm.size(), 3);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 3);
    EXPECT_EQ(comm.num_nodes(), 1);
    EXPECT_EQ(comm.node(), 0);
  });
}

TEST(EngineBasic, PerRankRngsDifferAcrossRanks) {
  std::vector<std::uint64_t> draws(3, 0);
  run_simulation(quiet_config(3), [&draws](Comm& comm) {
    draws[static_cast<std::size_t>(comm.rank())] = comm.rng().next_u64();
  });
  EXPECT_NE(draws[0], draws[1]);
  EXPECT_NE(draws[1], draws[2]);
}

TEST(EngineBasic, MaxCallsGuardFires) {
  SimConfig config = quiet_config(1);
  config.max_calls = 100;
  EXPECT_THROW(run_simulation(config,
                              [](Comm& comm) {
                                for (;;) comm.compute(1.0);
                              }),
               Error);
}

}  // namespace
}  // namespace anacin::sim

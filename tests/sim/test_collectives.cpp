#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.hpp"

namespace anacin::sim {
namespace {

SimConfig jittery(int ranks, std::uint64_t seed) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;  // collectives must be correct anyway
  return config;
}

class CollectivesAcrossSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesAcrossSizes, BarrierSynchronizesClocks) {
  const int n = GetParam();
  const RunResult result = run_simulation(jittery(n, 7), [](Comm& comm) {
    // Rank 0 works for 1000us before the barrier; everyone's post-barrier
    // work must therefore start at or after 1000us.
    if (comm.rank() == 0) comm.compute(1000.0);
    comm.barrier();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(result.trace.rank_events(r).back().t_end, n > 1 ? 1000.0 : 0.0)
        << "rank " << r;
  }
}

TEST_P(CollectivesAcrossSizes, BroadcastDeliversRootValue) {
  const int n = GetParam();
  std::vector<double> got(static_cast<std::size_t>(n), -1.0);
  const int root = n / 2;
  run_simulation(jittery(n, 11), [&got, root](Comm& comm) {
    const Payload value = comm.broadcast(
        root, comm.rank() == root ? payload_from_double(6.5) : Payload{});
    got[static_cast<std::size_t>(comm.rank())] = double_from_payload(value);
  });
  for (const double v : got) EXPECT_DOUBLE_EQ(v, 6.5);
}

TEST_P(CollectivesAcrossSizes, ReduceSumAddsAllContributions) {
  const int n = GetParam();
  double total = -1.0;
  run_simulation(jittery(n, 13), [&total](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    const double result = comm.reduce_sum(0, mine);
    if (comm.rank() == 0) total = result;
  });
  EXPECT_DOUBLE_EQ(total, n * (n + 1) / 2.0);
}

TEST_P(CollectivesAcrossSizes, AllreduceGivesSameValueEverywhere) {
  const int n = GetParam();
  std::vector<double> got(static_cast<std::size_t>(n), -1.0);
  run_simulation(jittery(n, 17), [&got](Comm& comm) {
    got[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_sum(static_cast<double>(comm.rank()));
  });
  const double expected = n * (n - 1) / 2.0;
  for (const double v : got) EXPECT_DOUBLE_EQ(v, expected);
}

TEST_P(CollectivesAcrossSizes, GatherCollectsPerRankPayloads) {
  const int n = GetParam();
  std::vector<std::uint64_t> at_root;
  run_simulation(jittery(n, 19), [&at_root](Comm& comm) {
    const auto gathered = comm.gather(
        0, payload_from_u64(static_cast<std::uint64_t>(comm.rank() * 10)));
    if (comm.rank() == 0) {
      for (const Payload& p : gathered) at_root.push_back(u64_from_payload(p));
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(at_root[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(r * 10));
  }
}

TEST_P(CollectivesAcrossSizes, AllToAllPersonalizedExchange) {
  const int n = GetParam();
  std::vector<std::vector<std::uint64_t>> received(
      static_cast<std::size_t>(n));
  run_simulation(jittery(n, 23), [&received, n](Comm& comm) {
    std::vector<Payload> outgoing;
    outgoing.reserve(static_cast<std::size_t>(n));
    for (int dst = 0; dst < n; ++dst) {
      // Value encodes (sender, receiver) so misrouting is detectable.
      outgoing.push_back(payload_from_u64(
          static_cast<std::uint64_t>(comm.rank() * 1000 + dst)));
    }
    const auto incoming = comm.all_to_all(std::move(outgoing));
    for (const Payload& p : incoming) {
      received[static_cast<std::size_t>(comm.rank())].push_back(
          u64_from_payload(p));
    }
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(received[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(received[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(src)],
                static_cast<std::uint64_t>(src * 1000 + r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesAcrossSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 16));

TEST(Collectives, ReduceSumIsDeterministicAcrossSeeds) {
  // The library reduce uses a fixed accumulation order, so even with full
  // jitter the floating-point result is bit-stable across runs.
  double reference = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    double total = 0.0;
    run_simulation(jittery(9, seed), [&total](Comm& comm) {
      // Values chosen so that different summation orders give different
      // floating-point results.
      const double mine = std::pow(10.0, comm.rank() % 5) * 1.1;
      const double r = comm.reduce_sum(0, mine);
      if (comm.rank() == 0) total = r;
    });
    if (seed == 1) reference = total;
    EXPECT_EQ(total, reference) << "seed " << seed;
  }
}

TEST(Collectives, CallstacksAttributeCollectiveTraffic) {
  const RunResult result = run_simulation(jittery(4, 3), [](Comm& comm) {
    comm.barrier();
  });
  bool found_barrier_frame = false;
  for (int r = 0; r < 4; ++r) {
    for (const auto& event : result.trace.rank_events(r)) {
      const std::string& path =
          result.trace.callstacks().path(event.callstack_id);
      if (path.find("MPI_Barrier>") != std::string::npos) {
        found_barrier_frame = true;
      }
    }
  }
  EXPECT_TRUE(found_barrier_frame);
}

TEST(Collectives, BackToBackCollectivesDoNotCrossTalk) {
  std::vector<double> got(4, -1.0);
  run_simulation(jittery(4, 29), [&got](Comm& comm) {
    const double a = comm.allreduce_sum(1.0);
    comm.barrier();
    const double b = comm.allreduce_sum(10.0);
    got[static_cast<std::size_t>(comm.rank())] = a + b;
  });
  for (const double v : got) EXPECT_DOUBLE_EQ(v, 4.0 + 40.0);
}

}  // namespace
}  // namespace anacin::sim

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::sim {
namespace {

void message_race(Comm& comm) {
  if (comm.rank() == 0) {
    for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
  } else {
    comm.send(0, 0, payload_from_u64(static_cast<std::uint64_t>(comm.rank())));
  }
}

void compute_then_race(Comm& comm) {
  comm.compute(100.0);
  message_race(comm);
}

SimConfig make_config(int ranks, std::uint64_t seed,
                      const FaultConfig& faults, double nd = 0.0) {
  SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  config.faults = faults;
  return config;
}

std::string trace_fingerprint(const trace::Trace& trace) {
  return trace.to_json().dump();
}

std::uint64_t count_fault_events(const trace::Trace& trace,
                                 const std::string& cause) {
  std::uint64_t count = 0;
  for (int r = 0; r < trace.num_ranks(); ++r) {
    for (const auto& event : trace.rank_events(r)) {
      if (event.type == trace::EventType::kFault &&
          trace.callstacks().path(event.callstack_id) == cause) {
        ++count;
      }
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// FaultConfig
// ---------------------------------------------------------------------------

TEST(FaultConfig, DefaultIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  FaultConfig drops;
  drops.drop_probability = 0.01;
  EXPECT_TRUE(drops.enabled());
  FaultConfig stragglers;
  stragglers.straggler_ranks = {1};
  EXPECT_TRUE(stragglers.enabled());
}

TEST(FaultConfig, ValidationRejectsBadValues) {
  FaultConfig bad_probability;
  bad_probability.drop_probability = 1.5;
  EXPECT_THROW(bad_probability.validate(4, 1), Error);

  FaultConfig negative_retries;
  negative_retries.max_retries = -1;
  EXPECT_THROW(negative_retries.validate(4, 1), Error);

  FaultConfig shrink_multiplier;
  shrink_multiplier.straggler_multiplier = 0.5;
  EXPECT_THROW(shrink_multiplier.validate(4, 1), Error);

  FaultConfig rank_out_of_range;
  rank_out_of_range.straggler_ranks = {4};
  EXPECT_THROW(rank_out_of_range.validate(4, 1), Error);

  FaultConfig node_out_of_range;
  node_out_of_range.slow_nodes = {2};
  EXPECT_THROW(node_out_of_range.validate(4, 2), Error);

  FaultConfig ok;
  ok.drop_probability = 0.3;
  ok.straggler_ranks = {0, 3};
  ok.slow_nodes = {1};
  EXPECT_NO_THROW(ok.validate(4, 2));
}

TEST(FaultConfig, JsonRoundTripIsExact) {
  FaultConfig config;
  config.drop_probability = 0.125;
  config.max_retries = 7;
  config.retry_timeout_us = 12.5;
  config.duplicate_probability = 0.0625;
  config.straggler_ranks = {1, 5};
  config.straggler_multiplier = 3.0;
  config.slow_nodes = {0};
  config.node_slowdown_multiplier = 1.5;

  const FaultConfig decoded = FaultConfig::from_json(config.to_json());
  EXPECT_EQ(config.to_json().dump(), decoded.to_json().dump());
  EXPECT_EQ(decoded.straggler_ranks, config.straggler_ranks);
  EXPECT_EQ(decoded.slow_nodes, config.slow_nodes);
}

// ---------------------------------------------------------------------------
// FaultModel sampling
// ---------------------------------------------------------------------------

TEST(FaultModel, CertainDropAlwaysExhaustsRetries) {
  FaultConfig config;
  config.drop_probability = 1.0;
  config.max_retries = 2;
  FaultModel model(config, 4, 1, Rng(7));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(model.sample_message(1, 0).dropped_attempts, 2);
  }
}

TEST(FaultModel, MultipliersCompose) {
  FaultConfig config;
  config.straggler_ranks = {1};
  config.straggler_multiplier = 4.0;
  config.slow_nodes = {0};
  config.node_slowdown_multiplier = 2.0;
  // 4 ranks on 2 nodes: ranks 0,1 on node 0, ranks 2,3 on node 1.
  FaultModel model(config, 4, 2, Rng(7));
  EXPECT_DOUBLE_EQ(model.compute_multiplier(1), 8.0);  // straggler on slow
  EXPECT_DOUBLE_EQ(model.compute_multiplier(0), 2.0);  // slow node only
  EXPECT_DOUBLE_EQ(model.compute_multiplier(2), 1.0);  // unaffected
  EXPECT_DOUBLE_EQ(model.latency_multiplier(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(model.latency_multiplier(2, 3), 1.0);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(FaultEngine, SameSeedSameFaultsBitIdenticalTrace) {
  FaultConfig faults;
  faults.drop_probability = 0.4;
  faults.duplicate_probability = 0.3;
  faults.straggler_ranks = {1};
  const RunResult a =
      run_simulation(make_config(6, 42, faults, 1.0), message_race);
  const RunResult b =
      run_simulation(make_config(6, 42, faults, 1.0), message_race);
  EXPECT_EQ(trace_fingerprint(a.trace), trace_fingerprint(b.trace));
}

TEST(FaultEngine, DisabledFaultsMatchNoFaultTrace) {
  // All-defaults FaultConfig must be bit-identical to a run without the
  // subsystem: the fault RNG stream is separate and never consulted.
  const RunResult with_defaults =
      run_simulation(make_config(6, 9, FaultConfig{}, 1.0), message_race);
  SimConfig plain = make_config(6, 9, FaultConfig{}, 1.0);
  const RunResult baseline = run_simulation(plain, message_race);
  EXPECT_EQ(trace_fingerprint(with_defaults.trace),
            trace_fingerprint(baseline.trace));
  EXPECT_EQ(with_defaults.stats.drops, 0u);
  EXPECT_EQ(with_defaults.stats.duplicates, 0u);
  EXPECT_EQ(with_defaults.stats.straggler_events, 0u);
}

TEST(FaultEngine, CertainDropRetransmitsEveryMessage) {
  FaultConfig faults;
  faults.drop_probability = 1.0;
  faults.max_retries = 2;
  faults.retry_timeout_us = 50.0;
  const RunResult faulty =
      run_simulation(make_config(4, 3, faults), message_race);
  const RunResult clean =
      run_simulation(make_config(4, 3, FaultConfig{}), message_race);

  // 3 messages, each dropped exactly max_retries times.
  EXPECT_EQ(faulty.stats.messages, 3u);
  EXPECT_EQ(faulty.stats.drops, 3u * 2u);
  EXPECT_EQ(faulty.stats.retries, 3u * 2u);
  EXPECT_EQ(count_fault_events(faulty.trace, "FAULT_retransmit"), 3u * 2u);
  // Delivery is guaranteed: the faulty trace is the clean trace plus one
  // retransmit event per drop (recorded on the sender ranks).
  EXPECT_EQ(faulty.trace.rank_events(0).size(),
            clean.trace.rank_events(0).size());
  EXPECT_EQ(faulty.trace.total_events(),
            clean.trace.total_events() + 3u * 2u);
  EXPECT_GT(faulty.stats.makespan_us,
            clean.stats.makespan_us + 2.0 * 50.0 - 1e-9);
}

TEST(FaultEngine, CertainDuplicateIsDiscardedAtReceiver) {
  FaultConfig faults;
  faults.duplicate_probability = 1.0;
  const RunResult faulty =
      run_simulation(make_config(4, 3, faults), message_race);
  EXPECT_EQ(faulty.stats.duplicates, faulty.stats.messages);
  EXPECT_EQ(count_fault_events(faulty.trace, "FAULT_duplicate"),
            faulty.stats.messages);
  // Matching is unaffected: rank 0 still completes exactly 3 receives.
  std::uint64_t recvs = 0;
  for (const auto& event : faulty.trace.rank_events(0)) {
    if (event.type == trace::EventType::kRecv) {
      ++recvs;
      EXPECT_GE(event.matched_rank, 1);
    }
  }
  EXPECT_EQ(recvs, 3u);
}

TEST(FaultEngine, StragglerStretchesComputeAndIsLabeled) {
  FaultConfig faults;
  faults.straggler_ranks = {1};
  faults.straggler_multiplier = 8.0;
  const RunResult faulty =
      run_simulation(make_config(4, 3, faults), compute_then_race);
  const RunResult clean =
      run_simulation(make_config(4, 3, FaultConfig{}), compute_then_race);
  EXPECT_EQ(faulty.stats.straggler_events, 1u);
  EXPECT_EQ(count_fault_events(faulty.trace, "FAULT_straggler"), 1u);
  // 100us compute became 800us on the critical path of rank 1's message.
  EXPECT_GT(faulty.stats.makespan_us, clean.stats.makespan_us + 600.0);
}

TEST(FaultEngine, SlowNodeStretchesLatencyAndCompute) {
  FaultConfig faults;
  faults.slow_nodes = {0};
  faults.node_slowdown_multiplier = 4.0;
  SimConfig config = make_config(4, 3, faults);
  config.num_nodes = 2;
  SimConfig clean_config = make_config(4, 3, FaultConfig{});
  clean_config.num_nodes = 2;
  const RunResult faulty = run_simulation(config, compute_then_race);
  const RunResult clean = run_simulation(clean_config, compute_then_race);
  EXPECT_GT(faulty.stats.makespan_us, clean.stats.makespan_us);
}

TEST(FaultEngine, FaultEventsSurviveTraceJsonRoundTrip) {
  FaultConfig faults;
  faults.drop_probability = 1.0;
  faults.max_retries = 1;
  faults.duplicate_probability = 1.0;
  const RunResult result =
      run_simulation(make_config(4, 11, faults), message_race);
  ASSERT_GT(count_fault_events(result.trace, "FAULT_retransmit"), 0u);

  const trace::Trace decoded =
      trace::Trace::from_json(result.trace.to_json());
  EXPECT_EQ(trace_fingerprint(result.trace), trace_fingerprint(decoded));
}

TEST(FaultEngine, FaultsIncreaseKernelDistanceToCleanRun) {
  FaultConfig faults;
  faults.drop_probability = 1.0;
  faults.max_retries = 2;
  const RunResult faulty =
      run_simulation(make_config(6, 5, faults), message_race);
  const RunResult clean =
      run_simulation(make_config(6, 5, FaultConfig{}), message_race);

  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(graph::EventGraph::from_trace(faulty.trace),
                                   kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(graph::EventGraph::from_trace(clean.trace),
                                   kernels::LabelPolicy::kTypePeer));
  EXPECT_GT(distance, 0.0)
      << "fault events must be visible to the graph kernels";
}

TEST(FaultEngine, SimConfigJsonIncludesFaults) {
  FaultConfig faults;
  faults.drop_probability = 0.25;
  const SimConfig with_faults = make_config(4, 1, faults);
  const SimConfig without = make_config(4, 1, FaultConfig{});
  EXPECT_NE(with_faults.to_json().dump(), without.to_json().dump())
      << "FaultConfig must be part of a run's content-addressed identity";
}

}  // namespace
}  // namespace anacin::sim

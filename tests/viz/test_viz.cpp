#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "analysis/kde.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "viz/ascii.hpp"
#include "viz/event_graph_render.hpp"
#include "viz/heatmap.hpp"
#include "viz/plots.hpp"
#include "viz/svg.hpp"

namespace anacin::viz {
namespace {

graph::EventGraph race_graph(int ranks = 4) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.network.nd_fraction = 0.0;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [](sim::Comm& comm) {
                            if (comm.rank() == 0) {
                              for (int i = 0; i < comm.size() - 1; ++i) {
                                (void)comm.recv();
                              }
                            } else {
                              comm.send(0, 0);
                            }
                          })
          .trace;
  return graph::EventGraph::from_trace(trace);
}

/// Crude well-formedness check: every opened tag closes, quotes balance.
void expect_svg_well_formed(const std::string& svg) {
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(std::count(svg.begin(), svg.end(), '"') % 2, 0);
  // No unescaped raw ampersands or angle brackets inside text content is
  // approximated by requiring no "<<" and no "&" at all (we never emit
  // entities).
  EXPECT_EQ(svg.find("<<"), std::string::npos);
}

TEST(Svg, BasicShapesRender) {
  SvgDocument svg(200, 100);
  svg.line(0, 0, 10, 10, {});
  svg.circle(5, 5, 2, {.fill = "#ff0000", .stroke = "none",
                       .stroke_width = 0, .opacity = 0.5, .dash = ""});
  svg.rect(1, 1, 5, 5, {});
  svg.polygon({{0, 0}, {1, 0}, {1, 1}}, {});
  svg.polyline({{0, 0}, {2, 2}}, {});
  svg.text(10, 20, "hello <world> & \"friends\"", {});
  const std::string out = svg.render();
  expect_svg_well_formed(out);
  EXPECT_NE(out.find("<line"), std::string::npos);
  EXPECT_NE(out.find("<circle"), std::string::npos);
  EXPECT_NE(out.find("<rect"), std::string::npos);
  EXPECT_NE(out.find("<polygon"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
}

TEST(Svg, RejectsEmptyCanvas) {
  EXPECT_THROW(SvgDocument(0, 100), Error);
}

TEST(Svg, SaveCreatesDirectories) {
  SvgDocument svg(10, 10);
  const std::string path = "test_output/viz/nested/out.svg";
  svg.save(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all("test_output");
}

TEST(NiceTicks, CoverRangeWithRoundSteps) {
  const auto ticks = nice_ticks(0.0, 103.0);
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_LE(ticks.front(), 1e-9);
  EXPECT_GE(ticks.back(), 90.0);
  const double step = ticks[1] - ticks[0];
  for (std::size_t i = 2; i < ticks.size(); ++i) {
    EXPECT_NEAR(ticks[i] - ticks[i - 1], step, 1e-9);
  }
}

TEST(NiceTicks, DegenerateRange) {
  const auto ticks = nice_ticks(5.0, 5.0);
  EXPECT_GE(ticks.size(), 2u);
}

TEST(ViolinPlot, RendersOneViolinPerSeries) {
  const std::vector<double> a{1.0, 2.0, 3.0, 2.5, 1.5};
  const std::vector<double> b{4.0, 5.0, 6.0, 5.5, 4.5};
  std::vector<ViolinSeries> series;
  series.push_back({"16 procs", analysis::gaussian_kde(a)});
  series.push_back({"32 procs", analysis::gaussian_kde(b)});
  const SvgDocument svg =
      violin_plot(series, {.width = 480, .height = 320,
                           .title = "Kernel distance",
                           .x_label = "processes", .y_label = "distance"});
  const std::string out = svg.render();
  expect_svg_well_formed(out);
  EXPECT_NE(out.find("16 procs"), std::string::npos);
  EXPECT_NE(out.find("32 procs"), std::string::npos);
  EXPECT_NE(out.find("Kernel distance"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n') > 10, true);
}

TEST(ViolinPlot, DegenerateAllZeroSample) {
  const std::vector<double> zeros(10, 0.0);
  std::vector<ViolinSeries> series;
  series.push_back({"0%", analysis::gaussian_kde(zeros)});
  EXPECT_NO_THROW(violin_plot(series, {}));
}

TEST(BarPlot, RendersBarsAndLabels) {
  const std::vector<Bar> bars{{"main>phase>MPI_Irecv", 0.61},
                              {"main>phase>MPI_Send", 0.29},
                              {"main>MPI_Barrier", 0.10}};
  const SvgDocument svg = bar_plot(bars, {.width = 600, .height = 240,
                                          .title = "Callstacks",
                                          .x_label = "relative frequency",
                                          .y_label = ""});
  const std::string out = svg.render();
  expect_svg_well_formed(out);
  EXPECT_NE(out.find("MPI_Irecv"), std::string::npos);
  EXPECT_NE(out.find("relative frequency"), std::string::npos);
}

TEST(LinePlot, MultipleSeries) {
  std::vector<LineSeries> series;
  series.push_back({"wl", {{0, 0}, {50, 3}, {100, 5}}});
  series.push_back({"vh", {{0, 0}, {50, 1}, {100, 2}}});
  const SvgDocument svg = line_plot(series, {.width = 480, .height = 320,
                                             .title = "sweep",
                                             .x_label = "nd %",
                                             .y_label = "distance"});
  expect_svg_well_formed(svg.render());
}

TEST(PlotInputValidation, EmptyInputsThrow) {
  EXPECT_THROW(violin_plot({}, {}), Error);
  EXPECT_THROW(bar_plot({}, {}), Error);
  EXPECT_THROW(line_plot({}, {}), Error);
  EXPECT_THROW(line_plot({{"empty", {}}}, {}), Error);
}

TEST(EventGraphRender, ContainsAllNodesAndRankLabels) {
  const graph::EventGraph graph = race_graph(4);
  const SvgDocument svg = render_event_graph(graph, {.node_radius = 7,
                                                     .column_width = 30,
                                                     .row_height = 50,
                                                     .title = "Fig 2",
                                                     .annotate_matches = true,
                                                     .hide_collective_traffic = false});
  const std::string out = svg.render();
  expect_svg_well_formed(out);
  EXPECT_NE(out.find("Rank 0"), std::string::npos);
  EXPECT_NE(out.find("Rank 3"), std::string::npos);
  // One circle per event node (plus none extra beyond arrowheads which are
  // polygons).
  const std::string needle = "<circle";
  std::size_t count = 0;
  for (std::size_t pos = out.find(needle); pos != std::string::npos;
       pos = out.find(needle, pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, graph.num_nodes());
}

TEST(EventGraphRender, CollectiveTrafficCanBeHidden) {
  sim::SimConfig config;
  config.num_ranks = 4;
  const trace::Trace trace =
      sim::run_simulation(config, [](sim::Comm& comm) { comm.barrier(); })
          .trace;
  const graph::EventGraph graph = graph::EventGraph::from_trace(trace);
  EventGraphRenderConfig hide;
  hide.hide_collective_traffic = true;
  const std::string hidden = render_event_graph(graph, hide).render();
  const std::string shown = render_event_graph(graph, {}).render();
  EXPECT_LT(hidden.size(), shown.size());
}

TEST(Heatmap, RendersOneCellPerRankPair) {
  const graph::EventGraph graph = race_graph(4);
  const graph::CommMatrix matrix = graph::communication_matrix(graph);
  const SvgDocument svg = comm_matrix_heatmap(matrix, "traffic");
  const std::string out = svg.render();
  expect_svg_well_formed(out);
  EXPECT_NE(out.find("traffic"), std::string::npos);
  EXPECT_NE(out.find("sender rank"), std::string::npos);
  std::size_t rects = 0;
  for (std::size_t pos = out.find("<rect"); pos != std::string::npos;
       pos = out.find("<rect", pos + 1)) {
    ++rects;
  }
  // 16 cells + the background rect.
  EXPECT_EQ(rects, 16u + 1u);
}

TEST(Heatmap, AsciiMatrixShowsCounts) {
  const graph::EventGraph graph = race_graph(3);
  const std::string art =
      ascii_comm_matrix(graph::communication_matrix(graph));
  EXPECT_NE(art.find("src\\dst"), std::string::npos);
  // Ranks 1 and 2 each sent one message to rank 0.
  EXPECT_NE(art.find('1'), std::string::npos);
}

TEST(Heatmap, RejectsEmptyMatrix) {
  EXPECT_THROW(comm_matrix_heatmap({}), Error);
  EXPECT_THROW(ascii_comm_matrix({}), Error);
}

TEST(AsciiEventGraph, GridAndLegend) {
  const graph::EventGraph graph = race_graph(4);
  const std::string art = ascii_event_graph(graph);
  EXPECT_NE(art.find("rank 0"), std::string::npos);
  EXPECT_NE(art.find('I'), std::string::npos);
  EXPECT_NE(art.find('S'), std::string::npos);
  EXPECT_NE(art.find('R'), std::string::npos);
  EXPECT_NE(art.find('F'), std::string::npos);
  EXPECT_NE(art.find("wildcard recv"), std::string::npos);
  EXPECT_NE(art.find("msg: rank"), std::string::npos);
}

TEST(AsciiEventGraph, EdgeTruncation) {
  const graph::EventGraph graph = race_graph(8);
  const std::string art = ascii_event_graph(graph, 2);
  EXPECT_NE(art.find("more message(s)"), std::string::npos);
}

TEST(AsciiHistogram, BinsSumToSampleSize) {
  const std::vector<double> values{1, 1, 2, 3, 3, 3, 9};
  const std::string art = ascii_histogram(values, 4, 20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_THROW(ascii_histogram(std::vector<double>{}, 4, 20), Error);
}

TEST(AsciiBarChart, LabelsAligned) {
  const std::vector<std::string> labels{"a", "longer_label"};
  const std::vector<double> values{0.25, 1.0};
  const std::string art = ascii_bar_chart(labels, values, 10);
  EXPECT_NE(art.find("longer_label"), std::string::npos);
  EXPECT_THROW(ascii_bar_chart({"x"}, std::vector<double>{1.0, 2.0}, 10),
               Error);
}

}  // namespace
}  // namespace anacin::viz

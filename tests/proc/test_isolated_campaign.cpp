// Campaign-level isolation tests: --isolate=process must change *where*
// work executes, never *what* it computes — isolated campaigns are
// byte-identical to in-process ones — and child deaths must surface as
// quarantined units with full crash triage in the report JSON.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/campaign.hpp"
#include "proc/worker_pool.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

#ifndef ANACIN_CLI_PATH
#error "ANACIN_CLI_PATH must point at the anacin executable"
#endif

namespace anacin::core {
namespace {

namespace fs = std::filesystem;

class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

CampaignConfig small_campaign(std::uint64_t base_seed) {
  CampaignConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 4;
  config.shape.iterations = 2;
  config.num_runs = 4;
  config.base_seed = base_seed;
  return config;
}

class IsolatedCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_isolated_campaign_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  proc::WorkerPoolConfig pool_config(const std::string& store_name) const {
    proc::WorkerPoolConfig config;
    config.worker_exe = ANACIN_CLI_PATH;
    config.store_dir = (dir_ / store_name).string();
    return config;
  }

  fs::path dir_;
};

TEST_F(IsolatedCampaignTest, MatchesInProcessCampaignByteIdentically) {
  ThreadPool pool(2);
  const CampaignConfig config = small_campaign(2026);

  store::ArtifactStore plain_store({dir_ / "store-a", 64 << 20});
  const CampaignResult plain = run_campaign(config, pool, &plain_store);

  store::ArtifactStore iso_store({dir_ / "store-b", 64 << 20});
  proc::WorkerPool workers(pool_config("store-b"));
  ResilienceOptions resilience;
  resilience.executor = &workers;
  const CampaignResult isolated =
      run_campaign(config, pool, &iso_store, resilience);

  // Same bytes, not merely close numbers: every simulation and kernel
  // distance computed in a child matches the in-process computation.
  EXPECT_EQ(isolated.to_json().dump(), plain.to_json().dump());

  // Warm isolated re-run (children answer from the store): still identical.
  const CampaignResult warm =
      run_campaign(config, pool, &iso_store, resilience);
  EXPECT_EQ(warm.to_json().dump(), plain.to_json().dump());
}

TEST_F(IsolatedCampaignTest, IsolationRequiresAnArtifactStore) {
  ThreadPool pool(2);
  proc::WorkerPool workers(pool_config("store-x"));
  ResilienceOptions resilience;
  resilience.executor = &workers;
  EXPECT_THROW(
      run_campaign(small_campaign(1), pool, nullptr, resilience), Error);
}

TEST_F(IsolatedCampaignTest, CrashedAndHungUnitsAreQuarantinedWithTriage) {
  // run:1 dies by SIGKILL inside its child; run:2 hangs past the 1.5 s
  // watchdog deadline. Both must be quarantined — with a precise diagnosis
  // each — while the remaining units complete normally.
  const EnvGuard crash("ANACIN_INJECT_CRASH", "run:1=KILL");
  const EnvGuard hang("ANACIN_INJECT_HANG", "run:2=8000");

  ThreadPool pool(2);
  store::ArtifactStore store({dir_ / "store-c", 64 << 20});
  proc::WorkerPoolConfig pool_cfg = pool_config("store-c");
  pool_cfg.run_deadline_ms = 1500.0;
  proc::WorkerPool workers(pool_cfg);
  ResilienceOptions resilience;
  resilience.executor = &workers;
  resilience.keep_going = true;

  const CampaignResult result =
      run_campaign(small_campaign(7), pool, &store, resilience);

  EXPECT_FALSE(result.complete());
  ASSERT_EQ(result.quarantined.size(), 2u);

  const QuarantinedUnit* crashed = nullptr;
  const QuarantinedUnit* hung = nullptr;
  for (const QuarantinedUnit& unit : result.quarantined) {
    if (unit.unit == "run:1") crashed = &unit;
    if (unit.unit == "run:2") hung = &unit;
  }
  ASSERT_NE(crashed, nullptr);
  ASSERT_NE(hung, nullptr);

  ASSERT_TRUE(crashed->has_triage);
  EXPECT_EQ(crashed->triage.disposition, "crash");
  EXPECT_EQ(crashed->triage.signal, "SIGKILL");
  EXPECT_GT(crashed->triage.peak_rss_kib, 0);
  EXPECT_EQ(crashed->attempts, 1);

  ASSERT_TRUE(hung->has_triage);
  EXPECT_EQ(hung->triage.disposition, "deadline");
  EXPECT_NE(hung->error.find("watchdog"), std::string::npos);

  // The quarantine entries in the report JSON carry the triage verbatim:
  // signal name, peak RSS, and the stderr tail field.
  const json::Value crashed_doc = crashed->to_json();
  const json::Value* triage = crashed_doc.find("triage");
  ASSERT_NE(triage, nullptr);
  EXPECT_EQ(triage->at("disposition").as_string(), "crash");
  EXPECT_EQ(triage->at("signal").as_string(), "SIGKILL");
  EXPECT_GT(triage->at("peak_rss_kib").as_number(), 0.0);
  EXPECT_NE(triage->find("stderr_tail"), nullptr);

  // The surviving runs were simulated in children and measured normally.
  EXPECT_GT(result.measurement.distances.size(), 0u);
  EXPECT_GT(result.total_messages, 0u);
}

}  // namespace
}  // namespace anacin::core

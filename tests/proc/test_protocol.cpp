// Regression tests for the unified frame codec (proc/protocol.hpp): the
// typed ReadStatus must keep "peer hung up cleanly" distinct from "stream
// broke mid-frame", and malformed headers must be rejected before any
// payload allocation. A seeded fuzz round-trip shoves randomized frames
// through a pipe in arbitrary chunk sizes to prove reassembly is
// insensitive to write boundaries.

#include "proc/protocol.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "support/crc32c.hpp"

namespace anacin::proc {
namespace {

/// A pipe whose ends close on destruction; tests write raw bytes to
/// write_fd and read frames from read_fd.
struct Pipe {
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (read_fd >= 0) ::close(read_fd);
    read_fd = -1;
  }
  void close_write() {
    if (write_fd >= 0) ::close(write_fd);
    write_fd = -1;
  }
  int read_fd = -1;
  int write_fd = -1;
};

void write_raw(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, cursor, size);
    ASSERT_GT(n, 0);
    cursor += n;
    size -= static_cast<std::size_t>(n);
  }
}

TEST(Protocol, RoundTripSingleFrame) {
  Pipe pipe;
  ASSERT_TRUE(write_frame(pipe.write_fd, FrameType::kResult, "{\"ok\":1}"));
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  ASSERT_TRUE(result);
  EXPECT_EQ(result.status, ReadStatus::kFrame);
  EXPECT_EQ(result.frame.type, FrameType::kResult);
  EXPECT_EQ(result.frame.payload, "{\"ok\":1}");
}

TEST(Protocol, EmptyPayloadHeartbeat) {
  Pipe pipe;
  ASSERT_TRUE(write_frame(pipe.write_fd, FrameType::kHeartbeat, {}));
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  ASSERT_TRUE(result);
  EXPECT_EQ(result.frame.type, FrameType::kHeartbeat);
  EXPECT_TRUE(result.frame.payload.empty());
}

// The satellite regression: a clean close at a frame boundary is kEof —
// previously this was indistinguishable from a torn frame, so the worker
// pool could misread a retired child as a crash.
TEST(Protocol, CleanEofAtBoundaryIsEof) {
  Pipe pipe;
  pipe.close_write();
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_FALSE(result);
  EXPECT_EQ(result.status, ReadStatus::kEof);
  EXPECT_TRUE(result.error.empty());
}

TEST(Protocol, TruncatedHeaderIsError) {
  Pipe pipe;
  const std::array<unsigned char, 2> partial = {0x08, 0x00};
  write_raw(pipe.write_fd, partial.data(), partial.size());
  pipe.close_write();
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kError);
  EXPECT_NE(result.error.find("truncated frame header"), std::string::npos);
}

TEST(Protocol, TruncatedPayloadIsError) {
  Pipe pipe;
  // Header promises 10 payload bytes; deliver 3 and hang up.
  const std::array<unsigned char, 8> bytes = {
      10, 0, 0, 0, static_cast<unsigned char>(FrameType::kResult),
      'a', 'b', 'c'};
  write_raw(pipe.write_fd, bytes.data(), bytes.size());
  pipe.close_write();
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kError);
  EXPECT_NE(result.error.find("truncated frame payload"), std::string::npos);
}

// Oversized lengths are rejected from the header alone — no allocation,
// no attempt to drain the (never-arriving) payload. The read must return
// immediately even though only 5 bytes were ever written.
TEST(Protocol, OversizedLengthRejectedWithoutReadingPayload) {
  Pipe pipe;
  const std::uint32_t length = kMaxFramePayload + 1;
  std::array<unsigned char, 5> header = {
      static_cast<unsigned char>(length & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 24) & 0xff),
      static_cast<unsigned char>(FrameType::kRequest)};
  write_raw(pipe.write_fd, header.data(), header.size());
  // Note: the write end stays open — a reader that tried to consume the
  // advertised 64 MiB + 1 payload would block and hit the timeout instead.
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kError);
  EXPECT_NE(result.error.find("exceeds"), std::string::npos);
}

TEST(Protocol, UnknownTypeRejected) {
  Pipe pipe;
  const std::array<unsigned char, 5> header = {0, 0, 0, 0, 0x7f};
  write_raw(pipe.write_fd, header.data(), header.size());
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kError);
  EXPECT_NE(result.error.find("unknown frame type"), std::string::npos);
}

TEST(Protocol, TimeoutWhenNothingArrives) {
  Pipe pipe;
  const ReadResult result = read_frame(pipe.read_fd, 50);
  EXPECT_EQ(result.status, ReadStatus::kTimeout);
}

TEST(Protocol, TimeoutMidHeader) {
  Pipe pipe;
  const std::array<unsigned char, 3> partial = {1, 0, 0};
  write_raw(pipe.write_fd, partial.data(), partial.size());
  const ReadResult result = read_frame(pipe.read_fd, 50);
  EXPECT_EQ(result.status, ReadStatus::kTimeout);
}

TEST(Protocol, EncodeRejectsOversizedPayload) {
  const std::string big(kMaxFramePayload + 1, 'x');
  EXPECT_TRUE(encode_frame(FrameType::kObject, big).empty());
}

TEST(Protocol, FrameTypeKnownness) {
  EXPECT_TRUE(frame_type_is_known(1));
  EXPECT_TRUE(frame_type_is_known(10));
  EXPECT_TRUE(frame_type_is_known(11));  // kShutdown
  EXPECT_FALSE(frame_type_is_known(0));
  EXPECT_FALSE(frame_type_is_known(12));
  EXPECT_FALSE(frame_type_is_known(0xff));
}

TEST(Protocol, BackToBackFramesInOneWrite) {
  Pipe pipe;
  std::vector<char> buffer = encode_frame(FrameType::kRequest, "first");
  const std::vector<char> second = encode_frame(FrameType::kFail, "second");
  buffer.insert(buffer.end(), second.begin(), second.end());
  write_raw(pipe.write_fd, buffer.data(), buffer.size());

  const ReadResult one = read_frame(pipe.read_fd, 1000);
  ASSERT_TRUE(one);
  EXPECT_EQ(one.frame.type, FrameType::kRequest);
  EXPECT_EQ(one.frame.payload, "first");
  const ReadResult two = read_frame(pipe.read_fd, 1000);
  ASSERT_TRUE(two);
  EXPECT_EQ(two.frame.type, FrameType::kFail);
  EXPECT_EQ(two.frame.payload, "second");
}

// --- Protocol v2: CRC32C frame integrity ------------------------------

// The Castagnoli check value: CRC32C("123456789") is 0xE3069283 in every
// published table. This pins both the software slice-by-8 path and, when
// the host has SSE4.2, the hardware path to the real polynomial.
TEST(Protocol, Crc32cMatchesKnownVector) {
  EXPECT_EQ(support::crc32c("123456789", 9), 0xE3069283u);
  // Incremental use must match one-shot use.
  std::uint32_t rolling = support::crc32c("12345", 5);
  rolling = support::crc32c("6789", 4, rolling);
  EXPECT_EQ(rolling, 0xE3069283u);
  EXPECT_EQ(support::crc32c("", 0), 0u);
}

TEST(Protocol, V2FramesCarryTrailerAndV1FramesDoNot) {
  const std::vector<char> v2 = encode_frame(FrameType::kResult, "abc");
  const std::vector<char> v1 =
      encode_frame(FrameType::kResult, "abc", kProtocolV1);
  EXPECT_EQ(v2.size(), 3u + frame_overhead(kProtocolV2));
  EXPECT_EQ(v1.size(), 3u + frame_overhead(kProtocolV1));
  // The v2 frame is the v1 frame plus the trailer over header+payload.
  ASSERT_TRUE(std::equal(v1.begin(), v1.end(), v2.begin()));
  const std::uint32_t crc = support::crc32c(v1.data(), v1.size());
  const auto* trailer = reinterpret_cast<const unsigned char*>(v2.data() + 8);
  const std::uint32_t stored = static_cast<std::uint32_t>(trailer[0]) |
                               (static_cast<std::uint32_t>(trailer[1]) << 8) |
                               (static_cast<std::uint32_t>(trailer[2]) << 16) |
                               (static_cast<std::uint32_t>(trailer[3]) << 24);
  EXPECT_EQ(stored, crc);
}

TEST(Protocol, V1RoundTripStillWorks) {
  Pipe pipe;
  ASSERT_TRUE(
      write_frame(pipe.write_fd, FrameType::kHello, "legacy", kProtocolV1));
  const ReadResult result = read_frame(pipe.read_fd, 1000, kProtocolV1);
  ASSERT_TRUE(result) << result.error;
  EXPECT_EQ(result.frame.payload, "legacy");
}

// A flipped payload byte must surface as the typed kCorrupt — not as
// decodable data and not as a stream-killing kError: the length field was
// intact, so the reader stays frame-aligned and the NEXT frame parses.
TEST(Protocol, FlippedPayloadByteReadsAsCorruptAndStreamStaysAligned) {
  Pipe pipe;
  std::vector<char> bad = encode_frame(FrameType::kResult, "important");
  bad[7] = static_cast<char>(bad[7] ^ 0xff);  // a payload byte
  write_raw(pipe.write_fd, bad.data(), bad.size());
  const std::vector<char> good = encode_frame(FrameType::kResult, "fine");
  write_raw(pipe.write_fd, good.data(), good.size());

  const ReadResult first = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(first.status, ReadStatus::kCorrupt);
  EXPECT_FALSE(first);
  EXPECT_TRUE(first.frame.payload.empty());  // untrustworthy bytes withheld
  EXPECT_NE(first.error.find("CRC32C"), std::string::npos);

  const ReadResult second = read_frame(pipe.read_fd, 1000);
  ASSERT_TRUE(second) << second.error;
  EXPECT_EQ(second.frame.payload, "fine");
}

TEST(Protocol, FlippedTrailerByteReadsAsCorrupt) {
  Pipe pipe;
  std::vector<char> bad = encode_frame(FrameType::kHeartbeat, {});
  bad.back() = static_cast<char>(bad.back() ^ 0x01);
  write_raw(pipe.write_fd, bad.data(), bad.size());
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kCorrupt);
}

// The trailer covers the header too: flipping the type byte to another
// *valid* type is caught by the CRC, not waved through as a different
// frame.
TEST(Protocol, FlippedTypeByteReadsAsCorrupt) {
  Pipe pipe;
  std::vector<char> bad = encode_frame(FrameType::kResult, "payload");
  bad[4] = static_cast<char>(FrameType::kFail);
  write_raw(pipe.write_fd, bad.data(), bad.size());
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kCorrupt);
}

TEST(Protocol, TruncatedTrailerIsError) {
  Pipe pipe;
  const std::vector<char> frame = encode_frame(FrameType::kResult, "abc");
  write_raw(pipe.write_fd, frame.data(), frame.size() - 2);
  pipe.close_write();
  const ReadResult result = read_frame(pipe.read_fd, 1000);
  EXPECT_EQ(result.status, ReadStatus::kError);
  EXPECT_NE(result.error.find("truncated frame trailer"), std::string::npos);
}

// Fuzz-style round trip: randomized frame types, payload sizes (including
// binary bytes, as object frames carry raw envelopes), delivered through
// the pipe in randomized chunk sizes by a writer thread. The reader must
// reassemble every frame regardless of how writes tear across header and
// payload boundaries. Seeded so failures reproduce.
TEST(Protocol, FuzzRandomizedChunkedRoundTrip) {
  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<int> type_dist(1, 10);
  std::uniform_int_distribution<std::size_t> size_dist(0, 4096);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<std::size_t> chunk_dist(1, 37);

  constexpr int kFrames = 200;
  std::vector<Frame> expected;
  std::vector<char> wire;
  for (int i = 0; i < kFrames; ++i) {
    Frame frame;
    frame.type = static_cast<FrameType>(type_dist(rng));
    frame.payload.resize(size_dist(rng));
    for (char& c : frame.payload) c = static_cast<char>(byte_dist(rng));
    const std::vector<char> encoded = encode_frame(frame.type, frame.payload);
    ASSERT_EQ(encoded.size(),
              frame.payload.size() + frame_overhead(kProtocolVersion));
    wire.insert(wire.end(), encoded.begin(), encoded.end());
    expected.push_back(std::move(frame));
  }

  // Pre-draw the chunk schedule so the writer thread doesn't share rng.
  std::vector<std::size_t> chunks;
  std::size_t scheduled = 0;
  while (scheduled < wire.size()) {
    const std::size_t n = std::min(chunk_dist(rng), wire.size() - scheduled);
    chunks.push_back(n);
    scheduled += n;
  }

  Pipe pipe;
  std::thread writer([&] {
    std::size_t offset = 0;
    for (const std::size_t n : chunks) {
      write_raw(pipe.write_fd, wire.data() + offset, n);
      offset += n;
    }
    pipe.close_write();
  });

  for (const Frame& want : expected) {
    const ReadResult got = read_frame(pipe.read_fd, 10000);
    ASSERT_TRUE(got) << got.error;
    EXPECT_EQ(got.frame.type, want.type);
    ASSERT_EQ(got.frame.payload, want.payload);
  }
  const ReadResult tail = read_frame(pipe.read_fd, 10000);
  EXPECT_EQ(tail.status, ReadStatus::kEof);
  writer.join();
}

// The heartbeater shares the caller's write mutex, so heartbeat frames and
// payload frames interleave whole, never torn.
TEST(Protocol, HeartbeaterInterleavesWholeFrames) {
  Pipe pipe;
  std::mutex write_mutex;
  int heartbeats = 0;
  int results = 0;
  {
    Heartbeater heartbeater(pipe.write_fd, 5.0, write_mutex);
    for (int i = 0; i < 20; ++i) {
      {
        const std::lock_guard<std::mutex> lock(write_mutex);
        ASSERT_TRUE(write_frame(pipe.write_fd, FrameType::kResult,
                                std::string(512, 'r')));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  pipe.close_write();
  for (;;) {
    const ReadResult got = read_frame(pipe.read_fd, 5000);
    if (got.status == ReadStatus::kEof) break;
    ASSERT_TRUE(got) << got.error;
    if (got.frame.type == FrameType::kHeartbeat) {
      ++heartbeats;
    } else {
      ASSERT_EQ(got.frame.type, FrameType::kResult);
      ASSERT_EQ(got.frame.payload.size(), 512u);
      ++results;
    }
  }
  EXPECT_EQ(results, 20);
  EXPECT_GT(heartbeats, 0);
}

}  // namespace
}  // namespace anacin::proc

// Direct WorkerPool tests: dispatch round-trips, crash triage, resource
// limits, and the preemptive watchdog. These fork the real anacin binary
// (ANACIN_CLI_PATH) as `__worker` children, so they exercise the same
// fork/exec + pipe-protocol path as `--isolate=process`.

#include "proc/worker_pool.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/supervisor.hpp"
#include "proc/worker_main.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

#ifndef ANACIN_CLI_PATH
#error "ANACIN_CLI_PATH must point at the anacin executable"
#endif

namespace anacin::proc {
namespace {

namespace fs = std::filesystem;

/// Scoped environment variable: the injector env vars are snapshotted by
/// each worker child at exec, so they must be set before the pool spawns
/// and cleaned up even when an EXPECT fails.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

core::CampaignConfig small_campaign() {
  core::CampaignConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 4;
  config.shape.iterations = 2;
  config.num_runs = 4;
  config.base_seed = 42;
  return config;
}

json::Value run_request(const core::CampaignConfig& config, int run_index) {
  const std::string unit = "run:" + std::to_string(run_index);
  return make_run_request(unit, config.pattern, config.shape,
                          config.sim_config_for_run(run_index));
}

class WorkerPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_worker_pool_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  WorkerPoolConfig pool_config() const {
    WorkerPoolConfig config;
    config.worker_exe = ANACIN_CLI_PATH;
    config.store_dir = (dir_ / "store").string();
    return config;
  }

  fs::path dir_;
};

TEST(IsolationMode, ParsesKnownNamesAndRejectsUnknown) {
  EXPECT_EQ(isolation_mode_from_name("none"), IsolationMode::kNone);
  EXPECT_EQ(isolation_mode_from_name("process"), IsolationMode::kProcess);
  EXPECT_THROW(isolation_mode_from_name("container"), ConfigError);
  EXPECT_THROW(isolation_mode_from_name(""), ConfigError);
}

TEST_F(WorkerPoolTest, RunUnitRoundTripsThroughTheStore) {
  WorkerPool pool(pool_config());
  const core::CampaignConfig config = small_campaign();

  const json::Value reply = pool.execute("run:0", run_request(config, 0));
  EXPECT_EQ(reply.at("status").as_string(), "ok");
  const auto key = store::Digest::from_hex(reply.at("key").as_string());
  ASSERT_TRUE(key.has_value());
  // The child computed the same content-addressed key the parent would.
  EXPECT_EQ(*key, store::ArtifactStore::run_key(config.pattern, config.shape,
                                                config.sim_config_for_run(0)));

  // The artifact landed in the shared store, readable by the parent.
  store::ArtifactStore store({dir_ / "store", 64 << 20});
  EXPECT_TRUE(store.load_run(*key).has_value());

  // A warm re-dispatch answers identically (the child hits the store).
  const json::Value again = pool.execute("run:0", run_request(config, 0));
  EXPECT_EQ(again.dump(), reply.dump());
}

TEST_F(WorkerPoolTest, UnknownUnitTypeIsAPermanentFailure) {
  WorkerPool pool(pool_config());
  json::Value request = json::Value::object();
  request.set("unit", "bogus");
  request.set("type", "explode");
  try {
    pool.execute("bogus", request);
    FAIL() << "expected PermanentError";
  } catch (const PermanentError& error) {
    EXPECT_NE(std::string(error.what()).find("unknown unit type"),
              std::string::npos);
  }
}

TEST_F(WorkerPoolTest, CrashTriageCarriesSignalAndPeakRss) {
  const EnvGuard crash("ANACIN_INJECT_CRASH", "run:0=KILL");
  WorkerPool pool(pool_config());
  const core::CampaignConfig config = small_campaign();
  try {
    pool.execute("run:0", run_request(config, 0));
    FAIL() << "expected WorkerCrashError";
  } catch (const WorkerCrashError& error) {
    EXPECT_EQ(error.triage().disposition, "crash");
    EXPECT_EQ(error.triage().signal, "SIGKILL");
    EXPECT_GT(error.triage().peak_rss_kib, 0);
    EXPECT_NE(std::string(error.what()).find("SIGKILL"), std::string::npos);
  }
}

TEST_F(WorkerPoolTest, RlimitBreachIsPermanentWithNoFutileRetries) {
  // SIGXCPU is what a real RLIMIT_CPU breach delivers; injecting it
  // exercises the same classification without burning CPU seconds.
  const EnvGuard crash("ANACIN_INJECT_CRASH", "run:0=XCPU");
  WorkerPool workers(pool_config());
  const core::CampaignConfig config = small_campaign();
  const json::Value request = run_request(config, 0);

  core::RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_us = 0;
  const core::Supervisor supervisor(policy, 1, core::FailureInjector{});
  int calls = 0;
  const core::UnitReport report = supervisor.run("run:0", [&] {
    ++calls;
    workers.execute("run:0", request);
  });
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.transient);
  EXPECT_EQ(report.attempts, 1) << "rlimit breaches must not retry";
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(report.has_triage);
  EXPECT_EQ(report.triage.disposition, "rlimit");
  EXPECT_EQ(report.triage.signal, "SIGXCPU");
}

TEST_F(WorkerPoolTest, WatchdogKillsHungChildWithinTwiceTheDeadline) {
  // The unit sleeps 60 s (heartbeating all the while); only the
  // preemptive wall-clock deadline can stop it.
  const EnvGuard hang("ANACIN_INJECT_HANG", "run:0=60000");
  WorkerPoolConfig config = pool_config();
  config.run_deadline_ms = 1000.0;
  WorkerPool pool(config);
  const core::CampaignConfig campaign = small_campaign();

  const auto start = std::chrono::steady_clock::now();
  try {
    pool.execute("run:0", run_request(campaign, 0));
    FAIL() << "expected WorkerDeadlineError";
  } catch (const DeadlineExceeded& error) {
    // Is-a DeadlineExceeded (the catch clause proves it), carries triage.
    const auto* triaged = dynamic_cast<const TriagedError*>(&error);
    ASSERT_NE(triaged, nullptr);
    EXPECT_EQ(triaged->triage().disposition, "deadline");
    EXPECT_NE(std::string(error.what()).find("watchdog"), std::string::npos);
  }
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  // ~2x the deadline, with slack for child spawn and reap on loaded CI.
  EXPECT_LT(elapsed_ms, 6000.0);
}

TEST_F(WorkerPoolTest, HeartbeatStallIsDetectedAndKilled) {
  // SIGSTOP freezes the child including its heartbeat thread, so only the
  // stall detector can catch it — there is no deadline in this config.
  const EnvGuard hang("ANACIN_INJECT_HANG", "run:0=stop");
  WorkerPoolConfig config = pool_config();
  config.heartbeat_interval_ms = 20.0;
  config.heartbeat_timeout_ms = 750.0;
  WorkerPool pool(config);
  const core::CampaignConfig campaign = small_campaign();

  const auto start = std::chrono::steady_clock::now();
  try {
    pool.execute("run:0", run_request(campaign, 0));
    FAIL() << "expected WorkerDeadlineError";
  } catch (const WorkerDeadlineError& error) {
    EXPECT_EQ(error.triage().disposition, "heartbeat");
    EXPECT_GE(error.triage().heartbeat_age_ms, 750.0);
  }
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_LT(elapsed_ms, 10'000.0);
}

TEST_F(WorkerPoolTest, NoChildOutlivesThePool) {
  std::vector<int> pids;
  {
    WorkerPool pool(pool_config());
    const core::CampaignConfig config = small_campaign();
    pool.execute("run:0", run_request(config, 0));
    pids = pool.live_pids();
    ASSERT_FALSE(pids.empty());
    for (const int pid : pids) {
      EXPECT_EQ(::kill(pid, 0), 0) << "worker should be alive while pooled";
    }
  }
  // The destructor drained and reaped every child.
  for (const int pid : pids) {
    errno = 0;
    EXPECT_EQ(::kill(pid, 0), -1);
    EXPECT_EQ(errno, ESRCH);
  }
}

}  // namespace
}  // namespace anacin::proc

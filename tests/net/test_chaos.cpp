// Tests for the deterministic network fault injector (net/chaos.hpp):
// spec parsing, and each fault knob driven at probability 1.0 through a
// real loopback socket pair so the receiver-visible effect is asserted
// (kCorrupt, silence, EOF, swapped order), plus a seeded fuzz proving an
// all-zero chaos config is byte-transparent. Also the socket-boundary
// malformed-input cases (torn frame mid-payload, oversized length,
// unknown type byte) and the EINTR regression: poll-based waits must
// retry interrupted syscalls against their original deadline.

#include "net/chaos.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "support/error.hpp"

namespace anacin::net {
namespace {

using Clock = std::chrono::steady_clock;

/// A connected loopback pair: `a` dialed, `b` accepted.
struct SocketPair {
  std::unique_ptr<TcpConnection> a;
  std::unique_ptr<TcpConnection> b;

  SocketPair() {
    TcpListener listener("127.0.0.1", 0);
    std::thread dialer([&] {
      a = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
    });
    b = listener.accept(5000);
    dialer.join();
    EXPECT_NE(a, nullptr);
    EXPECT_NE(b, nullptr);
    // The fabric speaks v2 after the handshake; run the pair there too so
    // the CRC trailer (which the corruption tests rely on) is in force.
    a->set_version(proc::kProtocolV2);
    b->set_version(proc::kProtocolV2);
  }
};

ChaosConfig only(double ChaosConfig::* knob, double value) {
  ChaosConfig config;
  config.seed = 7;
  config.*knob = value;
  return config;
}

// --- ChaosConfig parsing ----------------------------------------------

TEST(ChaosConfig, ParsesFullSpec) {
  const ChaosConfig config = ChaosConfig::parse(
      "seed=42, drop=0.05, corrupt=0.02, reorder=0.1, reset=0.01, "
      "delay=0.2, delay_ms=15, partition=0.005, partition_ms=250");
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.drop, 0.05);
  EXPECT_DOUBLE_EQ(config.corrupt, 0.02);
  EXPECT_DOUBLE_EQ(config.reorder, 0.1);
  EXPECT_DOUBLE_EQ(config.reset, 0.01);
  EXPECT_DOUBLE_EQ(config.delay, 0.2);
  EXPECT_DOUBLE_EQ(config.delay_ms, 15.0);
  EXPECT_DOUBLE_EQ(config.partition, 0.005);
  EXPECT_DOUBLE_EQ(config.partition_ms, 250.0);
  EXPECT_TRUE(config.enabled());
}

TEST(ChaosConfig, SeedAloneIsInert) {
  const ChaosConfig config = ChaosConfig::parse("seed=9");
  EXPECT_FALSE(config.enabled());
}

TEST(ChaosConfig, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(ChaosConfig::parse("dorp=0.1"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("drop=1.5"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("drop=-0.1"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("drop=lots"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("drop"), ConfigError);
  EXPECT_THROW(ChaosConfig::parse("delay_ms=-5"), ConfigError);
}

TEST(ChaosConfig, FromEnvReadsSpec) {
  ::setenv("ANACIN_NET_CHAOS", "seed=3,drop=0.25", 1);
  const auto config = ChaosConfig::from_env();
  ::unsetenv("ANACIN_NET_CHAOS");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->seed, 3u);
  EXPECT_DOUBLE_EQ(config->drop, 0.25);
  EXPECT_FALSE(ChaosConfig::from_env().has_value());
}

TEST(ChaosConfig, MaybeWrapLeavesInertConfigsUnwrapped) {
  SocketPair pair;
  Connection* raw = pair.a.get();
  std::unique_ptr<Connection> conn = std::move(pair.a);
  conn = maybe_wrap_chaos(std::move(conn), ChaosConfig{});
  EXPECT_EQ(conn.get(), raw);  // pass-through, no decorator
  conn = maybe_wrap_chaos(std::move(conn), only(&ChaosConfig::drop, 0.5));
  EXPECT_NE(conn.get(), raw);
}

// --- FaultyConnection, one knob at a time -----------------------------

// Transparency: with every probability zero the wrapper must be
// byte-invisible — same frames, same payloads, both directions. This is
// what licenses wrapping every fleet connection unconditionally when
// chaos is configured.
TEST(FaultyConnection, ZeroProbabilityConfigIsTransparent) {
  SocketPair pair;
  ChaosConfig inert;
  inert.seed = 1234;
  FaultyConnection chaotic(std::move(pair.a), inert);

  std::mt19937 rng(20260808u);
  std::uniform_int_distribution<std::size_t> size_dist(0, 2048);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 50; ++i) {
    std::string payload(size_dist(rng), '\0');
    for (char& c : payload) c = static_cast<char>(byte_dist(rng));
    ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kObject, payload));
    const proc::ReadResult got = pair.b->recv_frame(5000);
    ASSERT_TRUE(got) << got.error;
    ASSERT_EQ(got.frame.payload, payload);
    // And the reverse direction, received through the wrapper.
    ASSERT_TRUE(pair.b->send_frame(proc::FrameType::kResult, payload));
    const proc::ReadResult back = chaotic.recv_frame(5000);
    ASSERT_TRUE(back) << back.error;
    ASSERT_EQ(back.frame.payload, payload);
  }
}

// corrupt=1.0: every frame arrives, every frame fails its CRC, and the
// stream stays aligned — the receiver sees a parade of kCorrupt, never a
// torn stream.
TEST(FaultyConnection, CorruptionSurfacesAsTypedCorruptFrames) {
  SocketPair pair;
  FaultyConnection chaotic(std::move(pair.a), only(&ChaosConfig::corrupt, 1.0));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kResult, "payload"));
    const proc::ReadResult got = pair.b->recv_frame(5000);
    EXPECT_EQ(got.status, proc::ReadStatus::kCorrupt) << got.error;
  }
  // The wrapper corrupts sends only; a clean peer frame still reads fine.
  ASSERT_TRUE(pair.b->send_frame(proc::FrameType::kResult, "clean"));
  const proc::ReadResult back = chaotic.recv_frame(5000);
  ASSERT_TRUE(back) << back.error;
  EXPECT_EQ(back.frame.payload, "clean");
}

// drop=1.0: sends report success, nothing reaches the peer.
TEST(FaultyConnection, DropsVanishSilently) {
  SocketPair pair;
  FaultyConnection chaotic(std::move(pair.a), only(&ChaosConfig::drop, 1.0));
  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kHeartbeat, {}));
  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kResult, "gone"));
  const proc::ReadResult got = pair.b->recv_frame(100);
  EXPECT_EQ(got.status, proc::ReadStatus::kTimeout);
}

// reset=1.0: the first send tears the connection down; the sender sees a
// failed write and the peer a clean EOF — exactly a mid-unit process
// death, which is what the session-resume machinery trains against.
TEST(FaultyConnection, ResetTearsDownTheConnection) {
  SocketPair pair;
  FaultyConnection chaotic(std::move(pair.a), only(&ChaosConfig::reset, 1.0));
  EXPECT_FALSE(chaotic.send_frame(proc::FrameType::kResult, "doomed"));
  EXPECT_FALSE(chaotic.valid());
  const proc::ReadResult got = pair.b->recv_frame(5000);
  EXPECT_EQ(got.status, proc::ReadStatus::kEof);
}

// reorder=1.0: consecutive frames swap pairwise (the window is bounded at
// one frame), and close() flushes a trailing held frame instead of
// leaking it.
TEST(FaultyConnection, ReorderSwapsAdjacentFramesAndFlushesOnClose) {
  SocketPair pair;
  FaultyConnection chaotic(std::move(pair.a),
                           only(&ChaosConfig::reorder, 1.0));
  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kResult, "first"));
  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kResult, "second"));
  proc::ReadResult got = pair.b->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.payload, "second");
  got = pair.b->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.payload, "first");

  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kResult, "held"));
  chaotic.close();  // must flush, then close
  got = pair.b->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.payload, "held");
  EXPECT_EQ(pair.b->recv_frame(5000).status, proc::ReadStatus::kEof);
}

// A held reordered frame must not deadlock a request/reply exchange: the
// wrapper flushes it before blocking in recv.
TEST(FaultyConnection, RecvFlushesHeldFrame) {
  SocketPair pair;
  FaultyConnection chaotic(std::move(pair.a),
                           only(&ChaosConfig::reorder, 1.0));
  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kFetch, "request"));
  std::thread peer([&] {
    const proc::ReadResult request = pair.b->recv_frame(5000);
    ASSERT_TRUE(request) << request.error;
    EXPECT_EQ(request.frame.payload, "request");
    ASSERT_TRUE(pair.b->send_frame(proc::FrameType::kObject, "reply"));
  });
  const proc::ReadResult reply = chaotic.recv_frame(5000);
  peer.join();
  ASSERT_TRUE(reply) << reply.error;
  EXPECT_EQ(reply.frame.payload, "reply");
}

// partition=1.0: sends blackhole (pretending success) for the window,
// then flow resumes.
TEST(FaultyConnection, PartitionBlackholesOneDirectionForAWindow) {
  SocketPair pair;
  ChaosConfig config = only(&ChaosConfig::partition, 1.0);
  config.partition_ms = 150.0;
  FaultyConnection chaotic(std::move(pair.a), config);
  ASSERT_TRUE(chaotic.send_frame(proc::FrameType::kResult, "eaten"));
  EXPECT_EQ(pair.b->recv_frame(50).status, proc::ReadStatus::kTimeout);
  // The reverse direction stays up (one-way partition).
  ASSERT_TRUE(pair.b->send_frame(proc::FrameType::kResult, "upstream"));
  const proc::ReadResult up = chaotic.recv_frame(5000);
  ASSERT_TRUE(up) << up.error;
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // Window over — but under partition=1.0 every later send re-rolls a new
  // window, so assert via a config with a one-shot window instead: after
  // the wait, a fresh frame must still be eaten only by a NEW roll. Here
  // we just assert the wrapper survived the window.
  EXPECT_TRUE(chaotic.valid());
}

// --- Socket-boundary malformed input ----------------------------------

TEST(SocketBoundary, TornFrameMidPayloadReadsAsError) {
  SocketPair pair;
  const std::vector<char> frame =
      proc::encode_frame(proc::FrameType::kResult, "abcdefgh");
  ASSERT_TRUE(pair.a->send_raw({frame.data(), 9}));  // header + 4 of 8 bytes
  pair.a->close();
  const proc::ReadResult got = pair.b->recv_frame(5000);
  EXPECT_EQ(got.status, proc::ReadStatus::kError);
  EXPECT_NE(got.error.find("truncated"), std::string::npos);
}

TEST(SocketBoundary, OversizedLengthRejected) {
  SocketPair pair;
  const std::uint32_t length = proc::kMaxFramePayload + 1;
  const char header[5] = {
      static_cast<char>(length & 0xff),
      static_cast<char>((length >> 8) & 0xff),
      static_cast<char>((length >> 16) & 0xff),
      static_cast<char>((length >> 24) & 0xff),
      static_cast<char>(proc::FrameType::kObject)};
  ASSERT_TRUE(pair.a->send_raw({header, sizeof(header)}));
  const proc::ReadResult got = pair.b->recv_frame(5000);
  EXPECT_EQ(got.status, proc::ReadStatus::kError);
  EXPECT_NE(got.error.find("exceeds"), std::string::npos);
}

TEST(SocketBoundary, UnknownTypeByteRejected) {
  SocketPair pair;
  const char header[5] = {0, 0, 0, 0, 0x6e};
  ASSERT_TRUE(pair.a->send_raw({header, sizeof(header)}));
  const proc::ReadResult got = pair.b->recv_frame(5000);
  EXPECT_EQ(got.status, proc::ReadStatus::kError);
  EXPECT_NE(got.error.find("unknown frame type"), std::string::npos);
}

// --- EINTR hardening ---------------------------------------------------

/// Installs a no-op SIGUSR1 handler WITHOUT SA_RESTART for the test's
/// lifetime, so every signal delivery interrupts blocking syscalls with
/// EINTR instead of transparently restarting them.
class InterruptingSignal {
 public:
  InterruptingSignal() {
    struct sigaction action {};
    action.sa_handler = [](int) {};
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART
    sigaction(SIGUSR1, &action, &previous_);
  }
  ~InterruptingSignal() { sigaction(SIGUSR1, &previous_, nullptr); }

 private:
  struct sigaction previous_ {};
};

/// Hammers `target` with SIGUSR1 every few milliseconds until stopped.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target)
      : thread_([this, target] {
          while (!stop_.load()) {
            pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(3));
          }
        }) {}
  ~SignalStorm() {
    stop_.store(true);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// The regression this guards: accept()'s poll used to return nullptr on
// EINTR, so a single stray signal read as "no client within the timeout".
// Under a storm of signals the accept must still honor its full deadline
// (EINTR retried against the original deadline, not aborted, not reset).
TEST(Eintr, ListenerAcceptHonorsDeadlineUnderSignalStorm) {
  const InterruptingSignal handler;
  TcpListener listener("127.0.0.1", 0);
  const auto started = Clock::now();
  {
    const SignalStorm storm(pthread_self());
    EXPECT_EQ(listener.accept(250), nullptr);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - started);
  EXPECT_GE(elapsed.count(), 200);   // not cut short by EINTR
  EXPECT_LT(elapsed.count(), 5000);  // not restarted-forever either
}

// And the frame read path: a frame that arrives WHILE signals interrupt
// the reader must still be delivered whole.
TEST(Eintr, RecvFrameSurvivesSignalStorm) {
  const InterruptingSignal handler;
  SocketPair pair;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(pair.a->send_frame(proc::FrameType::kResult,
                                   std::string(100'000, 'x')));
  });
  {
    const SignalStorm storm(pthread_self());
    const proc::ReadResult got = pair.b->recv_frame(5000);
    ASSERT_TRUE(got) << got.error;
    EXPECT_EQ(got.frame.payload.size(), 100'000u);
  }
  sender.join();
}

// accept() interrupted while a client IS arriving must deliver it.
TEST(Eintr, AcceptDeliversClientUnderSignalStorm) {
  const InterruptingSignal handler;
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  {
    const SignalStorm storm(pthread_self());
    EXPECT_NE(listener.accept(5000), nullptr);
  }
  dialer.join();
  EXPECT_NE(client, nullptr);
}

}  // namespace
}  // namespace anacin::net

// In-process tests for the TCP layer (net/socket.hpp): ephemeral-port
// listeners, frame round-trips over loopback, timeouts, clean EOF, and the
// AgentServer's no-agent checkout timeout. Everything runs on 127.0.0.1
// with port 0 so parallel test jobs never collide.

#include "net/socket.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "support/error.hpp"

namespace anacin::net {
namespace {

namespace fs = std::filesystem;

TEST(TcpListener, EphemeralBindReportsRealPort) {
  TcpListener listener("127.0.0.1", 0);
  EXPECT_GT(listener.port(), 0);
}

TEST(TcpListener, AcceptTimesOutWithoutClient) {
  TcpListener listener("127.0.0.1", 0);
  EXPECT_EQ(listener.accept(50), nullptr);
}

TEST(TcpListener, ClosedListenerStopsAccepting) {
  TcpListener listener("127.0.0.1", 0);
  listener.close();
  EXPECT_EQ(listener.accept(50), nullptr);
}

TEST(TcpConnection, ConnectToDeadPortThrowsIoError) {
  // Bind an ephemeral port, remember it, and release it — connecting to it
  // afterwards is refused (nothing re-binds it within the test).
  std::uint16_t dead_port = 0;
  {
    TcpListener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port, 1000),
               IoError);
}

TEST(TcpConnection, FrameRoundTripBothDirections) {
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<TcpConnection> server = listener.accept(5000);
  dialer.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->send_frame(proc::FrameType::kHello, "{\"name\":\"t\"}"));
  proc::ReadResult got = server->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.type, proc::FrameType::kHello);
  EXPECT_EQ(got.frame.payload, "{\"name\":\"t\"}");

  // Binary payloads (object frames carry raw envelope bytes, including
  // NULs) must survive untouched.
  const std::string binary("\x00\x01\xff\x7f bytes", 12);
  ASSERT_TRUE(server->send_frame(proc::FrameType::kObject, binary));
  got = client->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.type, proc::FrameType::kObject);
  EXPECT_EQ(got.frame.payload, binary);
}

TEST(TcpConnection, RecvTimesOutOnSilentPeer) {
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<TcpConnection> server = listener.accept(5000);
  dialer.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  const proc::ReadResult got = server->recv_frame(50);
  EXPECT_EQ(got.status, proc::ReadStatus::kTimeout);
}

TEST(TcpConnection, PeerCloseReadsAsCleanEof) {
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<TcpConnection> server = listener.accept(5000);
  dialer.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  client->close();
  const proc::ReadResult got = server->recv_frame(5000);
  EXPECT_EQ(got.status, proc::ReadStatus::kEof);
}

/// AgentServer facts that need no live agent: it binds an ephemeral port,
/// reports zero agents, times out waiting for a fleet that never joins,
/// and a unit dispatched into an empty fleet surfaces as the transient
/// WorkerCrashError that lets supervisor retries wait for a replacement.
class AgentServerNoFleet : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_net_server_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    store::ObjectStore::Config config;
    config.root = dir_ / "store";
    store_ = std::make_unique<store::ArtifactStore>(config);
  }
  void TearDown() override {
    store_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::unique_ptr<store::ArtifactStore> store_;
};

TEST_F(AgentServerNoFleet, BindsEphemeralPortAndCountsZeroAgents) {
  AgentServerConfig config;
  AgentServer server(config, *store_);
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.agent_count(), 0u);
  EXPECT_FALSE(server.wait_for_agents(1, 50));
}

TEST_F(AgentServerNoFleet, ExecuteWithoutAgentsThrowsTransient) {
  AgentServerConfig config;
  config.checkout_timeout_ms = 50.0;
  AgentServer server(config, *store_);
  json::Value request = json::Value::object();
  request.set("kind", "run");
  try {
    server.execute("run:0", request);
    FAIL() << "execute() must not succeed with no agents connected";
  } catch (const WorkerCrashError& error) {
    EXPECT_NE(std::string(error.what()).find("no agent available"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace anacin::net

// In-process tests for the TCP layer (net/socket.hpp): ephemeral-port
// listeners, frame round-trips over loopback, timeouts, clean EOF, and the
// AgentServer's no-agent checkout timeout. Everything runs on 127.0.0.1
// with port 0 so parallel test jobs never collide.

#include "net/socket.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/agent.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "support/error.hpp"

namespace anacin::net {
namespace {

namespace fs = std::filesystem;

TEST(TcpListener, EphemeralBindReportsRealPort) {
  TcpListener listener("127.0.0.1", 0);
  EXPECT_GT(listener.port(), 0);
}

TEST(TcpListener, AcceptTimesOutWithoutClient) {
  TcpListener listener("127.0.0.1", 0);
  EXPECT_EQ(listener.accept(50), nullptr);
}

TEST(TcpListener, ClosedListenerStopsAccepting) {
  TcpListener listener("127.0.0.1", 0);
  listener.close();
  EXPECT_EQ(listener.accept(50), nullptr);
}

TEST(TcpConnection, ConnectToDeadPortThrowsIoError) {
  // Bind an ephemeral port, remember it, and release it — connecting to it
  // afterwards is refused (nothing re-binds it within the test).
  std::uint16_t dead_port = 0;
  {
    TcpListener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port, 1000),
               IoError);
}

TEST(TcpConnection, FrameRoundTripBothDirections) {
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<TcpConnection> server = listener.accept(5000);
  dialer.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->send_frame(proc::FrameType::kHello, "{\"name\":\"t\"}"));
  proc::ReadResult got = server->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.type, proc::FrameType::kHello);
  EXPECT_EQ(got.frame.payload, "{\"name\":\"t\"}");

  // Binary payloads (object frames carry raw envelope bytes, including
  // NULs) must survive untouched.
  const std::string binary("\x00\x01\xff\x7f bytes", 10);
  ASSERT_TRUE(server->send_frame(proc::FrameType::kObject, binary));
  got = client->recv_frame(5000);
  ASSERT_TRUE(got) << got.error;
  EXPECT_EQ(got.frame.type, proc::FrameType::kObject);
  EXPECT_EQ(got.frame.payload, binary);
}

TEST(TcpConnection, RecvTimesOutOnSilentPeer) {
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<TcpConnection> server = listener.accept(5000);
  dialer.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  const proc::ReadResult got = server->recv_frame(50);
  EXPECT_EQ(got.status, proc::ReadStatus::kTimeout);
}

TEST(TcpConnection, PeerCloseReadsAsCleanEof) {
  TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<TcpConnection> client;
  std::thread dialer([&] {
    client = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<TcpConnection> server = listener.accept(5000);
  dialer.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  client->close();
  const proc::ReadResult got = server->recv_frame(5000);
  EXPECT_EQ(got.status, proc::ReadStatus::kEof);
}

/// AgentServer facts that need no live agent: it binds an ephemeral port,
/// reports zero agents, times out waiting for a fleet that never joins,
/// and a unit dispatched into an empty fleet surfaces as the transient
/// WorkerCrashError that lets supervisor retries wait for a replacement.
class AgentServerNoFleet : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_net_server_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    store::ObjectStore::Config config;
    config.root = dir_ / "store";
    store_ = std::make_unique<store::ArtifactStore>(config);
  }
  void TearDown() override {
    store_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::unique_ptr<store::ArtifactStore> store_;
};

TEST_F(AgentServerNoFleet, BindsEphemeralPortAndCountsZeroAgents) {
  AgentServerConfig config;
  AgentServer server(config, *store_);
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.agent_count(), 0u);
  EXPECT_FALSE(server.wait_for_agents(1, 50));
}

TEST_F(AgentServerNoFleet, ExecuteWithoutAgentsThrowsTransient) {
  AgentServerConfig config;
  config.checkout_timeout_ms = 50.0;
  AgentServer server(config, *store_);
  json::Value request = json::Value::object();
  request.set("kind", "run");
  try {
    server.execute("run:0", request);
    FAIL() << "execute() must not succeed with no agents connected";
  } catch (const WorkerCrashError& error) {
    EXPECT_NE(std::string(error.what()).find("no agent available"),
              std::string::npos);
  }
}

/// A connected loopback pair at protocol v2 (what the fabric speaks after
/// the handshake), for driving agent-side protocol paths against a fake
/// scheduler.
struct LoopbackPair {
  std::unique_ptr<TcpConnection> agent_side;
  std::unique_ptr<TcpConnection> sched_side;

  LoopbackPair() {
    TcpListener listener("127.0.0.1", 0);
    std::thread dialer([&] {
      agent_side = TcpConnection::connect("127.0.0.1", listener.port(), 5000);
    });
    sched_side = listener.accept(5000);
    dialer.join();
    EXPECT_NE(agent_side, nullptr);
    EXPECT_NE(sched_side, nullptr);
    agent_side->set_version(proc::kProtocolV2);
    sched_side->set_version(proc::kProtocolV2);
  }
};

// The object-fetch admission gate: a kObject whose envelope fails
// validation (here: one payload byte flipped by "the network" upstream of
// the frame CRC) must trigger a re-fetch and must never reach the store.
// The second, clean copy is admitted.
TEST_F(AgentServerNoFleet, FetchRefetchesCorruptObjectWithoutPoisoningStore) {
  LoopbackPair pair;
  const std::vector<std::uint8_t> envelope =
      store::encode_distances({1.0, 2.5, 3.25});
  const store::Digest key = store::digest_bytes(envelope.data(),
                                                envelope.size());

  std::thread fake_scheduler([&] {
    // First fetch: serve a copy with the last payload byte flipped — the
    // envelope checksum catches what the frame CRC cannot (the flip
    // happened before framing).
    proc::ReadResult request = pair.sched_side->recv_frame(5000);
    ASSERT_TRUE(request) << request.error;
    ASSERT_EQ(request.frame.type, proc::FrameType::kFetch);
    std::vector<std::uint8_t> mangled = envelope;
    mangled.back() ^= 0xff;
    ASSERT_TRUE(pair.sched_side->send_frame(
        proc::FrameType::kObject,
        encode_object_payload(key, {mangled.data(), mangled.size()})));
    // The agent must come back for another copy; serve it clean.
    request = pair.sched_side->recv_frame(5000);
    ASSERT_TRUE(request) << request.error;
    ASSERT_EQ(request.frame.type, proc::FrameType::kFetch);
    ASSERT_TRUE(pair.sched_side->send_frame(
        proc::FrameType::kObject,
        encode_object_payload(key, {envelope.data(), envelope.size()})));
  });

  const std::uint64_t corrupt_before =
      obs::counter("net.fetch_corrupt").value();
  fetch_object(*pair.agent_side, store_->objects(), key);
  fake_scheduler.join();

  EXPECT_EQ(obs::counter("net.fetch_corrupt").value(), corrupt_before + 1);
  const store::ObjectBytes stored = store_->objects().get(key);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(*stored, envelope);  // the clean copy, byte for byte
}

// When every copy arrives corrupt, the fetch gives up transient (the
// supervisor retries the whole unit) — and still never writes the bytes.
TEST_F(AgentServerNoFleet, FetchGivesUpTransientAfterRepeatedCorruption) {
  LoopbackPair pair;
  const std::vector<std::uint8_t> envelope =
      store::encode_distances({4.0, 5.0});
  const store::Digest key = store::digest_bytes(envelope.data(),
                                                envelope.size());

  std::thread fake_scheduler([&] {
    for (int i = 0; i < 3; ++i) {
      const proc::ReadResult request = pair.sched_side->recv_frame(5000);
      if (!request) return;
      std::vector<std::uint8_t> mangled = envelope;
      mangled.front() ^= 0x01;  // corrupt the magic — always rejected
      pair.sched_side->send_frame(
          proc::FrameType::kObject,
          encode_object_payload(key, {mangled.data(), mangled.size()}));
    }
  });

  EXPECT_THROW(fetch_object(*pair.agent_side, store_->objects(), key),
               TransientError);
  fake_scheduler.join();
  EXPECT_FALSE(store_->objects().contains(key));
}

// Version negotiation: a kHello advertising a protocol this build cannot
// speak gets a typed {"error": ...} kHelloOk, not a session.
TEST_F(AgentServerNoFleet, HelloWithUnsupportedProtocolIsRefused) {
  AgentServerConfig config;
  AgentServer server(config, *store_);
  const auto conn =
      TcpConnection::connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(conn->send_frame(proc::FrameType::kHello,
                               make_hello("time-traveler", 99).dump()));
  const proc::ReadResult welcome = conn->recv_frame(5000);
  ASSERT_TRUE(welcome) << welcome.error;
  ASSERT_EQ(welcome.frame.type, proc::FrameType::kHelloOk);
  const json::Value doc = json::parse(welcome.frame.payload);
  EXPECT_NE(doc.find("error"), nullptr);
  EXPECT_EQ(doc.find("token"), nullptr);
  EXPECT_EQ(server.agent_count(), 0u);
}

// Session resume at the handshake level: a second connection presenting
// the first one's token splices into the existing session instead of
// registering a new agent.
TEST_F(AgentServerNoFleet, ReconnectWithTokenResumesSessionNotNewAgent) {
  AgentServerConfig config;
  AgentServer server(config, *store_);

  const auto first = TcpConnection::connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(first->send_frame(
      proc::FrameType::kHello,
      make_hello("ag", proc::kProtocolVersion).dump()));
  const proc::ReadResult hello_ok = first->recv_frame(5000);
  ASSERT_TRUE(hello_ok) << hello_ok.error;
  const json::Value doc = json::parse(hello_ok.frame.payload);
  const std::string token = doc.at("token").as_string();
  ASSERT_FALSE(token.empty());
  EXPECT_EQ(static_cast<int>(doc.at("proto").as_number()),
            proc::kProtocolVersion);
  EXPECT_EQ(server.agent_count(), 1u);

  const std::uint64_t resumed_before =
      obs::counter("net.sessions_resumed").value();
  const auto second = TcpConnection::connect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(second->send_frame(
      proc::FrameType::kHello,
      make_hello("ag", proc::kProtocolVersion, token).dump()));
  const proc::ReadResult resumed = second->recv_frame(5000);
  ASSERT_TRUE(resumed) << resumed.error;
  ASSERT_EQ(resumed.frame.type, proc::FrameType::kHelloOk);
  const json::Value redoc = json::parse(resumed.frame.payload);
  EXPECT_EQ(redoc.at("token").as_string(), token);
  EXPECT_EQ(server.agent_count(), 1u);  // resumed, not re-registered
  EXPECT_EQ(obs::counter("net.sessions_resumed").value(),
            resumed_before + 1);
  // The replaced connection is closed by the server.
  EXPECT_EQ(first->recv_frame(5000).status, proc::ReadStatus::kEof);
}

}  // namespace
}  // namespace anacin::net

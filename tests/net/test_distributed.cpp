// End-to-end distributed campaigns: run the same sweep locally and via
// `anacin serve` + two loopback `anacin agent` processes, and require the
// report outputs to be byte-identical — cold, with one agent SIGKILLed
// mid-campaign (requeue to the survivor), with warm agent stores (zero
// simulation), and across a scheduler crash + --resume. Exercises the real
// CLI binary the way an operator's fleet would.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"

#ifndef ANACIN_CLI_PATH
#error "ANACIN_CLI_PATH must point at the anacin executable"
#endif

namespace anacin {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

double counter_value(const json::Value& metrics, const std::string& name) {
  const json::Value* found = metrics.at("counters").find(name);
  return found == nullptr ? 0.0 : found->as_number();
}

constexpr const char* kSweepFlags =
    "--pattern message_race --ranks 4 --runs 2 --step 50 --seed 7";

class DistributedE2e : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_distributed_e2e_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    bin_ = fs::path(ANACIN_CLI_PATH).string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path path(const std::string& name) const { return dir_ / name; }

  /// The local baseline: same sweep flags, same seed, plain `sweep`.
  std::string local_command(const std::string& tag) const {
    std::ostringstream os;
    os << '"' << bin_ << "\" --store " << path("local-store").string()
       << " --metrics-out " << path(tag + "-metrics.json").string()
       << " sweep " << kSweepFlags << " --csv " << path(tag + ".csv").string()
       << " --json " << path(tag + ".json").string() << " > "
       << path(tag + ".out").string() << " 2>&1";
    return os.str();
  }

  /// One scheduler + two loopback agents, wired through an ephemeral port
  /// announced via --port-file (always an absolute path — agents poll for
  /// it with a bounded wait so a scheduler that dies early cannot strand
  /// them). Returns the serve exit code; each agent's exit code lands in
  /// <tag>-aN.rc.
  std::string fleet_command(const std::string& tag,
                            const std::string& scheduler_store,
                            const std::string& agent1_store,
                            const std::string& agent2_store,
                            const std::string& serve_env = "",
                            const std::string& agent1_env = "",
                            const std::string& extra_serve = "") const {
    const std::string port_file = path(tag + "-port.txt").string();
    const auto agent = [&](int i, const std::string& store,
                           const std::string& env) {
      std::ostringstream os;
      os << "( i=0; while [ ! -s \"" << port_file
         << "\" ] && [ $i -lt 200 ]; do sleep 0.05; i=$((i+1)); done; "
         << "[ -s \"" << port_file << "\" ] || exit 3; " << env
         << (env.empty() ? "" : " ") << "exec \"" << bin_ << "\" --store "
         << path(store).string() << " --metrics-out "
         << path(tag + "-a" + std::to_string(i) + "-metrics.json").string()
         << " agent --connect 127.0.0.1:$(cat \"" << port_file
         << "\") --name a" << i << " ) > "
         << path(tag + "-a" + std::to_string(i) + ".out").string()
         << " 2>&1 &\nA" << i << "=$!\n";
      return os.str();
    };

    std::ostringstream os;
    os << "rm -f \"" << port_file << "\"\n"
       << agent(1, agent1_store, agent1_env) << agent(2, agent2_store, "")
       << serve_env << (serve_env.empty() ? "" : " ") << '"' << bin_
       << "\" --store " << path(scheduler_store).string() << " --metrics-out "
       << path(tag + "-metrics.json").string() << " serve " << kSweepFlags
       << " --agents 2 --port-file \"" << port_file << "\" --csv "
       << path(tag + ".csv").string() << " --json "
       << path(tag + ".json").string() << ' ' << extra_serve << " > "
       << path(tag + ".out").string() << " 2>&1\nRC=$?\n"
       << "wait $A1; echo $? > " << path(tag + "-a1.rc").string() << "\n"
       << "wait $A2; echo $? > " << path(tag + "-a2.rc").string() << "\n"
       << "exit $RC";
    return os.str();
  }

  int agent_exit(const std::string& tag, int i) const {
    const std::string text = slurp(path(tag + "-a" + std::to_string(i) +
                                        ".rc"));
    return text.empty() ? -1 : std::stoi(text);
  }

  json::Value metrics(const std::string& tag) const {
    return json::parse(slurp(path(tag + "-metrics.json")));
  }

  std::string debug_dump(const std::string& tag) const {
    return "serve:\n" + slurp(path(tag + ".out")) + "\nagent1:\n" +
           slurp(path(tag + "-a1.out")) + "\nagent2:\n" +
           slurp(path(tag + "-a2.out"));
  }

  fs::path dir_;
  std::string bin_;
};

TEST_F(DistributedE2e, ColdFleetMatchesLocalByteForByte) {
  ASSERT_EQ(run_command(local_command("local")), 0)
      << slurp(path("local.out"));
  const std::string local_json = slurp(path("local.json"));
  const std::string local_csv = slurp(path("local.csv"));
  ASSERT_FALSE(local_json.empty());

  ASSERT_EQ(run_command(fleet_command("cold", "sched-store", "agent1-store",
                                      "agent2-store")),
            0)
      << debug_dump("cold");
  EXPECT_EQ(agent_exit("cold", 1), 0) << slurp(path("cold-a1.out"));
  EXPECT_EQ(agent_exit("cold", 2), 0) << slurp(path("cold-a2.out"));

  EXPECT_EQ(slurp(path("cold.json")), local_json);
  EXPECT_EQ(slurp(path("cold.csv")), local_csv);

  // Every unit really travelled the wire: the scheduler store was cold, so
  // nothing short-circuited, and both agents joined.
  const json::Value serve_metrics = metrics("cold");
  EXPECT_EQ(counter_value(serve_metrics, "net.agents_connected"), 2.0);
  EXPECT_GT(counter_value(serve_metrics, "net.units_dispatched"), 0.0);
  EXPECT_GT(counter_value(serve_metrics, "net.objects_absorbed"), 0.0);
  EXPECT_EQ(counter_value(serve_metrics, "net.unit_failures"), 0.0);
}

TEST_F(DistributedE2e, AgentKilledMidCampaignRequeuesToSurvivor) {
  ASSERT_EQ(run_command(local_command("local")), 0)
      << slurp(path("local.out"));

  // Agent 1 SIGKILLs itself inside the first unit it picks up (the "*"
  // wildcard — unit placement across agents is racy, so a specific unit
  // id might land on the uninjected agent). A killed process can never
  // resume its session, so the scheduler must wait out the unit's lease
  // (shortened here so the test stays fast), map the expiry to a
  // transient crash, re-queue the unit, and finish on the survivor.
  ASSERT_EQ(run_command(fleet_command("kill", "sched-store", "agent1-store",
                                      "agent2-store", "",
                                      "ANACIN_INJECT_CRASH='*=KILL'",
                                      "--unit-lease-ms 2000")),
            0)
      << debug_dump("kill");
  EXPECT_EQ(agent_exit("kill", 1), 128 + SIGKILL)
      << slurp(path("kill-a1.out"));
  EXPECT_EQ(agent_exit("kill", 2), 0) << slurp(path("kill-a2.out"));

  // The kill is invisible in the report: byte-identical to local.
  EXPECT_EQ(slurp(path("kill.json")), slurp(path("local.json")));
  EXPECT_EQ(slurp(path("kill.csv")), slurp(path("local.csv")));

  const json::Value serve_metrics = metrics("kill");
  EXPECT_GE(counter_value(serve_metrics, "net.agent_disconnects"), 1.0);
  EXPECT_GE(counter_value(serve_metrics, "net.leases_expired"), 1.0);
  EXPECT_GE(counter_value(serve_metrics, "resilience.retries"), 1.0);
}

TEST_F(DistributedE2e, ChaosFleetMatchesLocalByteForByte) {
  ASSERT_EQ(run_command(local_command("local")), 0)
      << slurp(path("local.out"));

  // Seeded chaos on BOTH sides of the wire: the scheduler mangles its
  // sends (requests, shipped objects) and agent 1 mangles its own
  // (heartbeats, publishes, results). Corruption is caught by the frame
  // CRC, drops by the stall detector (shortened so a swallowed result
  // costs ~1.5 s, not 10), reorders by the bounded window, and every
  // recovery path funnels through session resume + warm re-execution —
  // none of which may leave a fingerprint in the report.
  const std::string serve_chaos =
      "ANACIN_NET_CHAOS='seed=7,corrupt=0.03,reorder=0.05,delay=0.3,"
      "delay_ms=5'";
  const std::string agent_chaos =
      "ANACIN_NET_CHAOS='seed=1007,drop=0.02,corrupt=0.03,reorder=0.05,"
      "delay=0.3,delay_ms=5'";
  ASSERT_EQ(run_command(fleet_command(
                "chaos", "sched-store", "agent1-store", "agent2-store",
                serve_chaos, agent_chaos,
                "--unit-lease-ms 5000 --agent-heartbeat-timeout-ms 1500")),
            0)
      << debug_dump("chaos");
  EXPECT_EQ(agent_exit("chaos", 1), 0) << slurp(path("chaos-a1.out"));
  EXPECT_EQ(agent_exit("chaos", 2), 0) << slurp(path("chaos-a2.out"));

  // The invariant of the whole fabric: heavy chaos, identical bytes.
  EXPECT_EQ(slurp(path("chaos.json")), slurp(path("local.json")));
  EXPECT_EQ(slurp(path("chaos.csv")), slurp(path("local.csv")));

  // Prove the run was not accidentally clean: faults actually fired on at
  // least one side, and the scheduler store ended up intact.
  const json::Value serve_metrics = metrics("chaos");
  const json::Value agent1_metrics = metrics("chaos-a1");
  const double faults_fired =
      counter_value(serve_metrics, "net.chaos_corrupted") +
      counter_value(serve_metrics, "net.chaos_reordered") +
      counter_value(serve_metrics, "net.chaos_delayed") +
      counter_value(agent1_metrics, "net.chaos_dropped") +
      counter_value(agent1_metrics, "net.chaos_corrupted") +
      counter_value(agent1_metrics, "net.chaos_reordered") +
      counter_value(agent1_metrics, "net.chaos_delayed");
  EXPECT_GT(faults_fired, 0.0) << debug_dump("chaos");
}

TEST_F(DistributedE2e, ConnectionResetsResumeSessionsInvisibly) {
  ASSERT_EQ(run_command(local_command("local")), 0)
      << slurp(path("local.out"));

  // Every scheduler-side send has a 25% chance of tearing the connection
  // down mid-conversation. The agents survive on their session tokens:
  // each reset costs a reconnect + re-dispatch (answered from the warm
  // agent store), never a requeue to another agent and never a wrong
  // byte. The shortened lease bounds how long a torn unit can dangle.
  ASSERT_EQ(run_command(fleet_command(
                "reset", "sched-store", "agent1-store", "agent2-store",
                "ANACIN_NET_CHAOS='seed=11,reset=0.25'", "",
                "--unit-lease-ms 5000 --agent-heartbeat-timeout-ms 1500")),
            0)
      << debug_dump("reset");
  EXPECT_EQ(agent_exit("reset", 1), 0) << slurp(path("reset-a1.out"));
  EXPECT_EQ(agent_exit("reset", 2), 0) << slurp(path("reset-a2.out"));

  EXPECT_EQ(slurp(path("reset.json")), slurp(path("local.json")));
  EXPECT_EQ(slurp(path("reset.csv")), slurp(path("local.csv")));

  const json::Value serve_metrics = metrics("reset");
  EXPECT_GE(counter_value(serve_metrics, "net.chaos_resets"), 1.0);
  EXPECT_GE(counter_value(serve_metrics, "net.sessions_resumed"), 1.0);
  // Resume — not expiry — is the recovery path for a live agent.
  EXPECT_GE(counter_value(serve_metrics, "net.redispatches"), 1.0);
}

TEST_F(DistributedE2e, WarmAgentsPublishWithoutSimulating) {
  // Warm both agent stores with a completed local sweep; the scheduler
  // store stays cold, so it must pull everything over the wire — and the
  // agents must serve it all from cache.
  ASSERT_EQ(run_command(local_command("local")), 0)
      << slurp(path("local.out"));
  ASSERT_EQ(run_command("cp -r " + path("local-store").string() + " " +
                        path("warm1-store").string()),
            0);
  ASSERT_EQ(run_command("cp -r " + path("local-store").string() + " " +
                        path("warm2-store").string()),
            0);

  ASSERT_EQ(run_command(fleet_command("warm", "warm-sched-store",
                                      "warm1-store", "warm2-store")),
            0)
      << debug_dump("warm");
  EXPECT_EQ(agent_exit("warm", 1), 0);
  EXPECT_EQ(agent_exit("warm", 2), 0);

  EXPECT_EQ(slurp(path("warm.json")), slurp(path("local.json")));

  // The acceptance bar: warm agents run zero simulations end to end.
  EXPECT_EQ(counter_value(metrics("warm-a1"), "sim.engine.runs"), 0.0);
  EXPECT_EQ(counter_value(metrics("warm-a2"), "sim.engine.runs"), 0.0);
  EXPECT_GT(counter_value(metrics("warm-a1"), "net.objects_published") +
                counter_value(metrics("warm-a2"), "net.objects_published"),
            0.0);
}

TEST_F(DistributedE2e, SchedulerCrashResumesAcrossFreshFleet) {
  ASSERT_EQ(run_command(local_command("local")), 0)
      << slurp(path("local.out"));

  // The scheduler SIGKILLs itself after journaling the first sweep point;
  // the orphaned agents see EOF and exit 0 — no strays.
  const std::string journal = " --journal " + path("serve.jsonl").string();
  EXPECT_EQ(run_command(fleet_command("crash", "sched-store", "agent1-store",
                                      "agent2-store",
                                      "ANACIN_CRASH_AFTER_POINTS=1", "",
                                      journal)),
            128 + SIGKILL)
      << debug_dump("crash");
  EXPECT_EQ(agent_exit("crash", 1), 0) << slurp(path("crash-a1.out"));
  EXPECT_EQ(agent_exit("crash", 2), 0) << slurp(path("crash-a2.out"));
  ASSERT_TRUE(fs::exists(path("serve.jsonl")));

  // Resume with a fresh fleet: the journal replays the finished point and
  // the remaining units run distributed; the final report is
  // byte-identical to the uninterrupted local sweep.
  ASSERT_EQ(run_command(fleet_command("resumed", "sched-store",
                                      "agent1-store", "agent2-store", "", "",
                                      journal + " --resume")),
            0)
      << debug_dump("resumed");
  EXPECT_NE(slurp(path("resumed.out")).find("resume: 1 of 3"),
            std::string::npos)
      << slurp(path("resumed.out"));
  EXPECT_EQ(slurp(path("resumed.json")), slurp(path("local.json")));
  EXPECT_EQ(slurp(path("resumed.csv")), slurp(path("local.csv")));
}

}  // namespace
}  // namespace anacin

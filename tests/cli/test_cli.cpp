#include "cli/cli_app.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iterator>
#include <sstream>

#include "obs/obs.hpp"
#include "support/json.hpp"

namespace anacin::cli {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun invoke(std::vector<std::string> args) {
  args.insert(args.begin(), "anacin");
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.exit_code = run_cli(args, out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

TEST(Cli, NoArgsPrintsUsage) {
  const CliRun run = invoke({});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("usage: anacin"), std::string::npos);
  EXPECT_NE(run.out.find("rootcause"), std::string::npos);
}

TEST(Cli, HelpCommand) {
  EXPECT_EQ(invoke({"help"}).exit_code, 0);
  EXPECT_EQ(invoke({"--help"}).exit_code, 0);
}

TEST(Cli, UnknownCommandFailsWithUsage) {
  // 64 (EX_USAGE), not 2: exit 2 means "completed with quarantined units"
  // under --keep-going (see docs/RESILIENCE.md).
  const CliRun run = invoke({"frobnicate"});
  EXPECT_EQ(run.exit_code, 64);
  EXPECT_NE(run.err.find("unknown command"), std::string::npos);
}

TEST(Cli, SubcommandHelpReturnsZero) {
  for (const std::string command :
       {"run", "measure", "sweep", "rootcause", "replay", "course",
        "patterns", "graph"}) {
    const CliRun run = invoke({command, "--help"});
    EXPECT_EQ(run.exit_code, 0) << command;
  }
}

TEST(Cli, PatternsListsAllPackagedApps) {
  const CliRun run = invoke({"patterns"});
  EXPECT_EQ(run.exit_code, 0);
  for (const std::string name :
       {"message_race", "amg2013", "unstructured_mesh", "ping_pong",
        "reduce_tree", "probe_race"}) {
    EXPECT_NE(run.out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, RunPrintsStatsAndAscii) {
  const CliRun run = invoke(
      {"run", "--pattern", "message_race", "--ranks", "4", "--ascii"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("messages=3"), std::string::npos);
  EXPECT_NE(run.out.find("rank 0"), std::string::npos);
}

TEST(Cli, RunWithMetrics) {
  const CliRun run = invoke(
      {"run", "--pattern", "amg2013", "--ranks", "3", "--metrics"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("communication matrix"), std::string::npos);
  EXPECT_NE(run.out.find("critical path"), std::string::npos);
}

TEST(Cli, RunGraphRoundTripThroughTraceFile) {
  const std::string trace_path = "test_output/cli/trace.json";
  const CliRun run = invoke({"run", "--pattern", "message_race", "--ranks",
                             "4", "--trace-out", trace_path});
  EXPECT_EQ(run.exit_code, 0);
  const CliRun graph = invoke({"graph", "--trace", trace_path, "--metrics"});
  EXPECT_EQ(graph.exit_code, 0);
  EXPECT_NE(graph.out.find("ranks=4"), std::string::npos);
  EXPECT_NE(graph.out.find("messages=3"), std::string::npos);
  std::filesystem::remove_all(trace_path);
}

TEST(Cli, GraphRequiresTraceOption) {
  const CliRun run = invoke({"graph"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("--trace is required"), std::string::npos);
}

TEST(Cli, MeasureReportsSummaryAndCi) {
  const CliRun run = invoke({"measure", "--pattern", "message_race",
                             "--ranks", "6", "--runs", "6"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("median="), std::string::npos);
  EXPECT_NE(run.out.find("95% CI"), std::string::npos);
}

TEST(Cli, MeasureWritesCsv) {
  const std::string csv_path = "test_output/cli/distances.csv";
  const CliRun run = invoke({"measure", "--pattern", "message_race",
                             "--ranks", "5", "--runs", "4", "--csv",
                             csv_path});
  EXPECT_EQ(run.exit_code, 0);
  std::ifstream in(csv_path);
  EXPECT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "run,kernel_distance");
  std::filesystem::remove_all(csv_path);
}

TEST(Cli, MeasureRejectsBadReduction) {
  const CliRun run = invoke({"measure", "--reduction", "bogus"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("reduction"), std::string::npos);
}

TEST(Cli, SweepShowsMonotoneTrend) {
  const CliRun run = invoke({"sweep", "--pattern", "amg2013", "--ranks", "6",
                             "--runs", "5", "--step", "50"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("0% ND"), std::string::npos);
  EXPECT_NE(run.out.find("100% ND"), std::string::npos);
  EXPECT_NE(run.out.find("Spearman"), std::string::npos);
}

TEST(Cli, RootcauseNamesWildcardCallsite) {
  const CliRun run = invoke({"rootcause", "--pattern", "amg2013", "--ranks",
                             "6", "--runs", "5"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("likely root source"), std::string::npos);
  EXPECT_NE(run.out.find("MPI_Irecv"), std::string::npos);
}

TEST(Cli, RootcauseOnDeterministicPatternReportsNothing) {
  const CliRun run = invoke({"rootcause", "--pattern", "ping_pong", "--ranks",
                             "6", "--runs", "4"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("appears deterministic"), std::string::npos);
}

TEST(Cli, ReplayReportsZeroDistance) {
  const CliRun run = invoke({"replay", "--pattern", "unstructured_mesh",
                             "--ranks", "6", "--seed", "3", "--replay-seed",
                             "777"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("kernel distance(recorded, replayed) = 0"),
            std::string::npos);
}

TEST(Cli, BisectReportsMinimalRacySetAndCallsite) {
  const CliRun run = invoke({"bisect", "--pattern", "message_race", "--ranks",
                             "6", "--seed", "11", "--replay-seed", "777"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("recorded wildcard matches:"), std::string::npos);
  // Either the seeds happen to coincide (no gap) or a minimal set with the
  // racy callsite is reported; at full ND on message_race the gap is real.
  EXPECT_NE(run.out.find("minimal racy set:"), std::string::npos);
  EXPECT_NE(run.out.find("message_race>race_recv>MPI_Recv"),
            std::string::npos);
  EXPECT_NE(run.out.find("likely root cause:"), std::string::npos);
}

TEST(Cli, BisectWritesJsonAndBarArtifacts) {
  const std::string json_path = "bisect_test_out.json";
  const std::string bar_path = "bisect_test_out.svg";
  const CliRun run =
      invoke({"bisect", "--pattern", "message_race", "--ranks", "6",
              "--seed", "11", "--replay-seed", "777", "--json", json_path,
              "--bar", bar_path});
  EXPECT_EQ(run.exit_code, 0);
  std::ifstream json_file(json_path);
  ASSERT_TRUE(json_file.good());
  const std::string body((std::istreambuf_iterator<char>(json_file)),
                         std::istreambuf_iterator<char>());
  const json::Value doc = json::parse(body);
  EXPECT_EQ(doc.at("schema").as_string(), "anacin-bisect-1");
  EXPECT_GT(doc.at("minimal").size(), 0u);
  std::ifstream bar_file(bar_path);
  EXPECT_TRUE(bar_file.good());
  std::filesystem::remove(json_path);
  std::filesystem::remove(bar_path);
}

TEST(Cli, BisectRejectsKeepGoingAndEqualSeeds) {
  const CliRun keep_going =
      invoke({"bisect", "--pattern", "message_race", "--ranks", "4",
              "--keep-going"});
  EXPECT_EQ(keep_going.exit_code, 1);
  EXPECT_NE(keep_going.err.find("--keep-going"), std::string::npos);
  const CliRun same_seed =
      invoke({"bisect", "--pattern", "message_race", "--ranks", "4",
              "--seed", "7", "--replay-seed", "7"});
  EXPECT_EQ(same_seed.exit_code, 1);
  EXPECT_NE(same_seed.err.find("replay seed"), std::string::npos);
}

TEST(Cli, FiguresIndexAndLookup) {
  const CliRun index = invoke({"figures"});
  EXPECT_EQ(index.exit_code, 0);
  EXPECT_NE(index.out.find("fig07_nd_sweep"), std::string::npos);
  const CliRun one = invoke({"figures", "--id", "fig5"});
  EXPECT_EQ(one.exit_code, 0);
  EXPECT_NE(one.out.find("unstructured_mesh"), std::string::npos);
  EXPECT_NE(one.out.find("fig05_process_scaling"), std::string::npos);
  const CliRun missing = invoke({"figures", "--id", "fig99"});
  EXPECT_EQ(missing.exit_code, 1);
}

TEST(Cli, ReportProducesSelfContainedHtml) {
  const std::string path = "test_output/cli/report.html";
  const CliRun run = invoke({"report", "--pattern", "message_race",
                             "--ranks", "5", "--runs", "4", "--out", path});
  EXPECT_EQ(run.exit_code, 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string html((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("message_race"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);       // inline figures
  EXPECT_NE(html.find("root source"), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);  // no external assets
  std::filesystem::remove_all(path);
}

TEST(Cli, ReportOnDeterministicPatternSaysSo) {
  const std::string path = "test_output/cli/report2.html";
  const CliRun run = invoke({"report", "--pattern", "ping_pong", "--ranks",
                             "4", "--runs", "4", "--out", path});
  EXPECT_EQ(run.exit_code, 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string html((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(html.find("deterministically"), std::string::npos);
  std::filesystem::remove_all(path);
}

TEST(Cli, CourseTablesPrinted) {
  const CliRun run = invoke({"course"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("Table I"), std::string::npos);
  EXPECT_NE(run.out.find("Table II"), std::string::npos);
}

TEST(Cli, CourseUseCase1Runs) {
  const CliRun run = invoke({"course", "--use-case", "1"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("runs differ: yes"), std::string::npos);
}

TEST(Cli, CourseSchedulePrinted) {
  const CliRun run = invoke({"course", "--schedule"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("Half-day tutorial schedule"), std::string::npos);
  EXPECT_NE(run.out.find("use_case_advanced"), std::string::npos);
}

TEST(Cli, QuizPrintsQuestionsPerLevel) {
  const CliRun run = invoke({"quiz", "--level", "C", "--reveal"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("C.1-q1"), std::string::npos);
  EXPECT_NE(run.out.find("answer:"), std::string::npos);
  const CliRun hidden = invoke({"quiz", "--level", "C"});
  EXPECT_EQ(hidden.out.find("answer:"), std::string::npos);
}

TEST(Cli, QuizGradesSubmissions) {
  const CliRun perfect = invoke({"quiz", "--grade", "A.1-q1=b,A.2-q2=a"});
  EXPECT_EQ(perfect.exit_code, 0);
  EXPECT_NE(perfect.out.find("score: 2/2"), std::string::npos);
  const CliRun flawed = invoke({"quiz", "--grade", "A.1-q1=a"});
  EXPECT_EQ(flawed.exit_code, 1);
  EXPECT_NE(flawed.out.find("review A.1-q1"), std::string::npos);
}

TEST(Cli, QuizRejectsMalformedGradeSpec) {
  EXPECT_EQ(invoke({"quiz", "--grade", "A.1-q1"}).exit_code, 1);
  EXPECT_EQ(invoke({"quiz", "--grade", "A.1-q1=zz"}).exit_code, 1);
  EXPECT_EQ(invoke({"quiz", "--level", "Q"}).exit_code, 1);
}

TEST(Cli, CourseRejectsBadUseCase) {
  const CliRun run = invoke({"course", "--use-case", "9"});
  EXPECT_EQ(run.exit_code, 1);
}

TEST(Cli, GlobalObservabilityFlagsWriteMetricsAndTrace) {
  const std::string metrics_path = "test_output/cli/metrics.json";
  const std::string trace_path = "test_output/cli/spans.json";
  const CliRun run = invoke({"--metrics-out", metrics_path, "--trace-out",
                             trace_path, "measure", "--pattern",
                             "message_race", "--ranks", "5", "--runs", "4"});
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("metrics written to"), std::string::npos);
  EXPECT_NE(run.out.find("trace written to"), std::string::npos);

  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::string metrics_text((std::istreambuf_iterator<char>(metrics_in)),
                           std::istreambuf_iterator<char>());
  const json::Value metrics = json::parse(metrics_text);
  EXPECT_GT(metrics.at("counters").at("sim.engine.runs").as_number(), 0.0);
  EXPECT_GT(metrics.at("counters").at("sim.engine.messages").as_number(),
            0.0);
  EXPECT_GT(
      metrics.at("counters").at("kernels.wl.feature_extractions").as_number(),
      0.0);

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::string trace_text((std::istreambuf_iterator<char>(trace_in)),
                         std::istreambuf_iterator<char>());
  const json::Value trace = json::parse(trace_text);
  ASSERT_TRUE(trace.is_array());
  ASSERT_GT(trace.size(), 0u);
  bool saw_engine_run = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).at("ph").as_string(), "X");
    if (trace.at(i).at("name").as_string() == "sim.engine.run") {
      saw_engine_run = true;
    }
  }
  EXPECT_TRUE(saw_engine_run);
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  std::filesystem::remove_all(metrics_path);
  std::filesystem::remove_all(trace_path);
}

TEST(Cli, GlobalFlagsAcceptEqualsForm) {
  const std::string metrics_path = "test_output/cli/metrics_eq.json";
  const CliRun run = invoke({"--metrics-out=" + metrics_path, "run",
                             "--pattern", "message_race", "--ranks", "4"});
  EXPECT_EQ(run.exit_code, 0);
  std::ifstream in(metrics_path);
  EXPECT_TRUE(in.good());
  std::filesystem::remove_all(metrics_path);
}

TEST(Cli, MetricsOutWithoutPathFails) {
  const CliRun run = invoke({"--metrics-out"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("requires a file path"), std::string::npos);
}

TEST(Cli, BadOptionValueSurfacesAsError) {
  const CliRun run = invoke({"run", "--ranks", "not-a-number"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("invalid value"), std::string::npos);
}

TEST(Cli, UnknownPatternSurfacesAsError) {
  const CliRun run = invoke({"run", "--pattern", "bogus"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("unknown pattern"), std::string::npos);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Cli, CacheWithoutStoreFails) {
  const CliRun run = invoke({"cache", "stats"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("--store"), std::string::npos);
}

TEST(Cli, CacheWithoutActionFails) {
  const CliRun run = invoke({"--store", "test_output/cli_cache", "cache"});
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("stats, verify, or gc"), std::string::npos);
  std::filesystem::remove_all("test_output/cli_cache");
}

TEST(Cli, StoreWarmMeasureSkipsSimulationAndDistanceWork) {
  const std::string dir = "test_output/cli_store";
  const std::vector<std::string> measure = {
      "--store", dir,      "measure", "--pattern", "message_race",
      "--ranks", "4",      "--runs",  "4",         "--seed",
      "90125",   "--json"};

  auto with_json = [&](const std::string& json_path) {
    std::vector<std::string> args = measure;
    args.push_back(json_path);
    return args;
  };
  ASSERT_EQ(invoke(with_json(dir + "/cold.json")).exit_code, 0);

  obs::Counter& sims = obs::counter("sim.engine.runs");
  obs::Counter& distances = obs::counter("kernels.distances_computed");
  const std::uint64_t sims_before = sims.value();
  const std::uint64_t distances_before = distances.value();
  const std::uint64_t hits_before = obs::counter("store.hits").value();

  ASSERT_EQ(invoke(with_json(dir + "/warm.json")).exit_code, 0);
  EXPECT_EQ(sims.value(), sims_before)
      << "warm measure re-ran a simulation";
  EXPECT_EQ(distances.value(), distances_before)
      << "warm measure recomputed a kernel distance";
  EXPECT_GT(obs::counter("store.hits").value(), hits_before);

  const std::string cold = read_file(dir + "/cold.json");
  const std::string warm = read_file(dir + "/warm.json");
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(warm, cold) << "warm measurement JSON is not bit-identical";
  std::filesystem::remove_all(dir);
}

TEST(Cli, CacheStatsVerifyAndGc) {
  const std::string dir = "test_output/cli_cache_ops";
  ASSERT_EQ(invoke({"--store", dir, "measure", "--pattern", "message_race",
                    "--ranks", "4", "--runs", "3", "--seed", "5150"})
                .exit_code,
            0);

  const CliRun stats = invoke({"--store", dir, "cache", "stats"});
  EXPECT_EQ(stats.exit_code, 0);
  EXPECT_NE(stats.out.find("objects:"), std::string::npos);
  EXPECT_NE(stats.out.find("run"), std::string::npos);

  const CliRun verify = invoke({"--store", dir, "cache", "verify"});
  EXPECT_EQ(verify.exit_code, 0);
  EXPECT_NE(verify.out.find("0 corrupt"), std::string::npos);

  EXPECT_EQ(invoke({"--store", dir, "cache", "gc"}).exit_code, 1)
      << "gc without --max-bytes must be rejected";
  const CliRun gc =
      invoke({"--store", dir, "cache", "gc", "--max-bytes", "0"});
  EXPECT_EQ(gc.exit_code, 0);
  EXPECT_NE(gc.out.find("0 objects (0 bytes) remain"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, CacheVerifyFlagsCorruptObjects) {
  const std::string dir = "test_output/cli_cache_corrupt";
  ASSERT_EQ(invoke({"--store", dir, "run", "--pattern", "message_race",
                    "--ranks", "4"})
                .exit_code,
            0);
  // `run` does not use the store yet; plant a bogus object by hand.
  std::filesystem::create_directories(dir + "/objects/ab");
  {
    std::ofstream bad(dir + "/objects/ab" +
                          "/cdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
                      std::ios::binary);
    bad << "this is not an artifact";
  }
  const CliRun verify = invoke({"--store", dir, "cache", "verify"});
  EXPECT_EQ(verify.exit_code, 1);
  EXPECT_NE(verify.out.find("corrupt"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, StoreEnvVarDefaultAndNoStoreOverride) {
  const std::string dir = "test_output/cli_env_store";
  ::setenv("ANACIN_STORE_DIR", dir.c_str(), 1);
  ASSERT_EQ(invoke({"measure", "--pattern", "message_race", "--ranks", "4",
                    "--runs", "2", "--seed", "777001"})
                .exit_code,
            0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/objects"));

  // --no-store wins over the environment.
  std::filesystem::remove_all(dir);
  ASSERT_EQ(invoke({"--no-store", "measure", "--pattern", "message_race",
                    "--ranks", "4", "--runs", "2", "--seed", "777002"})
                .exit_code,
            0);
  EXPECT_FALSE(std::filesystem::exists(dir));
  ::unsetenv("ANACIN_STORE_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Cli, StoreMaxBytesRejectsMalformedValues) {
  for (const char* bad : {"abc", "10abc", "-1", "", "0x10", "1.5"}) {
    const CliRun run = invoke(
        {"--store-max-bytes", bad, "patterns"});
    EXPECT_EQ(run.exit_code, 1) << "value '" << bad << "'";
    EXPECT_NE(run.err.find("--store-max-bytes"), std::string::npos)
        << "value '" << bad << "'";
  }
  EXPECT_EQ(invoke({"--store-max-bytes", "1048576", "patterns"}).exit_code, 0);
  EXPECT_EQ(invoke({"--store-max-bytes=0", "patterns"}).exit_code, 0);
}

TEST(Cli, FaultFlagsInjectFaults) {
  const CliRun run = invoke({"run", "--pattern", "message_race", "--ranks",
                             "4", "--fault-drop", "1.0", "--fault-retries",
                             "2", "--fault-dup", "1.0", "--stragglers", "1"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("faults: drops=6"), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("duplicates=3"), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("straggler_events="), std::string::npos) << run.out;
}

TEST(Cli, FaultFlagsRejectMalformedValues) {
  const CliRun bad_drop = invoke({"run", "--ranks", "4", "--fault-drop", "x"});
  EXPECT_EQ(bad_drop.exit_code, 1);
  EXPECT_NE(bad_drop.err.find("--fault-drop"), std::string::npos);

  const CliRun range_outside_sweep =
      invoke({"run", "--ranks", "4", "--fault-drop", "0:0.3:0.1"});
  EXPECT_EQ(range_outside_sweep.exit_code, 1);

  const CliRun bad_list =
      invoke({"run", "--ranks", "4", "--stragglers", "1,x"});
  EXPECT_EQ(bad_list.exit_code, 1);
  EXPECT_NE(bad_list.err.find("--stragglers"), std::string::npos);

  const CliRun out_of_range =
      invoke({"run", "--ranks", "4", "--stragglers", "7"});
  EXPECT_EQ(out_of_range.exit_code, 1);
}

TEST(Cli, SweepOverDropProbability) {
  const CliRun run =
      invoke({"sweep", "--pattern", "message_race", "--ranks", "4", "--runs",
              "3", "--nd", "0", "--fault-drop", "0:0.5:0.25", "--csv",
              "test_output/drop_sweep.csv"});
  EXPECT_EQ(run.exit_code, 0) << run.err;
  EXPECT_NE(run.out.find("Spearman(median, drop)"), std::string::npos)
      << run.out;

  std::ifstream csv("test_output/drop_sweep.csv");
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "drop_probability,median,mean");
  int rows = 0;
  for (std::string line; std::getline(csv, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 3);  // 0, 0.25, 0.5
  std::filesystem::remove_all("test_output/drop_sweep.csv");
}

// ---------------------------------------------------------------------------
// Resilience: --keep-going, retries, journal/--resume, cache repair
// ---------------------------------------------------------------------------

class ScopedInjection {
public:
  explicit ScopedInjection(const char* spec) {
    ::setenv("ANACIN_INJECT_FAILURES", spec, 1);
  }
  ~ScopedInjection() { ::unsetenv("ANACIN_INJECT_FAILURES"); }
};

const std::vector<std::string> kSmallMeasure = {
    "measure", "--pattern", "message_race", "--ranks", "4",
    "--runs",  "4",         "--seed",       "42",      "--backoff-us", "0"};

std::vector<std::string> with_args(std::vector<std::string> base,
                                   std::initializer_list<std::string> extra) {
  base.insert(base.end(), extra.begin(), extra.end());
  return base;
}

TEST(CliResilience, FailFastAbortsWithExit1) {
  const ScopedInjection inject("run:1=permanent");
  const CliRun run = invoke(kSmallMeasure);
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("run:1"), std::string::npos) << run.err;
}

TEST(CliResilience, KeepGoingQuarantinesWithExit2) {
  const ScopedInjection inject("run:1=permanent");
  const CliRun run = invoke(with_args(kSmallMeasure, {"--keep-going"}));
  EXPECT_EQ(run.exit_code, 2) << run.err;
  EXPECT_NE(run.out.find("PARTIAL RESULTS"), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("quarantined run:1"), std::string::npos) << run.out;
}

TEST(CliResilience, TransientFailuresRetryToCleanExit) {
  const ScopedInjection inject("run:0=transient:2");
  const CliRun no_retries = invoke(kSmallMeasure);
  EXPECT_EQ(no_retries.exit_code, 1);
  const CliRun retried =
      invoke(with_args(kSmallMeasure, {"--max-retries", "3"}));
  EXPECT_EQ(retried.exit_code, 0) << retried.err;
}

TEST(CliResilience, DeadlineFlagFailsHangingUnit) {
  // Wide margins on both sides of the deadline: a healthy unit finishes in
  // well under 100 ms even on a loaded CI box, while the injected hang
  // overshoots by 4x. A tight deadline (5 ms) flaked under parallel test
  // load — slow-but-healthy units blew it too, every run got quarantined,
  // and the campaign aborted with exit 1 instead of reporting partial
  // results.
  const ScopedInjection inject("run:2=hang:400");
  const CliRun run = invoke(
      with_args(kSmallMeasure, {"--run-deadline-ms", "100", "--keep-going"}));
  EXPECT_EQ(run.exit_code, 2) << run.err;
  EXPECT_NE(run.out.find("deadline"), std::string::npos) << run.out;
}

TEST(CliResilience, RejectsNegativeRetries) {
  const CliRun run = invoke(with_args(kSmallMeasure, {"--max-retries", "-1"}));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.err.find("--max-retries"), std::string::npos);
}

std::vector<std::string> small_sweep(std::initializer_list<std::string> extra) {
  std::vector<std::string> args = {
      "sweep", "--pattern", "message_race", "--ranks", "4",
      "--runs", "2",        "--step",       "50",      "--seed", "7"};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(CliResilience, SweepResumeReplaysJournalByteIdentically) {
  const std::string dir = "test_output/cli_resume";
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/sweep.jsonl";

  const CliRun first = invoke(small_sweep({"--journal", journal, "--csv",
                                           dir + "/a.csv", "--json",
                                           dir + "/a.json"}));
  ASSERT_EQ(first.exit_code, 0) << first.err;
  ASSERT_TRUE(std::filesystem::exists(journal));

  const std::uint64_t sims_before = obs::counter("sim.engine.runs").value();
  const CliRun resumed = invoke(small_sweep({"--journal", journal, "--resume",
                                             "--csv", dir + "/b.csv",
                                             "--json", dir + "/b.json"}));
  ASSERT_EQ(resumed.exit_code, 0) << resumed.err;
  EXPECT_NE(resumed.out.find("resume: 3 of 3 points journaled"),
            std::string::npos)
      << resumed.out;
  // Zero redundant simulations: every point replays from the journal.
  EXPECT_EQ(obs::counter("sim.engine.runs").value(), sims_before);

  EXPECT_EQ(read_file(dir + "/b.csv"), read_file(dir + "/a.csv"));
  EXPECT_EQ(read_file(dir + "/b.json"), read_file(dir + "/a.json"));
  ASSERT_FALSE(read_file(dir + "/a.json").empty());
  std::filesystem::remove_all(dir);
}

TEST(CliResilience, SweepResumeRejectsJournalOfDifferentCampaign) {
  const std::string dir = "test_output/cli_resume_mismatch";
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/sweep.jsonl";
  ASSERT_EQ(invoke(small_sweep({"--journal", journal})).exit_code, 0);
  // Same journal, different sweep configuration (other seed).
  const CliRun mismatched = invoke(
      {"sweep", "--pattern", "message_race", "--ranks", "4", "--runs", "2",
       "--step", "50", "--seed", "8", "--journal", journal, "--resume"});
  EXPECT_EQ(mismatched.exit_code, 1);
  EXPECT_NE(mismatched.err.find("different campaign"), std::string::npos)
      << mismatched.err;
  std::filesystem::remove_all(dir);
}

TEST(CliResilience, SweepWithoutResumeDiscardsStaleJournal) {
  const std::string dir = "test_output/cli_fresh_journal";
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/sweep.jsonl";
  ASSERT_EQ(invoke(small_sweep({"--journal", journal})).exit_code, 0);
  // A non-resume sweep with a different config and the same journal path
  // starts fresh instead of tripping the campaign-key check.
  const CliRun fresh = invoke(
      {"sweep", "--pattern", "message_race", "--ranks", "4", "--runs", "2",
       "--step", "50", "--seed", "8", "--journal", journal});
  EXPECT_EQ(fresh.exit_code, 0) << fresh.err;
  std::filesystem::remove_all(dir);
}

TEST(CliResilience, SweepKeepGoingPropagatesPartialExit) {
  const ScopedInjection inject("run:1=permanent");
  const CliRun run =
      invoke(small_sweep({"--keep-going", "--backoff-us", "0"}));
  EXPECT_EQ(run.exit_code, 2) << run.err;
  EXPECT_NE(run.out.find("PARTIAL RESULTS"), std::string::npos) << run.out;
}

TEST(CliResilience, CacheVerifyRepairQuarantinesCorruptObjects) {
  const std::string dir = "test_output/cli_cache_repair";
  ASSERT_EQ(invoke({"--store", dir, "measure", "--pattern", "message_race",
                    "--ranks", "4", "--runs", "3", "--seed", "31337"})
                .exit_code,
            0);
  std::filesystem::create_directories(dir + "/objects/ab");
  {
    std::ofstream bad(dir + "/objects/ab/cdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
                      std::ios::binary);
    bad << "this is not an artifact";
  }
  const CliRun repair =
      invoke({"--store", dir, "cache", "verify", "--repair"});
  EXPECT_EQ(repair.exit_code, 0) << repair.err;
  EXPECT_NE(repair.out.find("quarantined"), std::string::npos) << repair.out;
  EXPECT_TRUE(std::filesystem::exists(
      dir + "/quarantine/abcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd"));

  // After repair the store verifies clean again.
  const CliRun verify = invoke({"--store", dir, "cache", "verify"});
  EXPECT_EQ(verify.exit_code, 0);
  EXPECT_NE(verify.out.find("0 corrupt"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliResilience, UsageDocumentsExitCodes) {
  const CliRun run = invoke({"help"});
  EXPECT_NE(run.out.find("--keep-going"), std::string::npos);
  EXPECT_NE(run.out.find("130 interrupted"), std::string::npos);
}

}  // namespace
}  // namespace anacin::cli

#include "course/quiz.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace anacin::course {
namespace {

TEST(QuizBank, CoversAllSixGoals) {
  std::set<std::string> goals;
  for (const QuizQuestion& question : quiz_bank()) {
    goals.insert(question.goal);
  }
  for (const std::string goal : {"A.1", "A.2", "B.1", "B.2", "C.1", "C.2"}) {
    EXPECT_TRUE(goals.count(goal) > 0) << "no question for goal " << goal;
  }
}

TEST(QuizBank, QuestionsAreWellFormed) {
  std::set<std::string> ids;
  for (const QuizQuestion& question : quiz_bank()) {
    EXPECT_TRUE(ids.insert(question.id).second)
        << "duplicate id " << question.id;
    EXPECT_GE(question.options.size(), 2u) << question.id;
    EXPECT_LT(question.correct_option, question.options.size())
        << question.id;
    EXPECT_FALSE(question.prompt.empty()) << question.id;
    EXPECT_FALSE(question.explanation.empty()) << question.id;
  }
}

TEST(QuizFilter, LevelPrefixSelectsAllGoalsOfLevel) {
  const auto level_b = questions_for("B");
  EXPECT_GE(level_b.size(), 3u);
  for (const QuizQuestion& question : level_b) {
    EXPECT_EQ(question.goal[0], 'B');
  }
  const auto goal_c2 = questions_for("C.2");
  for (const QuizQuestion& question : goal_c2) {
    EXPECT_EQ(question.goal, "C.2");
  }
  EXPECT_GE(goal_c2.size(), 2u);
}

TEST(QuizGrading, PerfectAndPartialScores) {
  std::vector<std::pair<std::string, std::size_t>> perfect;
  for (const QuizQuestion& question : quiz_bank()) {
    perfect.emplace_back(question.id, question.correct_option);
  }
  const QuizGrade all = grade_quiz(perfect);
  EXPECT_EQ(all.correct, all.answered);
  EXPECT_DOUBLE_EQ(all.score(), 1.0);
  EXPECT_TRUE(all.missed_ids.empty());

  // Flip one answer.
  auto flawed = perfect;
  flawed[0].second = (flawed[0].second + 1) % 2;
  const QuizGrade partial = grade_quiz(flawed);
  EXPECT_EQ(partial.correct, partial.answered - 1);
  ASSERT_EQ(partial.missed_ids.size(), 1u);
  EXPECT_EQ(partial.missed_ids[0], flawed[0].first);
}

TEST(QuizGrading, RejectsUnknownIdsAndBadOptions) {
  const std::vector<std::pair<std::string, std::size_t>> unknown{
      {"Z.9-q1", 0}};
  EXPECT_THROW(grade_quiz(unknown), Error);
  const std::vector<std::pair<std::string, std::size_t>> out_of_range{
      {"A.1-q1", 99}};
  EXPECT_THROW(grade_quiz(out_of_range), Error);
}

TEST(QuizGrading, EmptySubmissionScoresZero) {
  const QuizGrade grade = grade_quiz({});
  EXPECT_EQ(grade.answered, 0u);
  EXPECT_DOUBLE_EQ(grade.score(), 0.0);
}

TEST(QuizRender, ShowsOptionsAndOptionalKey) {
  const QuizQuestion& question = quiz_bank().front();
  const std::string hidden = render_question(question, false);
  EXPECT_NE(hidden.find("(a)"), std::string::npos);
  EXPECT_EQ(hidden.find("answer:"), std::string::npos);
  const std::string revealed = render_question(question, true);
  EXPECT_NE(revealed.find("answer:"), std::string::npos);
  EXPECT_NE(revealed.find(question.explanation), std::string::npos);
}

}  // namespace
}  // namespace anacin::course

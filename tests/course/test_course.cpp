#include <gtest/gtest.h>

#include <set>

#include "course/module.hpp"
#include "course/use_cases.hpp"

namespace anacin::course {
namespace {

TEST(CourseTables, ThreeLevelsWithTwoGoalsEach) {
  const auto& levels = course_levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].name, "A. Beginner");
  EXPECT_EQ(levels[1].name, "B. Intermediate");
  EXPECT_EQ(levels[2].name, "C. Advanced");
  for (const auto& level : levels) {
    EXPECT_EQ(level.goals.size(), 2u);
    EXPECT_EQ(level.prerequisites.size(), 2u);
  }
  EXPECT_EQ(levels[0].goals[0].id, "A.1");
  EXPECT_EQ(levels[2].goals[1].id, "C.2");
}

TEST(CourseTables, RenderedTablesMentionKeyConcepts) {
  const std::string objectives = render_learning_objectives();
  EXPECT_NE(objectives.find("Table I"), std::string::npos);
  EXPECT_NE(objectives.find("message passing paradigm"), std::string::npos);
  EXPECT_NE(objectives.find("root sources"), std::string::npos);

  const std::string prerequisites = render_prerequisites();
  EXPECT_NE(prerequisites.find("Table II"), std::string::npos);
  EXPECT_NE(prerequisites.find("violin plots"), std::string::npos);
  EXPECT_NE(prerequisites.find("point-to-point"), std::string::npos);
}

TEST(CourseTables, ScheduleCoversAllThreeUseCases) {
  const std::string schedule = render_tutorial_schedule();
  EXPECT_NE(schedule.find("use_case_beginner"), std::string::npos);
  EXPECT_NE(schedule.find("use_case_intermediate"), std::string::npos);
  EXPECT_NE(schedule.find("use_case_advanced"), std::string::npos);
  EXPECT_NE(schedule.find("quiz"), std::string::npos);
}

TEST(CourseAssignments, OnePerGoalWithRunnableCommands) {
  const auto& list = assignments();
  ASSERT_EQ(list.size(), 6u);
  std::set<std::string> goals;
  for (const Assignment& assignment : list) {
    goals.insert(assignment.goal);
    EXPECT_FALSE(assignment.text.empty());
    EXPECT_EQ(assignment.command.rfind("anacin ", 0), 0u)
        << assignment.command;
  }
  EXPECT_EQ(goals.size(), 6u);
  const std::string rendered = render_assignments();
  EXPECT_NE(rendered.find("[C.2]"), std::string::npos);
  EXPECT_NE(rendered.find("probe_race"), std::string::npos);
}

TEST(UseCase1, BeginnerFiguresHaveTheRightShape) {
  const UseCase1Result result = run_use_case_1();
  // Fig 2: message race on 4 ranks, 3 messages into rank 0.
  EXPECT_EQ(result.message_race.num_ranks(), 4);
  EXPECT_EQ(result.message_race.message_edges().size(), 3u);
  // Fig 3: AMG on 2 ranks: 2 phases x 1 peer each way = 4 messages.
  EXPECT_EQ(result.amg_two_ranks.num_ranks(), 2);
  EXPECT_EQ(result.amg_two_ranks.message_edges().size(), 4u);
  // Fig 4: both runs exist and use 100% ND.
  EXPECT_EQ(result.race_run_a.num_ranks(), 4);
  EXPECT_EQ(result.race_run_b.num_ranks(), 4);
}

TEST(UseCase1, GoalA2TwoRunsDiffer) {
  // Seeds 21/22 might happen to agree; the lesson runner must find a
  // differing pair for its default configuration, which is part of the
  // course contract — assert it holds.
  const UseCase1Result result = run_use_case_1(21, 22);
  const UseCase1Result retry = run_use_case_1(5, 1005);
  EXPECT_TRUE(result.runs_differ || retry.runs_differ);
}

TEST(UseCase2, ScaledDownLessonStillShowsBothEffects) {
  ThreadPool pool(2);
  // Scaled down from the paper's 32/16 ranks x 20 runs to keep the test
  // fast; the direction of both effects must be preserved.
  const UseCase2Result result = run_use_case_2(pool, 16, 8, 10);
  EXPECT_TRUE(result.procs_effect_observed)
      << "many=" << result.many_procs.median
      << " few=" << result.few_procs.median;
  EXPECT_TRUE(result.iterations_effect_observed)
      << "two=" << result.two_iterations.median
      << " one=" << result.one_iteration.median;
  EXPECT_EQ(result.many_procs.count, 10u);
  EXPECT_LT(result.procs_p_value, 0.05);
}

TEST(UseCase3, ScaledDownSweepIsMonotoneAndAttributed) {
  ThreadPool pool(2);
  const UseCase3Result result = run_use_case_3(pool, 12, 10, 25);
  ASSERT_EQ(result.nd_percents.size(), 5u);  // 0,25,50,75,100
  EXPECT_DOUBLE_EQ(result.distance_by_percent.front().median, 0.0);
  EXPECT_GT(result.distance_by_percent.back().median, 0.0);
  EXPECT_TRUE(result.monotone_observed)
      << "spearman=" << result.spearman_vs_percent;
  ASSERT_FALSE(result.root_causes.callstacks.empty());
  EXPECT_TRUE(result.wildcard_recv_attributed)
      << "top=" << result.root_causes.callstacks.front().path;
}

}  // namespace
}  // namespace anacin::course

#include "patterns/pattern.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/event_graph.hpp"
#include "support/error.hpp"

namespace anacin::patterns {
namespace {

sim::RunResult run_pattern(const std::string& name, int ranks, double nd,
                           std::uint64_t seed, int iterations = 1) {
  PatternConfig shape;
  shape.num_ranks = ranks;
  shape.iterations = iterations;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  return sim::run_simulation(config, make_pattern(name)->program(shape));
}

TEST(PatternRegistry, AllNamesConstruct) {
  for (const std::string& name : pattern_names()) {
    const auto pattern = make_pattern(name);
    EXPECT_EQ(pattern->name(), name);
    EXPECT_FALSE(pattern->description().empty());
  }
  EXPECT_THROW(make_pattern("bogus"), ConfigError);
}

TEST(PatternConfigValidation, RejectsBadShapes) {
  PatternConfig shape;
  shape.num_ranks = 0;
  EXPECT_THROW(shape.validate(), Error);
  shape.num_ranks = 4;
  shape.iterations = 0;
  EXPECT_THROW(shape.validate(), Error);
}

class AllPatternsRun : public ::testing::TestWithParam<
                           std::tuple<std::string, int, int>> {};

TEST_P(AllPatternsRun, CompletesAndTraces) {
  const auto& [name, ranks, iterations] = GetParam();
  const sim::RunResult result = run_pattern(name, ranks, 1.0, 3, iterations);
  EXPECT_EQ(result.trace.num_ranks(), ranks);
  // init + finalize at minimum on every rank.
  for (int r = 0; r < ranks; ++r) {
    EXPECT_GE(result.trace.rank_events(r).size(), 2u);
  }
  const auto graph = graph::EventGraph::from_trace(result.trace);
  EXPECT_TRUE(graph.digraph().is_dag());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllPatternsRun,
    ::testing::Combine(::testing::Values("message_race", "amg2013",
                                         "unstructured_mesh", "ping_pong",
                                         "reduce_tree"),
                       ::testing::Values(2, 4, 9), ::testing::Values(1, 3)));

TEST(MessageRace, MessageCountMatchesShape) {
  const sim::RunResult result = run_pattern("message_race", 6, 1.0, 1, 4);
  EXPECT_EQ(result.stats.messages, 5u * 4u);
  EXPECT_EQ(result.stats.wildcard_recvs, 5u * 4u);
}

TEST(Amg2013, TwoPhasesPerIteration) {
  const sim::RunResult result = run_pattern("amg2013", 4, 1.0, 1, 2);
  // 2 iterations x 2 phases x 4 ranks x 3 peers.
  EXPECT_EQ(result.stats.messages, 2u * 2u * 4u * 3u);
}

TEST(Amg2013, CallstacksNamePhases) {
  const sim::RunResult result = run_pattern("amg2013", 3, 0.0, 1);
  bool saw_relax = false;
  bool saw_restrict = false;
  for (const auto& path : result.trace.callstacks().paths()) {
    if (path.find("relax_phase") != std::string::npos) saw_relax = true;
    if (path.find("restrict_phase") != std::string::npos) saw_restrict = true;
  }
  EXPECT_TRUE(saw_relax);
  EXPECT_TRUE(saw_restrict);
}

TEST(UnstructuredMesh, TopologyIsSeedStableAcrossExecutionSeeds) {
  // Message counts depend only on topology; with the same topology seed and
  // different execution seeds they must agree.
  const sim::RunResult a = run_pattern("unstructured_mesh", 10, 1.0, 1);
  const sim::RunResult b = run_pattern("unstructured_mesh", 10, 1.0, 99);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_GT(a.stats.messages, 0u);
}

TEST(UnstructuredMesh, TopologySeedChangesTheMesh) {
  PatternConfig shape_a;
  shape_a.num_ranks = 12;
  PatternConfig shape_b = shape_a;
  shape_b.topology_seed = 12345;
  sim::SimConfig config;
  config.num_ranks = 12;
  config.network.nd_fraction = 0.0;
  const auto runs_a = sim::run_simulation(
      config, make_pattern("unstructured_mesh")->program(shape_a));
  const auto runs_b = sim::run_simulation(
      config, make_pattern("unstructured_mesh")->program(shape_b));
  EXPECT_NE(runs_a.stats.messages, runs_b.stats.messages);
}

TEST(UnstructuredMesh, MeshIsSymmetricViaCompletion) {
  // If the topology were asymmetric, some rank would wait for a message
  // that never comes and the run would deadlock. Completion for several
  // shapes is the regression check.
  for (const int ranks : {2, 3, 5, 16}) {
    EXPECT_NO_THROW(run_pattern("unstructured_mesh", ranks, 1.0, 5))
        << ranks << " ranks";
  }
}

TEST(PingPong, StructurallyDeterministicUnderJitter) {
  // Virtual timestamps vary with jitter, but the *structure* — event
  // types, order, and matching — must be identical for a wildcard-free
  // pattern.
  const auto fingerprint = [](const trace::Trace& trace) {
    std::string fp;
    for (int r = 0; r < trace.num_ranks(); ++r) {
      for (const auto& e : trace.rank_events(r)) {
        fp += std::to_string(static_cast<int>(e.type)) + ":" +
              std::to_string(e.peer) + ":" + std::to_string(e.matched_rank) +
              ":" + std::to_string(e.matched_seq) + ";";
      }
      fp += "|";
    }
    return fp;
  };
  const sim::RunResult a = run_pattern("ping_pong", 6, 1.0, 1, 3);
  const sim::RunResult b = run_pattern("ping_pong", 6, 1.0, 999, 3);
  EXPECT_EQ(fingerprint(a.trace), fingerprint(b.trace));
  EXPECT_EQ(a.stats.wildcard_recvs, 0u);
}

TEST(PingPong, OddRankCountLeavesLastRankOut) {
  const sim::RunResult result = run_pattern("ping_pong", 5, 0.0, 1);
  EXPECT_EQ(result.trace.rank_events(4).size(), 2u);  // init + finalize only
}

TEST(ReduceTree, WildcardAccumulationRaces) {
  const sim::RunResult result = run_pattern("reduce_tree", 6, 1.0, 1);
  EXPECT_GT(result.stats.wildcard_recvs, 0u);
}

TEST(ReduceTree, MatchOrdersVaryAcrossSeeds) {
  std::set<std::string> signatures;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::RunResult result = run_pattern("reduce_tree", 8, 1.0, seed);
    std::string signature;
    for (const auto& event : result.trace.rank_events(0)) {
      if (event.type == trace::EventType::kRecv &&
          event.posted_source == sim::kAnySource) {
        signature += static_cast<char>('0' + event.peer);
      }
    }
    signatures.insert(signature);
  }
  EXPECT_GT(signatures.size(), 1u);
}

TEST(Patterns, SingleRankDegenerateShapes) {
  for (const std::string& name : pattern_names()) {
    EXPECT_NO_THROW(run_pattern(name, 1, 1.0, 1)) << name;
  }
}

TEST(Patterns, MessageBytesFlowIntoEvents) {
  PatternConfig shape;
  shape.num_ranks = 3;
  shape.message_bytes = 2048;
  sim::SimConfig config;
  config.num_ranks = 3;
  const auto result = sim::run_simulation(
      config, make_pattern("message_race")->program(shape));
  bool saw_send = false;
  for (const auto& event : result.trace.rank_events(1)) {
    if (event.type == trace::EventType::kSend) {
      EXPECT_EQ(event.size_bytes, 2048u);
      saw_send = true;
    }
  }
  EXPECT_TRUE(saw_send);
}

TEST(PatternConfig, JsonRoundTripIsLossless) {
  // The --isolate=process worker protocol ships the shape as JSON; the
  // decoded config must hash to the same artifact-store keys.
  PatternConfig config;
  config.num_ranks = 9;
  config.iterations = 5;
  config.message_bytes = 4096;
  config.topology_seed = 1234567;
  config.mesh_extra_degree = 4;
  config.compute_us = 12.5;
  const PatternConfig decoded = PatternConfig::from_json(config.to_json());
  EXPECT_EQ(decoded.to_json().dump(), config.to_json().dump());
  EXPECT_EQ(decoded.num_ranks, 9);
  EXPECT_EQ(decoded.message_bytes, 4096u);
  EXPECT_EQ(decoded.topology_seed, 1234567u);
}

}  // namespace
}  // namespace anacin::patterns

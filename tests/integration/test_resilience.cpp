// End-to-end crash/resume: SIGKILL a real `anacin sweep` child process
// mid-campaign, then --resume and require byte-identical outputs with no
// redundant simulation work. Exercises the journal + artifact store + CLI
// stack the way an operator would hit it.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"

#ifndef ANACIN_CLI_PATH
#error "ANACIN_CLI_PATH must point at the anacin executable"
#endif

namespace anacin {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Run a shell command; returns the exit code, mapping death-by-signal to
/// the shell convention 128+signo (SIGKILL => 137).
int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

double counter_value(const json::Value& metrics, const std::string& name) {
  const json::Value* found = metrics.at("counters").find(name);
  return found == nullptr ? 0.0 : found->as_number();
}

class ResilienceE2e : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_resilience_e2e_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ::unsetenv("ANACIN_CRASH_AFTER_POINTS");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// A 3-point sweep (ND 0/50/100) small enough to finish in well under a
  /// second per point.
  std::string sweep_command(const std::string& store,
                            const std::string& journal,
                            const std::string& tag,
                            const std::string& extra) const {
    const fs::path bin(ANACIN_CLI_PATH);
    std::ostringstream os;
    os << '"' << bin.string() << '"' << " --store " << (dir_ / store).string()
       << " --metrics-out " << (dir_ / (tag + "-metrics.json")).string()
       << " sweep --pattern message_race --ranks 4 --runs 2 --step 50"
       << " --seed 7 --journal " << (dir_ / journal).string() << " --csv "
       << (dir_ / (tag + ".csv")).string() << " --json "
       << (dir_ / (tag + ".json")).string() << ' ' << extra << " > "
       << (dir_ / (tag + ".out")).string() << " 2>&1";
    return os.str();
  }

  json::Value metrics(const std::string& tag) const {
    return json::parse(slurp(dir_ / (tag + "-metrics.json")));
  }

  fs::path dir_;
};

TEST_F(ResilienceE2e, SigkilledSweepResumesByteIdentically) {
  // Baseline: uninterrupted sweep.
  ASSERT_EQ(run_command(sweep_command("store-a", "a.jsonl", "base", "")), 0)
      << slurp(dir_ / "base.out");
  const std::string base_csv = slurp(dir_ / "base.csv");
  const std::string base_json = slurp(dir_ / "base.json");
  ASSERT_FALSE(base_csv.empty());
  ASSERT_FALSE(base_json.empty());

  // Crash run: the process SIGKILLs itself right after journaling the
  // first point — exactly what a node failure mid-sweep looks like.
  ::setenv("ANACIN_CRASH_AFTER_POINTS", "1", 1);
  EXPECT_EQ(run_command(sweep_command("store-b", "b.jsonl", "crash", "")),
            128 + SIGKILL);
  ::unsetenv("ANACIN_CRASH_AFTER_POINTS");
  ASSERT_TRUE(fs::exists(dir_ / "b.jsonl")) << "crash before any journaling";

  // Resume: replays the journaled point, computes the rest.
  ASSERT_EQ(run_command(
                sweep_command("store-b", "b.jsonl", "resumed", "--resume")),
            0)
      << slurp(dir_ / "resumed.out");
  EXPECT_NE(slurp(dir_ / "resumed.out").find("resume: 1 of 3"),
            std::string::npos);

  // Byte-identical outputs despite the kill.
  EXPECT_EQ(slurp(dir_ / "resumed.csv"), base_csv);
  EXPECT_EQ(slurp(dir_ / "resumed.json"), base_json);

  // Zero redundant work for the journaled point: the resumed process
  // replayed it without a single simulation, so it ran strictly fewer
  // simulations than the uninterrupted baseline.
  const json::Value base_metrics = metrics("base");
  const json::Value resumed_metrics = metrics("resumed");
  EXPECT_EQ(counter_value(resumed_metrics, "resilience.points_replayed"), 1.0);
  EXPECT_EQ(counter_value(resumed_metrics,
                          "resilience.journal_units_loaded"),
            1.0);
  EXPECT_LT(counter_value(resumed_metrics, "sim.engine.runs"),
            counter_value(base_metrics, "sim.engine.runs"));
}

TEST_F(ResilienceE2e, TruncatedJournalResumesFromLastIntactRecord) {
  ASSERT_EQ(run_command(sweep_command("store-a", "a.jsonl", "base", "")), 0)
      << slurp(dir_ / "base.out");

  // Journal truncation fixture: cut the final record in half, as if the
  // machine died mid-append on a filesystem without atomic rename.
  std::string journal = slurp(dir_ / "a.jsonl");
  ASSERT_FALSE(journal.empty());
  const std::size_t last_line = journal.rfind('\n', journal.size() - 2) + 1;
  const std::size_t cut = last_line + (journal.size() - last_line) / 2;
  {
    std::ofstream out(dir_ / "a.jsonl", std::ios::binary | std::ios::trunc);
    out << journal.substr(0, cut);
  }

  ASSERT_EQ(run_command(
                sweep_command("store-a", "a.jsonl", "salvaged", "--resume")),
            0)
      << slurp(dir_ / "salvaged.out");
  EXPECT_NE(slurp(dir_ / "salvaged.out").find("resume: 2 of 3"),
            std::string::npos)
      << slurp(dir_ / "salvaged.out");

  EXPECT_EQ(slurp(dir_ / "salvaged.csv"), slurp(dir_ / "base.csv"));
  EXPECT_EQ(slurp(dir_ / "salvaged.json"), slurp(dir_ / "base.json"));

  // The dropped point re-runs against a warm store: no simulations at all.
  EXPECT_EQ(counter_value(metrics("salvaged"), "sim.engine.runs"), 0.0);
}

TEST_F(ResilienceE2e, SigtermDrainsJournalsAndExits143) {
  // Baseline for byte-comparison (and to warm the store).
  ASSERT_EQ(run_command(sweep_command("store-t", "tb.jsonl", "tbase", "")), 0)
      << slurp(dir_ / "tbase.out");

  // An injected 4 s hang on run:1 keeps the first point busy long enough
  // for `timeout` to deliver SIGTERM at the 1 s mark. The process must
  // drain in-flight work, journal, and exit 143 — the same graceful path
  // as SIGINT, just with the distinct "terminated" exit code.
  ::setenv("ANACIN_INJECT_FAILURES", "run:1=hang:4000", 1);
  EXPECT_EQ(run_command("timeout --preserve-status -s TERM 1 " +
                        sweep_command("store-t", "t.jsonl", "term", "")),
            143);
  ::unsetenv("ANACIN_INJECT_FAILURES");
  EXPECT_NE(slurp(dir_ / "term.out").find("rerun with --resume"),
            std::string::npos)
      << slurp(dir_ / "term.out");

  // The journal left behind is immediately resumable, and the resumed
  // sweep is byte-identical to the uninterrupted baseline.
  ASSERT_EQ(
      run_command(sweep_command("store-t", "t.jsonl", "term2", "--resume")),
      0)
      << slurp(dir_ / "term2.out");
  EXPECT_EQ(slurp(dir_ / "term2.csv"), slurp(dir_ / "tbase.csv"));
  EXPECT_EQ(slurp(dir_ / "term2.json"), slurp(dir_ / "tbase.json"));
}

TEST_F(ResilienceE2e, ChildExitCodesMatchTaxonomy) {
  const std::string bin = '"' + fs::path(ANACIN_CLI_PATH).string() + '"';
  const std::string store = " --store " + (dir_ / "store-x").string();
  // Unknown command: 64 (EX_USAGE), reserved so 2 still means "partial".
  EXPECT_EQ(run_command(bin + " frobnicate > /dev/null 2>&1"), 64);
  // Keep-going quarantine: 2.
  ::setenv("ANACIN_INJECT_FAILURES", "run:1=permanent", 1);
  EXPECT_EQ(run_command(bin + store +
                        " measure --pattern message_race --ranks 4 "
                        "--runs 3 --keep-going --backoff-us 0 "
                        "> /dev/null 2>&1"),
            2);
  // Fail-fast: 1.
  EXPECT_EQ(run_command(bin + store +
                        " measure --pattern message_race --ranks 4 "
                        "--runs 3 --backoff-us 0 > /dev/null 2>&1"),
            1);
  ::unsetenv("ANACIN_INJECT_FAILURES");
}

}  // namespace
}  // namespace anacin

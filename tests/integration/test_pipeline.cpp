#include <gtest/gtest.h>

#include "core/anacin.hpp"

namespace anacin {
namespace {

/// End-to-end checks that the full pipeline reproduces the paper's
/// qualitative findings at laptop scale.

core::CampaignConfig campaign(const std::string& pattern, int ranks,
                              double nd, int runs, int iterations = 1) {
  core::CampaignConfig config;
  config.pattern = pattern;
  config.shape.num_ranks = ranks;
  config.shape.iterations = iterations;
  config.nd_fraction = nd;
  config.num_runs = runs;
  return config;
}

TEST(PipelineFig5, MoreProcessesMoreNonDeterminism) {
  ThreadPool pool(2);
  const auto big =
      core::run_campaign(campaign("unstructured_mesh", 16, 1.0, 12), pool);
  const auto small =
      core::run_campaign(campaign("unstructured_mesh", 8, 1.0, 12), pool);
  EXPECT_GT(big.distance_summary.median, small.distance_summary.median);
  const double p = analysis::mann_whitney_u(big.measurement.distances,
                                            small.measurement.distances)
                       .p_value;
  EXPECT_LT(p, 0.01);
}

TEST(PipelineFig6, MoreIterationsMoreNonDeterminism) {
  ThreadPool pool(2);
  const auto two = core::run_campaign(
      campaign("unstructured_mesh", 8, 1.0, 12, 2), pool);
  const auto one = core::run_campaign(
      campaign("unstructured_mesh", 8, 1.0, 12, 1), pool);
  EXPECT_GT(two.distance_summary.median, one.distance_summary.median);
}

TEST(PipelineFig7, DistanceGrowsWithNdPercent) {
  ThreadPool pool(2);
  std::vector<double> percents;
  std::vector<double> medians;
  for (const double percent : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    const auto result = core::run_campaign(
        campaign("amg2013", 8, percent / 100.0, 10), pool);
    percents.push_back(percent);
    medians.push_back(result.distance_summary.median);
  }
  EXPECT_DOUBLE_EQ(medians.front(), 0.0);
  EXPECT_GT(medians.back(), 0.0);
  EXPECT_GT(analysis::spearman(percents, medians), 0.8);
}

TEST(PipelineFig8, WildcardRecvCallsiteDominatesHotSlices) {
  ThreadPool pool(2);
  const auto result =
      core::run_campaign(campaign("amg2013", 8, 1.0, 8), pool);
  const auto kernel = kernels::make_kernel("wl:2");
  const auto report =
      analysis::find_root_causes(*kernel, kernels::LabelPolicy::kTypePeer,
                                 result.graphs, {}, pool);
  ASSERT_FALSE(report.callstacks.empty());
  const auto& top = report.callstacks.front();
  EXPECT_NE(top.path.find("amg2013"), std::string::npos);
  EXPECT_NE(top.path.find("MPI_Irecv"), std::string::npos);
  EXPECT_GT(top.wildcard_share, 0.9);
}

TEST(PipelineControl, DeterministicPatternMeasuresZero) {
  ThreadPool pool(2);
  const auto result =
      core::run_campaign(campaign("ping_pong", 8, 1.0, 8), pool);
  EXPECT_DOUBLE_EQ(result.distance_summary.max, 0.0);
}

TEST(PipelineReplay, ReplaySuppressesMeasuredNd) {
  ThreadPool pool(2);
  // Record one noisy run of the mesh and replay it under several different
  // noise seeds: all replayed graphs must coincide with the recording.
  patterns::PatternConfig shape;
  shape.num_ranks = 8;
  const sim::RankProgram program =
      patterns::make_pattern("unstructured_mesh")->program(shape);

  sim::SimConfig record_config;
  record_config.num_ranks = 8;
  record_config.seed = 5;
  record_config.network.nd_fraction = 1.0;
  const sim::RunResult recorded =
      sim::run_simulation(record_config, program);
  const sim::ReplaySchedule schedule =
      replay::record_schedule(recorded.trace);

  const auto reference = graph::EventGraph::from_trace(recorded.trace);
  std::vector<graph::EventGraph> replayed;
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    sim::SimConfig config = record_config;
    config.seed = seed;
    config.replay = &schedule;
    replayed.push_back(graph::EventGraph::from_trace(
        sim::run_simulation(config, program).trace));
  }
  const auto kernel = kernels::make_kernel("wl:2");
  const auto measurement = analysis::measure_nd(
      *kernel, kernels::LabelPolicy::kTypePeer, replayed, &reference,
      analysis::DistanceReduction::kToReference, pool);
  for (const double d : measurement.distances) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(PipelineMultiNode, CrossNodeJitterIncreasesNd) {
  ThreadPool pool(2);
  auto on_nodes = [&](int nodes) {
    core::CampaignConfig config = campaign("amg2013", 8, 0.3, 12);
    config.num_nodes = nodes;
    return core::run_campaign(config, pool).distance_summary.median;
  };
  // Inter-node links have larger jitter, so splitting ranks across nodes
  // should not reduce the measured non-determinism (paper: run across
  // multiple compute nodes to increase the likelihood of ND).
  EXPECT_GE(on_nodes(4), on_nodes(1) * 0.8);
}

TEST(PipelineSerialization, TraceGraphsSurviveJsonRoundTrip) {
  ThreadPool pool(1);
  patterns::PatternConfig shape;
  shape.num_ranks = 6;
  sim::SimConfig config;
  config.num_ranks = 6;
  config.network.nd_fraction = 1.0;
  const sim::RunResult run =
      core::run_pattern_once("amg2013", shape, config);
  const trace::Trace copy = trace::Trace::from_json(run.trace.to_json());

  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(graph::EventGraph::from_trace(run.trace),
                                   kernels::LabelPolicy::kTypePeerCallstack),
      kernels::build_labeled_graph(graph::EventGraph::from_trace(copy),
                                   kernels::LabelPolicy::kTypePeerCallstack));
  EXPECT_DOUBLE_EQ(distance, 0.0);
}

}  // namespace
}  // namespace anacin

#include <gtest/gtest.h>

#include "core/anacin.hpp"
#include "realtime/realtime.hpp"

namespace anacin {
namespace {

/// The two execution backends (deterministic simulator, native threads)
/// record the same trace schema, so their event graphs live in the same
/// kernel feature space. For a program with no wildcard receives the
/// *structure* is fully determined by the code — the two backends must
/// agree exactly, i.e. kernel distance 0 between a simulated run and a
/// real-threads run of the same program.

TEST(CrossBackend, DeterministicProgramsAgreeAcrossBackends) {
  constexpr int kRanks = 4;
  const auto logic = [](auto& comm) {
    const int n = comm.size();
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() + n - 1) % n;
    for (int lap = 0; lap < 3; ++lap) {
      // Explicit sources only: no races anywhere.
      if (comm.rank() % 2 == 0) {
        comm.send(next, 1);
        (void)comm.recv(prev, 1);
      } else {
        (void)comm.recv(prev, 1);
        comm.send(next, 1);
      }
    }
  };

  sim::SimConfig sim_config;
  sim_config.num_ranks = kRanks;
  sim_config.network.nd_fraction = 1.0;  // jitter cannot matter here
  const trace::Trace sim_trace =
      sim::run_simulation(sim_config, [&](sim::Comm& comm) { logic(comm); })
          .trace;

  realtime::RtConfig rt_config;
  rt_config.num_ranks = kRanks;
  const trace::Trace rt_trace = realtime::run_threads(
      rt_config, [&](realtime::Comm& comm) { logic(comm); });

  const auto kernel = kernels::make_kernel("wl:3");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(graph::EventGraph::from_trace(sim_trace),
                                   kernels::LabelPolicy::kTypePeerTag),
      kernels::build_labeled_graph(graph::EventGraph::from_trace(rt_trace),
                                   kernels::LabelPolicy::kTypePeerTag));
  EXPECT_DOUBLE_EQ(distance, 0.0);
}

TEST(CrossBackend, CallstackPolicyAlsoAgrees) {
  constexpr int kRanks = 3;
  const auto logic = [](auto& comm) {
    const auto frame = comm.scoped_frame("exchange");
    if (comm.rank() == 0) {
      for (int src = 1; src < comm.size(); ++src) (void)comm.recv(src, 0);
    } else {
      comm.send(0, 0);
    }
  };
  sim::SimConfig sim_config;
  sim_config.num_ranks = kRanks;
  const trace::Trace sim_trace =
      sim::run_simulation(sim_config, [&](sim::Comm& comm) { logic(comm); })
          .trace;
  realtime::RtConfig rt_config;
  rt_config.num_ranks = kRanks;
  const trace::Trace rt_trace = realtime::run_threads(
      rt_config, [&](realtime::Comm& comm) { logic(comm); });

  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(
          graph::EventGraph::from_trace(sim_trace),
          kernels::LabelPolicy::kTypePeerCallstack),
      kernels::build_labeled_graph(
          graph::EventGraph::from_trace(rt_trace),
          kernels::LabelPolicy::kTypePeerCallstack));
  EXPECT_DOUBLE_EQ(distance, 0.0);
}

}  // namespace
}  // namespace anacin

// End-to-end durability: drive the real `anacin` binary through injected
// disk faults. The centerpiece is the crash-consistency explorer — count
// the durable commits of a reference sweep, then SIGKILL a fresh sweep
// after every single one of them and require that --resume converges to
// byte-identical outputs. Plus graceful degradation under a full disk and
// the fsync-discipline flag.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"

#ifndef ANACIN_CLI_PATH
#error "ANACIN_CLI_PATH must point at the anacin executable"
#endif

namespace anacin {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Run a shell command; returns the exit code, mapping death-by-signal to
/// the shell convention 128+signo (SIGKILL => 137).
int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

double counter_value(const json::Value& metrics, const std::string& name) {
  const json::Value* found = metrics.at("counters").find(name);
  return found == nullptr ? 0.0 : found->as_number();
}

class DurabilityE2e : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anacin_durability_e2e_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ::unsetenv("ANACIN_FAIL_WRITE_AFTER");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// A deliberately small sweep (2 ND points, 1 run each) so the explorer
  /// can afford to crash it once per durable commit. `globals` are CLI
  /// flags before the subcommand (--store, --io-chaos, --durability, ...).
  std::string sweep_command(const fs::path& workdir,
                            const std::string& globals,
                            const std::string& tag,
                            const std::string& extra) const {
    const fs::path bin(ANACIN_CLI_PATH);
    std::ostringstream os;
    os << '"' << bin.string() << '"' << ' ' << globals
       << " sweep --pattern message_race --ranks 4 --runs 1 --step 100"
       << " --seed 7 --journal " << (workdir / "sweep.jsonl").string()
       << " --csv " << (workdir / "out.csv").string() << " --json "
       << (workdir / "out.json").string() << ' ' << extra << " > "
       << (workdir / (tag + ".out")).string() << " 2>&1";
    return os.str();
  }

  json::Value metrics(const fs::path& path) const {
    return json::parse(slurp(path));
  }

  fs::path dir_;
};

TEST_F(DurabilityE2e, CrashExplorerResumesByteIdenticallyAtEveryCrashPoint) {
  // Reference run: count the durable commits. The metrics snapshot is
  // taken before the metrics file itself is written, so crash runs (which
  // omit --metrics-out) perform exactly `ops` durable commits.
  const fs::path base = dir_ / "base";
  fs::create_directories(base);
  ASSERT_EQ(run_command(sweep_command(
                base,
                "--store " + (base / "store").string() + " --metrics-out " +
                    (base / "metrics.json").string(),
                "base", "")),
            0)
      << slurp(base / "base.out");
  const int ops = static_cast<int>(
      counter_value(metrics(base / "metrics.json"), "io.durable_ops"));
  ASSERT_GE(ops, 5) << "sweep too small to exercise the explorer";
  const std::string base_csv = slurp(base / "out.csv");
  const std::string base_json = slurp(base / "out.json");
  ASSERT_FALSE(base_csv.empty());
  ASSERT_FALSE(base_json.empty());

  // For every durable commit k: SIGKILL a fresh sweep right after it, then
  // --resume and require convergence. No crash point may leave state that
  // resumption cannot repair.
  for (int k = 1; k <= ops; ++k) {
    const fs::path crash = dir_ / ("crash-" + std::to_string(k));
    fs::create_directories(crash);
    const std::string store_flag = "--store " + (crash / "store").string();
    EXPECT_EQ(run_command(sweep_command(
                  crash,
                  store_flag + " --io-chaos crash_after=" + std::to_string(k),
                  "crash", "")),
              128 + SIGKILL)
        << "crash point " << k << ": " << slurp(crash / "crash.out");
    ASSERT_EQ(
        run_command(sweep_command(crash, store_flag, "resume", "--resume")),
        0)
        << "crash point " << k << ": " << slurp(crash / "resume.out");
    EXPECT_EQ(slurp(crash / "out.csv"), base_csv) << "crash point " << k;
    EXPECT_EQ(slurp(crash / "out.json"), base_json) << "crash point " << k;
    fs::remove_all(crash);  // keep the temp footprint bounded
  }
}

TEST_F(DurabilityE2e, EnospcOnStoreDegradesInsteadOfFailing) {
  const fs::path clean = dir_ / "clean";
  const fs::path full = dir_ / "full";
  fs::create_directories(clean);
  fs::create_directories(full);
  ASSERT_EQ(run_command(sweep_command(
                clean, "--store " + (clean / "store").string(), "clean", "")),
            0)
      << slurp(clean / "clean.out");

  // Persistent ENOSPC on every store publish: the campaign must complete
  // with --no-store semantics, warn once, and record the degradation.
  ASSERT_EQ(run_command(sweep_command(
                full,
                "--store " + (full / "store").string() +
                    " --io-chaos enospc=1.0,scope=store --metrics-out " +
                    (full / "metrics.json").string(),
                "full", "")),
            0)
      << slurp(full / "full.out");
  EXPECT_NE(slurp(full / "full.out").find("artifact store degraded"),
            std::string::npos)
      << slurp(full / "full.out");
  EXPECT_EQ(counter_value(metrics(full / "metrics.json"), "store.degraded"),
            1.0);
  EXPECT_NE(slurp(full / "out.json").find("\"store_degraded\": true"),
            std::string::npos);

  // The numbers are identical to the healthy run — only caching was lost.
  EXPECT_EQ(slurp(full / "out.csv"), slurp(clean / "out.csv"));
}

TEST_F(DurabilityE2e, JournalWriteFailureStaysFailFast) {
  const fs::path work = dir_ / "journal";
  fs::create_directories(work);
  // A journal that cannot commit must abort loudly: a sweep that silently
  // loses its resume log would masquerade as durable.
  EXPECT_EQ(run_command(sweep_command(
                work,
                "--store " + (work / "store").string() +
                    " --io-chaos enospc=1.0,scope=journal",
                "journal", "")),
            1);
  EXPECT_NE(slurp(work / "journal.out").find("injected ENOSPC"),
            std::string::npos)
      << slurp(work / "journal.out");
}

TEST_F(DurabilityE2e, CommitDurabilityChangesBytesOnDiskNotResults) {
  const fs::path none = dir_ / "none";
  const fs::path commit = dir_ / "commit";
  fs::create_directories(none);
  fs::create_directories(commit);
  ASSERT_EQ(run_command(sweep_command(
                none, "--store " + (none / "store").string(), "none", "")),
            0)
      << slurp(none / "none.out");
  ASSERT_EQ(run_command(sweep_command(
                commit,
                "--store " + (commit / "store").string() +
                    " --durability commit --metrics-out " +
                    (commit / "metrics.json").string(),
                "commit", "")),
            0)
      << slurp(commit / "commit.out");
  EXPECT_EQ(slurp(commit / "out.csv"), slurp(none / "out.csv"));
  EXPECT_EQ(slurp(commit / "out.json"), slurp(none / "out.json"));
  EXPECT_GT(counter_value(metrics(commit / "metrics.json"),
                          "io.durable_ops"),
            0.0);
}

TEST_F(DurabilityE2e, FailWriteAfterAliasStillInjectsAndParsesStrictly) {
  const fs::path work = dir_ / "compat";
  fs::create_directories(work);
  const std::string store_flag = "--store " + (work / "store").string();

  // The historical hook still works, now riding on the chaos engine: the
  // very first atomic file write (the journal header) fails as ENOSPC.
  ::setenv("ANACIN_FAIL_WRITE_AFTER", "0", 1);
  EXPECT_EQ(run_command(sweep_command(work, store_flag, "compat", "")), 1);
  EXPECT_NE(slurp(work / "compat.out").find("ENOSPC"), std::string::npos)
      << slurp(work / "compat.out");

  // Strict parsing: garbage refuses to run instead of silently meaning
  // "never fail" (the old std::strtoll behavior).
  ::setenv("ANACIN_FAIL_WRITE_AFTER", "12abc", 1);
  EXPECT_EQ(run_command(sweep_command(work, store_flag, "strict", "")), 1);
  EXPECT_NE(slurp(work / "strict.out").find("ANACIN_FAIL_WRITE_AFTER"),
            std::string::npos)
      << slurp(work / "strict.out");
  ::unsetenv("ANACIN_FAIL_WRITE_AFTER");
}

}  // namespace
}  // namespace anacin

#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/simulator.hpp"

namespace anacin::graph {
namespace {

EventGraph run_graph(const sim::RankProgram& program, int ranks,
                     double nd = 0.0, std::uint64_t seed = 1) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  return EventGraph::from_trace(sim::run_simulation(config, program).trace);
}

void star_program(sim::Comm& comm) {
  if (comm.rank() == 0) {
    for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
  } else {
    comm.send(0, 0, {}, 100);
  }
}

TEST(CommMatrix, CountsMessagesAndBytes) {
  const EventGraph graph = run_graph(star_program, 5);
  const CommMatrix matrix = communication_matrix(graph);
  EXPECT_EQ(matrix.num_ranks, 5);
  EXPECT_EQ(matrix.total_messages(), 4u);
  for (int src = 1; src < 5; ++src) {
    EXPECT_EQ(matrix.messages_between(src, 0), 1u);
    EXPECT_EQ(matrix.bytes_between(src, 0), 100u);
    EXPECT_EQ(matrix.messages_between(0, src), 0u);
  }
  EXPECT_EQ(matrix.messages_between(0, 0), 0u);
}

TEST(CommMatrix, RingTopologyShape) {
  const auto ring = [](sim::Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    sim::Request r = comm.irecv(prev, 0);
    comm.send(next, 0);
    (void)comm.wait(r);
  };
  const CommMatrix matrix = communication_matrix(run_graph(ring, 6));
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(matrix.messages_between(r, (r + 1) % 6), 1u);
    EXPECT_EQ(matrix.messages_between(r, (r + 5) % 6), 0u);
  }
}

TEST(CriticalPath, FollowsTheDependencyChain) {
  // Rank 0 -> rank 1 -> rank 2 pipeline with heavy compute on rank 1: the
  // critical path must pass through all three ranks and span the makespan.
  const auto pipeline = [](sim::Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(10.0);
      comm.send(1, 0);
    } else if (comm.rank() == 1) {
      (void)comm.recv(0, 0);
      comm.compute(500.0);
      comm.send(2, 0);
    } else {
      (void)comm.recv(1, 0);
    }
  };
  const EventGraph graph = run_graph(pipeline, 3);
  const CriticalPath path = critical_path(graph);
  ASSERT_FALSE(path.nodes.empty());
  EXPECT_DOUBLE_EQ(path.virtual_duration,
                   graph.node(path.nodes.back()).t_end);
  // Path must include events on rank 2 (the end) and reach back to an
  // init event (in-degree 0).
  EXPECT_EQ(graph.node(path.nodes.back()).rank, 2);
  EXPECT_EQ(graph.digraph().in_degree(path.nodes.front()), 0u);
  // Consecutive path nodes are connected by edges (t_end non-decreasing).
  for (std::size_t i = 1; i < path.nodes.size(); ++i) {
    EXPECT_LE(graph.node(path.nodes[i - 1]).t_end,
              graph.node(path.nodes[i]).t_end);
  }
  EXPECT_GE(path.recv_share, 0.0);
  EXPECT_LE(path.recv_share, 1.0);
}

TEST(CriticalPath, RecvShareReflectsWaiting) {
  // A receiver that waits a long time for a late sender has a high recv
  // share on its critical path.
  const auto late = [](sim::Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(1000.0);
      comm.send(1, 0);
    } else {
      (void)comm.recv();  // waits ~1000us
    }
  };
  const CriticalPath path = critical_path(run_graph(late, 2));
  // rank 1 is idle in recv while rank 0 computes... the chain through the
  // recv carries most of the makespan only if it traverses rank 1; either
  // way recv_share stays in bounds and the duration equals the makespan.
  EXPECT_GT(path.virtual_duration, 1000.0);
}

TEST(ParallelismProfile, CountsNodesPerTick) {
  const EventGraph graph = run_graph(star_program, 4);
  const auto profile = parallelism_profile(graph);
  EXPECT_EQ(profile.size(), graph.max_lamport());
  const std::size_t total =
      std::accumulate(profile.begin(), profile.end(), std::size_t{0});
  EXPECT_EQ(total, graph.num_nodes());
  // Tick 1 holds every init event.
  EXPECT_EQ(profile[0], 4u);
}

}  // namespace
}  // namespace anacin::graph

#include "graph/event_graph.hpp"

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::graph {
namespace {

trace::Trace race_trace(double nd, std::uint64_t seed, int ranks = 4) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd;
  return sim::run_simulation(config,
                             [](sim::Comm& comm) {
                               if (comm.rank() == 0) {
                                 for (int i = 0; i < comm.size() - 1; ++i) {
                                   (void)comm.recv();
                                 }
                               } else {
                                 comm.send(0, 0);
                               }
                             })
      .trace;
}

TEST(EventGraph, NodeAndEdgeCounts) {
  const EventGraph graph = EventGraph::from_trace(race_trace(0.0, 1));
  // rank 0: init + 3 recvs + finalize = 5; ranks 1-3: init + send + finalize.
  EXPECT_EQ(graph.num_nodes(), 5u + 3u * 3u);
  EXPECT_EQ(graph.num_ranks(), 4);
  EXPECT_EQ(graph.message_edges().size(), 3u);
  // program edges: (5-1) + 3*(3-1) = 10; plus 3 message edges.
  EXPECT_EQ(graph.digraph().num_edges(), 10u + 3u);
}

TEST(EventGraph, RankIndexingIsContiguous) {
  const EventGraph graph = EventGraph::from_trace(race_trace(0.0, 1));
  EXPECT_EQ(graph.rank_base(0), 0u);
  EXPECT_EQ(graph.rank_size(0), 5u);
  EXPECT_EQ(graph.rank_base(1), 5u);
  EXPECT_EQ(graph.node_of(1, 1), 6u);
  EXPECT_EQ(graph.node(graph.node_of(1, 1)).type, trace::EventType::kSend);
  EXPECT_THROW(graph.node_of(1, 99), Error);
  EXPECT_THROW(graph.rank_base(9), Error);
}

TEST(EventGraph, MessageEdgesConnectSendToRecv) {
  const EventGraph graph = EventGraph::from_trace(race_trace(1.0, 3));
  for (const auto& [send_id, recv_id] : graph.message_edges()) {
    const EventNode& send = graph.node(send_id);
    const EventNode& recv = graph.node(recv_id);
    EXPECT_EQ(send.type, trace::EventType::kSend);
    EXPECT_EQ(recv.type, trace::EventType::kRecv);
    EXPECT_EQ(send.peer, recv.rank);
    EXPECT_EQ(recv.peer, send.rank);
  }
}

TEST(EventGraph, IsAlwaysADag) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const EventGraph graph = EventGraph::from_trace(race_trace(1.0, seed));
    EXPECT_TRUE(graph.digraph().is_dag());
  }
}

TEST(EventGraph, LamportClocksRespectAllEdges) {
  const EventGraph graph = EventGraph::from_trace(race_trace(1.0, 7, 8));
  const Digraph& digraph = graph.digraph();
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_GE(graph.node(v).lamport, 1u);
    for (const NodeId w : digraph.out_neighbors(v)) {
      EXPECT_LT(graph.node(v).lamport, graph.node(w).lamport)
          << "edge " << v << "->" << w;
    }
  }
  EXPECT_GT(graph.max_lamport(), 1u);
}

TEST(EventGraph, InitNodesHaveLamportOne) {
  const EventGraph graph = EventGraph::from_trace(race_trace(0.0, 1));
  for (int r = 0; r < graph.num_ranks(); ++r) {
    EXPECT_EQ(graph.node(graph.rank_base(r)).lamport, 1u);
  }
}

TEST(EventGraph, CallstacksSurviveTheTrip) {
  const EventGraph graph = EventGraph::from_trace(race_trace(0.0, 1));
  bool found_recv_path = false;
  for (const EventNode& node : graph.nodes()) {
    if (node.type == trace::EventType::kRecv) {
      EXPECT_EQ(graph.callstacks().path(node.callstack_id), "MPI_Recv");
      found_recv_path = true;
    }
  }
  EXPECT_TRUE(found_recv_path);
}

TEST(EventGraph, WildcardFlagPreserved) {
  const EventGraph graph = EventGraph::from_trace(race_trace(0.0, 1));
  for (const EventNode& node : graph.nodes()) {
    if (node.type == trace::EventType::kRecv) {
      EXPECT_EQ(node.posted_source, -1);  // recv() defaults to ANY_SOURCE
    }
  }
}

TEST(EventGraph, CollectiveProgramsBuildCleanGraphs) {
  sim::SimConfig config;
  config.num_ranks = 6;
  config.seed = 2;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [](sim::Comm& comm) {
                            comm.barrier();
                            (void)comm.allreduce_sum(1.0);
                          })
          .trace;
  const EventGraph graph = EventGraph::from_trace(trace);
  EXPECT_TRUE(graph.digraph().is_dag());
  EXPECT_GT(graph.message_edges().size(), 0u);
}

}  // namespace
}  // namespace anacin::graph

#include "graph/slicing.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace anacin::graph {
namespace {

EventGraph ring_graph(int ranks, int laps) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.network.nd_fraction = 0.0;
  const trace::Trace trace =
      sim::run_simulation(config,
                          [laps](sim::Comm& comm) {
                            const int next =
                                (comm.rank() + 1) % comm.size();
                            const int prev = (comm.rank() + comm.size() - 1) %
                                             comm.size();
                            for (int i = 0; i < laps; ++i) {
                              sim::Request r = comm.irecv(prev, 0);
                              comm.send(next, 0);
                              (void)comm.wait(r);
                            }
                          })
          .trace;
  return EventGraph::from_trace(trace);
}

class SlicingWindows : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlicingWindows, PartitionIsCompleteAndConsistent) {
  const EventGraph graph = ring_graph(4, 5);
  const SliceSet slices = slice_by_lamport_window(graph, GetParam());

  std::size_t covered = 0;
  for (std::size_t s = 0; s < slices.num_slices; ++s) {
    for (const NodeId v : slices.nodes_in_slice[s]) {
      EXPECT_EQ(slices.slice_of_node[v], s);
      const std::uint64_t lamport = graph.node(v).lamport;
      EXPECT_GE(lamport, s * GetParam() + 1);
      EXPECT_LE(lamport, (s + 1) * GetParam());
      ++covered;
    }
  }
  EXPECT_EQ(covered, graph.num_nodes());
  EXPECT_EQ(slices.slice_of_node.size(), graph.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Widths, SlicingWindows,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 1000u));

TEST(Slicing, WindowOneGivesOneSlicePerLamportTick) {
  const EventGraph graph = ring_graph(3, 2);
  const SliceSet slices = slice_by_lamport_window(graph, 1);
  EXPECT_EQ(slices.num_slices, graph.max_lamport());
}

TEST(Slicing, HugeWindowGivesSingleSlice) {
  const EventGraph graph = ring_graph(3, 2);
  const SliceSet slices = slice_by_lamport_window(graph, 1u << 30);
  EXPECT_EQ(slices.num_slices, 1u);
  EXPECT_EQ(slices.nodes_in_slice[0].size(), graph.num_nodes());
}

TEST(Slicing, SliceIntoHitsTargetCount) {
  const EventGraph graph = ring_graph(4, 10);
  const SliceSet slices = slice_into(graph, 8);
  EXPECT_LE(slices.num_slices, 8u);
  EXPECT_GE(slices.num_slices, 6u);  // rounding can merge a couple
}

TEST(Slicing, InvalidWindowRejected) {
  const EventGraph graph = ring_graph(2, 1);
  EXPECT_THROW(slice_by_lamport_window(graph, 0), Error);
  EXPECT_THROW(slice_into(graph, 0), Error);
}

TEST(VirtualTimeSlicing, PartitionCoversAllNodes) {
  const EventGraph graph = ring_graph(4, 5);
  const SliceSet slices = slice_by_virtual_time_window(graph, 10.0);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < slices.num_slices; ++s) {
    for (const NodeId v : slices.nodes_in_slice[s]) {
      EXPECT_EQ(slices.slice_of_node[v], s);
      EXPECT_GE(graph.node(v).t_end, s * 10.0);
      EXPECT_LT(graph.node(v).t_end, (s + 1) * 10.0);
      ++covered;
    }
  }
  EXPECT_EQ(covered, graph.num_nodes());
}

TEST(VirtualTimeSlicing, HugeWindowSingleSlice) {
  const EventGraph graph = ring_graph(3, 2);
  const SliceSet slices = slice_by_virtual_time_window(graph, 1e12);
  EXPECT_EQ(slices.num_slices, 1u);
}

TEST(VirtualTimeSlicing, RejectsNonPositiveWindow) {
  const EventGraph graph = ring_graph(2, 1);
  EXPECT_THROW(slice_by_virtual_time_window(graph, 0.0), Error);
  EXPECT_THROW(slice_by_virtual_time_window(graph, -1.0), Error);
}

TEST(VirtualTimeSlicing, JitterMovesEventsBetweenSlices) {
  // Same program, different seeds at full ND: Lamport slicing puts the
  // deterministic ring's nodes in identical slices, virtual-time slicing
  // does not — the reason the analysis defaults to logical time.
  auto slices_signature = [](const SliceSet& slices) {
    std::vector<std::size_t> sizes;
    for (const auto& nodes : slices.nodes_in_slice) {
      sizes.push_back(nodes.size());
    }
    return sizes;
  };
  sim::SimConfig config;
  config.num_ranks = 4;
  config.network.nd_fraction = 1.0;
  const auto ring = [](sim::Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    for (int i = 0; i < 6; ++i) {
      sim::Request r = comm.irecv(prev, 0);
      comm.send(next, 0);
      (void)comm.wait(r);
    }
  };
  config.seed = 1;
  const EventGraph a =
      EventGraph::from_trace(sim::run_simulation(config, ring).trace);
  config.seed = 2;
  const EventGraph b =
      EventGraph::from_trace(sim::run_simulation(config, ring).trace);

  EXPECT_EQ(slices_signature(slice_by_lamport_window(a, 4)),
            slices_signature(slice_by_lamport_window(b, 4)));
  EXPECT_NE(slices_signature(slice_by_virtual_time_window(a, 25.0)),
            slices_signature(slice_by_virtual_time_window(b, 25.0)));
}

TEST(Slicing, NodesWithinSliceAreAscending) {
  const EventGraph graph = ring_graph(5, 4);
  const SliceSet slices = slice_by_lamport_window(graph, 4);
  for (const auto& nodes : slices.nodes_in_slice) {
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  }
}

}  // namespace
}  // namespace anacin::graph

#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.hpp"

namespace anacin::graph {
namespace {

Digraph diamond() {
  Digraph::Builder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(0, 2);
  builder.add_edge(1, 3);
  builder.add_edge(2, 3);
  return std::move(builder).build();
}

TEST(Digraph, EmptyGraph) {
  const Digraph graph = Digraph::Builder(0).build();
  EXPECT_EQ(graph.num_nodes(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_TRUE(graph.topological_order().empty());
}

TEST(Digraph, AdjacencyBothDirections) {
  const Digraph graph = diamond();
  EXPECT_EQ(graph.num_edges(), 4u);
  const auto out0 = graph.out_neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(out0.begin(), out0.end()),
            (std::vector<NodeId>{1, 2}));
  const auto in3 = graph.in_neighbors(3);
  EXPECT_EQ(std::vector<NodeId>(in3.begin(), in3.end()),
            (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(graph.out_degree(3), 0u);
  EXPECT_EQ(graph.in_degree(0), 0u);
}

TEST(Digraph, OutOfRangeAccessesThrow) {
  const Digraph graph = diamond();
  EXPECT_THROW(graph.out_neighbors(4), Error);
  EXPECT_THROW(graph.in_neighbors(4), Error);
  Digraph::Builder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2), Error);
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
  const Digraph graph = diamond();
  const auto order = graph.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[0], position[2]);
  EXPECT_LT(position[1], position[3]);
  EXPECT_LT(position[2], position[3]);
}

TEST(Digraph, CycleDetected) {
  Digraph::Builder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  const Digraph graph = std::move(builder).build();
  EXPECT_FALSE(graph.is_dag());
  EXPECT_THROW(graph.topological_order(), Error);
}

TEST(Digraph, SelfLoopIsACycle) {
  Digraph::Builder builder(1);
  builder.add_edge(0, 0);
  EXPECT_FALSE(std::move(builder).build().is_dag());
}

TEST(Digraph, ParallelEdgesSupported) {
  Digraph::Builder builder(2);
  builder.add_edge(0, 1);
  builder.add_edge(0, 1);
  const Digraph graph = std::move(builder).build();
  EXPECT_EQ(graph.out_degree(0), 2u);
  EXPECT_EQ(graph.in_degree(1), 2u);
  EXPECT_TRUE(graph.is_dag());
}

TEST(Digraph, DeterministicTopoOrder) {
  const auto order_a = diamond().topological_order();
  const auto order_b = diamond().topological_order();
  EXPECT_EQ(order_a, order_b);
}

TEST(Digraph, LongChain) {
  constexpr std::size_t kLength = 10000;
  Digraph::Builder builder(kLength);
  for (NodeId v = 0; v + 1 < kLength; ++v) builder.add_edge(v, v + 1);
  const Digraph graph = std::move(builder).build();
  const auto order = graph.topological_order();
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace anacin::graph

#include "trace/filter.hpp"

#include <gtest/gtest.h>

#include "graph/event_graph.hpp"
#include "sim/simulator.hpp"

namespace anacin::trace {
namespace {

trace::Trace mixed_traffic_trace() {
  sim::SimConfig config;
  config.num_ranks = 4;
  config.network.nd_fraction = 0.0;
  return sim::run_simulation(config,
                             [](sim::Comm& comm) {
                               // User traffic...
                               if (comm.rank() == 0) {
                                 for (int i = 0; i < comm.size() - 1; ++i) {
                                   (void)comm.recv();
                                 }
                               } else {
                                 comm.send(0, 0);
                               }
                               // ...plus collective traffic.
                               comm.barrier();
                               (void)comm.allreduce_sum(1.0);
                             })
      .trace;
}

TEST(TraceFilter, StripsOnlyCollectiveEvents) {
  const Trace original = mixed_traffic_trace();
  const Trace filtered =
      strip_events_with_tag_at_least(original, sim::kCollectiveTagBase);
  EXPECT_LT(filtered.total_events(), original.total_events());
  for (int rank = 0; rank < filtered.num_ranks(); ++rank) {
    for (const Event& event : filtered.rank_events(rank)) {
      if (event.type == EventType::kSend ||
          event.type == EventType::kRecv) {
        EXPECT_LT(event.tag, sim::kCollectiveTagBase);
      }
    }
  }
  // The user message race (3 messages) survives intact.
  std::size_t recvs = 0;
  for (const Event& event : filtered.rank_events(0)) {
    if (event.type == EventType::kRecv) ++recvs;
  }
  EXPECT_EQ(recvs, 3u);
}

TEST(TraceFilter, MatchedSeqsAreRemapped) {
  const Trace filtered = strip_events_with_tag_at_least(
      mixed_traffic_trace(), sim::kCollectiveTagBase);
  // The filtered trace must still build a consistent event graph: every
  // recv's matched reference resolves to a send.
  const graph::EventGraph graph = graph::EventGraph::from_trace(filtered);
  EXPECT_TRUE(graph.digraph().is_dag());
  EXPECT_EQ(graph.message_edges().size(), 3u);
}

TEST(TraceFilter, ThresholdZeroDropsAllMessaging) {
  const Trace filtered =
      strip_events_with_tag_at_least(mixed_traffic_trace(), 0);
  for (int rank = 0; rank < filtered.num_ranks(); ++rank) {
    EXPECT_EQ(filtered.rank_events(rank).size(), 2u);  // init + finalize
  }
}

TEST(TraceFilter, HugeThresholdIsIdentity) {
  const Trace original = mixed_traffic_trace();
  const Trace filtered =
      strip_events_with_tag_at_least(original, 1 << 30);
  EXPECT_EQ(original.to_json().dump(), filtered.to_json().dump());
}

TEST(TraceFilter, CallstacksPreserved) {
  const Trace original = mixed_traffic_trace();
  const Trace filtered =
      strip_events_with_tag_at_least(original, sim::kCollectiveTagBase);
  EXPECT_EQ(original.callstacks().paths(), filtered.callstacks().paths());
}

}  // namespace
}  // namespace anacin::trace

#include "trace/event.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace anacin::trace {
namespace {

TEST(EventType, NamesRoundTrip) {
  for (const EventType type : {EventType::kInit, EventType::kSend,
                               EventType::kRecv, EventType::kFinalize}) {
    EXPECT_EQ(event_type_from_name(event_type_name(type)), type);
  }
}

TEST(EventType, UnknownNameThrows) {
  EXPECT_THROW(event_type_from_name("bogus"), ParseError);
  EXPECT_THROW(event_type_from_name(""), ParseError);
}

TEST(Event, DefaultsAreInert) {
  const Event e;
  EXPECT_EQ(e.type, EventType::kInit);
  EXPECT_EQ(e.peer, -1);
  EXPECT_EQ(e.matched_rank, -1);
  EXPECT_EQ(e.matched_seq, -1);
  EXPECT_EQ(e.posted_source, -2);
  EXPECT_EQ(e.callstack_id, 0u);
  EXPECT_FALSE(e.jittered);
}

}  // namespace
}  // namespace anacin::trace

#include "trace/callstack.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace anacin::trace {
namespace {

TEST(CallstackRegistry, EmptyPathIsIdZero) {
  CallstackRegistry registry;
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.path(0), "");
  EXPECT_EQ(registry.intern(""), 0u);
}

TEST(CallstackRegistry, InternDeduplicates) {
  CallstackRegistry registry;
  const auto a = registry.intern("main>MPI_Send");
  const auto b = registry.intern("main>MPI_Recv");
  const auto a2 = registry.intern("main>MPI_Send");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(CallstackRegistry, PathLookupRoundTrips) {
  CallstackRegistry registry;
  const auto id = registry.intern("a>b>c");
  EXPECT_EQ(registry.path(id), "a>b>c");
}

TEST(CallstackRegistry, OutOfRangeIdThrows) {
  CallstackRegistry registry;
  EXPECT_THROW(registry.path(99), Error);
}

TEST(CallstackRegistry, InternFramesJoins) {
  CallstackRegistry registry;
  const auto id = registry.intern_frames({"main", "phase1", "MPI_Irecv"});
  EXPECT_EQ(registry.path(id), "main>phase1>MPI_Irecv");
  EXPECT_EQ(registry.intern("main>phase1>MPI_Irecv"), id);
}

TEST(JoinFrames, EdgeCases) {
  EXPECT_EQ(join_frames({}), "");
  EXPECT_EQ(join_frames({"solo"}), "solo");
  EXPECT_EQ(join_frames({"a", "b"}), "a>b");
}

}  // namespace
}  // namespace anacin::trace

#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace anacin::trace {
namespace {

Event make_event(EventType type, int rank, double t) {
  Event e;
  e.type = type;
  e.rank = rank;
  e.t_start = t;
  e.t_end = t;
  return e;
}

TEST(Trace, AppendAssignsSequentialSeqs) {
  Trace trace(2, 1);
  EXPECT_EQ(trace.append(make_event(EventType::kInit, 0, 0.0)), 0);
  EXPECT_EQ(trace.append(make_event(EventType::kSend, 0, 1.0)), 1);
  EXPECT_EQ(trace.append(make_event(EventType::kInit, 1, 0.0)), 0);
  EXPECT_EQ(trace.total_events(), 3u);
}

TEST(Trace, RejectsOutOfRangeRank) {
  Trace trace(2, 1);
  EXPECT_THROW(trace.append(make_event(EventType::kInit, 2, 0.0)), Error);
  EXPECT_THROW(trace.append(make_event(EventType::kInit, -1, 0.0)), Error);
}

TEST(Trace, RejectsTimeRegression) {
  Trace trace(1, 1);
  trace.append(make_event(EventType::kInit, 0, 5.0));
  EXPECT_THROW(trace.append(make_event(EventType::kSend, 0, 4.0)), Error);
}

TEST(Trace, EventLookupById) {
  Trace trace(2, 1);
  trace.append(make_event(EventType::kInit, 1, 0.0));
  Event send = make_event(EventType::kSend, 1, 2.0);
  send.peer = 0;
  trace.append(send);
  const Event& fetched = trace.event(EventId{1, 1});
  EXPECT_EQ(fetched.type, EventType::kSend);
  EXPECT_EQ(fetched.peer, 0);
  EXPECT_THROW(trace.event(EventId{1, 5}), Error);
  EXPECT_THROW(trace.event(EventId{3, 0}), Error);
}

TEST(Trace, MakespanIsMaxEndTime) {
  Trace trace(2, 1);
  trace.append(make_event(EventType::kInit, 0, 0.0));
  trace.append(make_event(EventType::kFinalize, 0, 7.5));
  trace.append(make_event(EventType::kInit, 1, 0.0));
  trace.append(make_event(EventType::kFinalize, 1, 3.0));
  EXPECT_DOUBLE_EQ(trace.makespan(), 7.5);
}

TEST(Trace, EmptyTraceMakespanZero) {
  const Trace trace(1, 1);
  EXPECT_DOUBLE_EQ(trace.makespan(), 0.0);
}

TEST(Trace, JsonRoundTripPreservesEverything) {
  Trace trace(2, 2);
  const auto cs = trace.callstacks().intern("main>MPI_Send");

  trace.append(make_event(EventType::kInit, 0, 0.0));
  Event send = make_event(EventType::kSend, 0, 1.25);
  send.peer = 1;
  send.tag = 3;
  send.size_bytes = 64;
  send.callstack_id = cs;
  send.jittered = true;
  trace.append(send);

  trace.append(make_event(EventType::kInit, 1, 0.0));
  Event recv = make_event(EventType::kRecv, 1, 2.5);
  recv.peer = 0;
  recv.tag = 3;
  recv.matched_rank = 0;
  recv.matched_seq = 1;
  recv.posted_source = -1;
  recv.posted_tag = 3;
  trace.append(recv);

  const Trace copy = Trace::from_json(trace.to_json());
  EXPECT_EQ(copy.num_ranks(), 2);
  EXPECT_EQ(copy.num_nodes(), 2);
  EXPECT_EQ(copy.total_events(), 4u);
  EXPECT_EQ(copy.callstacks().path(cs), "main>MPI_Send");

  const Event& copy_send = copy.event(EventId{0, 1});
  EXPECT_EQ(copy_send.type, EventType::kSend);
  EXPECT_EQ(copy_send.peer, 1);
  EXPECT_EQ(copy_send.tag, 3);
  EXPECT_EQ(copy_send.size_bytes, 64u);
  EXPECT_DOUBLE_EQ(copy_send.t_start, 1.25);
  EXPECT_TRUE(copy_send.jittered);

  const Event& copy_recv = copy.event(EventId{1, 1});
  EXPECT_EQ(copy_recv.matched_rank, 0);
  EXPECT_EQ(copy_recv.matched_seq, 1);
  EXPECT_EQ(copy_recv.posted_source, -1);
  EXPECT_EQ(copy_recv.posted_tag, 3);

  // Serialization is stable: dumping twice gives identical text.
  EXPECT_EQ(trace.to_json().dump(), copy.to_json().dump());
}

TEST(Trace, FromJsonRejectsWrongSchema) {
  EXPECT_THROW(Trace::from_json(json::parse(R"({"schema": "other"})")),
               ParseError);
  EXPECT_THROW(Trace::from_json(json::parse("[]")), ParseError);
}

}  // namespace
}  // namespace anacin::trace

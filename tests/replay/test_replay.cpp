#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "patterns/pattern.hpp"
#include "support/error.hpp"

namespace anacin::replay {
namespace {

sim::SimConfig noisy(int ranks, std::uint64_t seed) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  return config;
}

sim::RankProgram race_program(int /*ranks*/) {
  return [](sim::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  };
}

TEST(RecordSchedule, CapturesOnlyWildcardRecvs) {
  const sim::RunResult run = sim::run_simulation(
      noisy(4, 3), [](sim::Comm& comm) {
        if (comm.rank() == 0) {
          (void)comm.recv();          // wildcard
          (void)comm.recv(2, 0);      // explicit
          (void)comm.recv();          // wildcard
        } else {
          comm.send(0, 0);
        }
      });
  const sim::ReplaySchedule schedule = record_schedule(run.trace);
  ASSERT_EQ(schedule.wildcard_matches.size(), 4u);
  EXPECT_EQ(schedule.wildcard_matches[0].size(), 2u);  // 2 wildcards only
  EXPECT_TRUE(schedule.wildcard_matches[1].empty());
  EXPECT_EQ(schedule.total_matches(), 2u);
}

TEST(RecordSchedule, EmptyForDeterministicPrograms) {
  const sim::RunResult run = sim::run_simulation(
      noisy(2, 1), [](sim::Comm& comm) {
        if (comm.rank() == 0) comm.send(1, 0);
        else (void)comm.recv(0, 0);
      });
  EXPECT_TRUE(record_schedule(run.trace).empty());
}

TEST(ScheduleJson, RoundTrips) {
  const sim::RunResult run =
      sim::run_simulation(noisy(6, 5), race_program(6));
  const sim::ReplaySchedule schedule = record_schedule(run.trace);
  const sim::ReplaySchedule copy =
      schedule_from_json(schedule_to_json(schedule));
  ASSERT_EQ(copy.wildcard_matches.size(), schedule.wildcard_matches.size());
  for (std::size_t r = 0; r < copy.wildcard_matches.size(); ++r) {
    EXPECT_EQ(copy.wildcard_matches[r], schedule.wildcard_matches[r]);
  }
}

TEST(ScheduleJson, RejectsWrongSchema) {
  EXPECT_THROW(schedule_from_json(json::parse(R"({"schema":"x"})")),
               ParseError);
}

TEST(RecordAndReplay, KernelDistanceCollapsesToZero) {
  // The headline replay property: a replayed run is indistinguishable from
  // the recorded one under the kernel-distance metric, even with a
  // different noise seed (ReMPI's suppression of non-determinism).
  const RecordReplayResult rr =
      record_and_replay(noisy(8, 11), noisy(8, 777), race_program(8));

  const auto kernel = kernels::make_kernel("wl:2");
  const auto ga = graph::EventGraph::from_trace(rr.recorded.trace);
  const auto gb = graph::EventGraph::from_trace(rr.replayed.trace);
  const double distance = kernel->distance(
      kernels::build_labeled_graph(ga, kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(gb, kernels::LabelPolicy::kTypePeer));
  EXPECT_DOUBLE_EQ(distance, 0.0);
}

TEST(RecordAndReplay, WithoutReplayTheSameSeedsDiffer) {
  // Control for the test above: without forcing, seed 11 vs 777 gives a
  // nonzero distance (otherwise the previous test proves nothing).
  const auto a = sim::run_simulation(noisy(8, 11), race_program(8));
  const auto b = sim::run_simulation(noisy(8, 777), race_program(8));
  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(graph::EventGraph::from_trace(a.trace),
                                   kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(graph::EventGraph::from_trace(b.trace),
                                   kernels::LabelPolicy::kTypePeer));
  EXPECT_GT(distance, 0.0);
}

TEST(RecordAndReplay, WorksOnPackagedPatterns) {
  for (const std::string& name :
       {std::string("amg2013"), std::string("unstructured_mesh")}) {
    patterns::PatternConfig shape;
    shape.num_ranks = 6;
    const sim::RankProgram program =
        patterns::make_pattern(name)->program(shape);
    const RecordReplayResult rr =
        record_and_replay(noisy(6, 2), noisy(6, 31337), program);
    const auto kernel = kernels::make_kernel("wl:2");
    const double distance = kernel->distance(
        kernels::build_labeled_graph(
            graph::EventGraph::from_trace(rr.recorded.trace),
            kernels::LabelPolicy::kTypePeer),
        kernels::build_labeled_graph(
            graph::EventGraph::from_trace(rr.replayed.trace),
            kernels::LabelPolicy::kTypePeer));
    EXPECT_DOUBLE_EQ(distance, 0.0) << name;
  }
}

}  // namespace
}  // namespace anacin::replay

#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "patterns/pattern.hpp"
#include "store/codec.hpp"
#include "support/error.hpp"

namespace anacin::replay {
namespace {

sim::SimConfig noisy(int ranks, std::uint64_t seed) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  return config;
}

sim::RankProgram race_program(int /*ranks*/) {
  return [](sim::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  };
}

TEST(RecordSchedule, CapturesOnlyWildcardRecvs) {
  const sim::RunResult run = sim::run_simulation(
      noisy(4, 3), [](sim::Comm& comm) {
        if (comm.rank() == 0) {
          (void)comm.recv();          // wildcard
          (void)comm.recv(2, 0);      // explicit
          (void)comm.recv();          // wildcard
        } else {
          comm.send(0, 0);
        }
      });
  const sim::ReplaySchedule schedule = record_schedule(run.trace);
  ASSERT_EQ(schedule.wildcard_matches.size(), 4u);
  EXPECT_EQ(schedule.wildcard_matches[0].size(), 2u);  // 2 wildcards only
  EXPECT_TRUE(schedule.wildcard_matches[1].empty());
  EXPECT_EQ(schedule.total_matches(), 2u);
}

TEST(RecordSchedule, EmptyForDeterministicPrograms) {
  const sim::RunResult run = sim::run_simulation(
      noisy(2, 1), [](sim::Comm& comm) {
        if (comm.rank() == 0) comm.send(1, 0);
        else (void)comm.recv(0, 0);
      });
  EXPECT_TRUE(record_schedule(run.trace).empty());
}

TEST(ScheduleJson, RoundTrips) {
  const sim::RunResult run =
      sim::run_simulation(noisy(6, 5), race_program(6));
  const sim::ReplaySchedule schedule = record_schedule(run.trace);
  const sim::ReplaySchedule copy =
      schedule_from_json(schedule_to_json(schedule));
  ASSERT_EQ(copy.wildcard_matches.size(), schedule.wildcard_matches.size());
  for (std::size_t r = 0; r < copy.wildcard_matches.size(); ++r) {
    EXPECT_EQ(copy.wildcard_matches[r], schedule.wildcard_matches[r]);
  }
}

TEST(ScheduleJson, RejectsWrongSchema) {
  EXPECT_THROW(schedule_from_json(json::parse(R"({"schema":"x"})")),
               ParseError);
}

TEST(ScheduleJson, RejectsMissingWildcardMatches) {
  EXPECT_THROW(
      schedule_from_json(json::parse(R"({"schema":"anacin-replay-1"})")),
      ParseError);
}

TEST(ScheduleJson, RejectsNonArrayWildcardMatches) {
  EXPECT_THROW(schedule_from_json(json::parse(
                   R"({"schema":"anacin-replay-1","wildcard_matches":7})")),
               ParseError);
}

TEST(ScheduleJson, RejectsNonArrayRankEntry) {
  EXPECT_THROW(
      schedule_from_json(json::parse(
          R"({"schema":"anacin-replay-1","wildcard_matches":[[[1,0]],"x"]})")),
      ParseError);
}

TEST(ScheduleJson, RejectsMalformedMatchEntries) {
  // Not an array, too short, and too long are all rejected with context.
  for (const char* doc :
       {R"({"schema":"anacin-replay-1","wildcard_matches":[[5]]})",
        R"({"schema":"anacin-replay-1","wildcard_matches":[[[1]]]})",
        R"({"schema":"anacin-replay-1","wildcard_matches":[[[1,0,true,0]]]})"}) {
    EXPECT_THROW(schedule_from_json(json::parse(doc)), ParseError) << doc;
  }
}

TEST(ScheduleJson, RejectsOutOfRangeSource) {
  // Below kAnySource (-1) and above int32 max both reject: sources are
  // rank ids stored as int32, and silently truncating one would force the
  // wrong sender on replay.
  for (const char* doc :
       {R"({"schema":"anacin-replay-1","wildcard_matches":[[[-2,0]]]})",
        R"({"schema":"anacin-replay-1","wildcard_matches":[[[2147483648,0]]]})"}) {
    EXPECT_THROW(schedule_from_json(json::parse(doc)), ParseError) << doc;
  }
}

TEST(ScheduleJson, RoundTripsPinFlags) {
  const sim::RunResult run =
      sim::run_simulation(noisy(4, 9), race_program(4));
  sim::ReplaySchedule schedule = record_schedule(run.trace);
  ASSERT_GE(schedule.total_matches(), 2u);
  ASSERT_TRUE(schedule.free_entry(1));
  const sim::ReplaySchedule copy =
      schedule_from_json(schedule_to_json(schedule));
  ASSERT_EQ(copy.wildcard_matches.size(), schedule.wildcard_matches.size());
  for (std::size_t r = 0; r < copy.wildcard_matches.size(); ++r) {
    EXPECT_EQ(copy.wildcard_matches[r], schedule.wildcard_matches[r]);
  }
}

TEST(ScheduleCodec, RoundTripsIncludingFreedEntries) {
  const sim::RunResult run =
      sim::run_simulation(noisy(5, 21), race_program(5));
  sim::ReplaySchedule schedule = record_schedule(run.trace);
  ASSERT_GE(schedule.total_matches(), 3u);
  ASSERT_TRUE(schedule.free_entry(0));
  ASSERT_TRUE(schedule.free_entry(2));
  const sim::ReplaySchedule copy =
      store::decode_schedule(store::encode_schedule(schedule));
  ASSERT_EQ(copy.wildcard_matches.size(), schedule.wildcard_matches.size());
  for (std::size_t r = 0; r < copy.wildcard_matches.size(); ++r) {
    EXPECT_EQ(copy.wildcard_matches[r], schedule.wildcard_matches[r]);
  }
}

TEST(FreeEntry, FlatIndexWalksRanksAndRejectsOutOfRange) {
  sim::ReplaySchedule schedule;
  schedule.wildcard_matches = {{{1, 0}, {2, 0}}, {}, {{3, 1}}};
  EXPECT_TRUE(schedule.free_entry(2));  // first (only) match of rank 2
  EXPECT_TRUE(schedule.wildcard_matches[0][0].pinned);
  EXPECT_TRUE(schedule.wildcard_matches[0][1].pinned);
  EXPECT_FALSE(schedule.wildcard_matches[2][0].pinned);
  EXPECT_FALSE(schedule.free_entry(3));
}

TEST(RecordSchedule, UsesCompletionOrderNotTraceOrder) {
  // Rank 0 posts two wildcard irecvs and waits them in *post* order. The
  // tag-2 message arrives first (rank 2 sends immediately; rank 1 computes
  // 500us before sending), so the tag-2 request completes first in the
  // engine but retires second-to-last... trace events are appended at
  // wait() time, so trace order here is tag-1-then-tag-2 while completion
  // order is tag-2-then-tag-1. The schedule contract is completion order —
  // the order the matcher consults the cursor in on replay.
  sim::SimConfig config;
  config.num_ranks = 3;
  config.seed = 7;
  const sim::RunResult run =
      sim::run_simulation(config, [](sim::Comm& comm) {
        if (comm.rank() == 0) {
          sim::Request slow = comm.irecv(sim::kAnySource, 1);
          sim::Request fast = comm.irecv(sim::kAnySource, 2);
          (void)comm.wait(slow);
          (void)comm.wait(fast);
        } else if (comm.rank() == 1) {
          comm.compute(500.0);
          comm.send(0, 1);
        } else {
          comm.send(0, 2);
        }
      });
  // Sanity: the trace really does retire the slow (tag-1, rank-1) recv
  // first, i.e. this test would catch a recorder that keeps trace order.
  std::vector<std::int32_t> trace_order;
  for (const trace::Event& event : run.trace.rank_events(0)) {
    if (event.type == trace::EventType::kRecv) {
      trace_order.push_back(event.matched_rank);
    }
  }
  ASSERT_EQ(trace_order, (std::vector<std::int32_t>{1, 2}));

  const sim::ReplaySchedule schedule = record_schedule(run.trace);
  ASSERT_EQ(schedule.wildcard_matches[0].size(), 2u);
  EXPECT_EQ(schedule.wildcard_matches[0][0].source, 2);
  EXPECT_EQ(schedule.wildcard_matches[0][1].source, 1);
}

TEST(RecordAndReplay, KernelDistanceCollapsesToZero) {
  // The headline replay property: a replayed run is indistinguishable from
  // the recorded one under the kernel-distance metric, even with a
  // different noise seed (ReMPI's suppression of non-determinism).
  const RecordReplayResult rr =
      record_and_replay(noisy(8, 11), noisy(8, 777), race_program(8));

  const auto kernel = kernels::make_kernel("wl:2");
  const auto ga = graph::EventGraph::from_trace(rr.recorded.trace);
  const auto gb = graph::EventGraph::from_trace(rr.replayed.trace);
  const double distance = kernel->distance(
      kernels::build_labeled_graph(ga, kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(gb, kernels::LabelPolicy::kTypePeer));
  EXPECT_DOUBLE_EQ(distance, 0.0);
}

TEST(RecordAndReplay, WithoutReplayTheSameSeedsDiffer) {
  // Control for the test above: without forcing, seed 11 vs 777 gives a
  // nonzero distance (otherwise the previous test proves nothing).
  const auto a = sim::run_simulation(noisy(8, 11), race_program(8));
  const auto b = sim::run_simulation(noisy(8, 777), race_program(8));
  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(graph::EventGraph::from_trace(a.trace),
                                   kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(graph::EventGraph::from_trace(b.trace),
                                   kernels::LabelPolicy::kTypePeer));
  EXPECT_GT(distance, 0.0);
}

TEST(RecordAndReplay, AllPinnedReplayIsByteIdenticalUnderFaultRetransmits) {
  // Record a run whose wildcard matches include retransmitted messages
  // (drops + retries exercise drain_replay_matches on replay, where a
  // single recv completion can satisfy several queued deliveries), then
  // replay the same config with every entry pinned. The replayed trace and
  // event graph must be byte-identical to the recording under the store
  // codec — the strongest "replay reproduced the recording" statement the
  // artifact layer can make.
  sim::SimConfig config = noisy(6, 13);
  config.faults.drop_probability = 0.3;
  config.faults.max_retries = 5;
  config.faults.retry_timeout_us = 20.0;
  const patterns::PatternConfig shape = [] {
    patterns::PatternConfig s;
    s.num_ranks = 6;
    s.iterations = 2;
    return s;
  }();
  const sim::RankProgram program =
      patterns::make_pattern("message_race")->program(shape);

  const sim::RunResult recorded = sim::run_simulation(config, program);
  ASSERT_GT(recorded.stats.drops, 0u) << "fault config produced no drops";
  const sim::ReplaySchedule schedule = record_schedule(recorded.trace);
  ASSERT_GT(schedule.total_matches(), 0u);

  sim::SimConfig forced = config;
  forced.replay = &schedule;
  const sim::RunResult replayed = sim::run_simulation(forced, program);

  EXPECT_EQ(store::encode_trace(replayed.trace),
            store::encode_trace(recorded.trace));
  EXPECT_EQ(store::encode_event_graph(
                graph::EventGraph::from_trace(replayed.trace)),
            store::encode_event_graph(
                graph::EventGraph::from_trace(recorded.trace)));
}

TEST(PinFree, AllFreedReplayEqualsAPlainRunByteForByte) {
  // Freed entries neither force a source nor impose the recorded time
  // floor, so a replay with *every* entry freed must be indistinguishable
  // from running the replay seed with no schedule at all.
  const sim::RankProgram program = race_program(8);
  const sim::RunResult recorded =
      sim::run_simulation(noisy(8, 11), program);
  sim::ReplaySchedule schedule = record_schedule(recorded.trace);
  const std::size_t total = schedule.total_matches();
  ASSERT_GT(total, 0u);
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_TRUE(schedule.free_entry(i));
  }

  sim::SimConfig replay_config = noisy(8, 777);
  replay_config.replay = &schedule;
  const sim::RunResult freed_run =
      sim::run_simulation(replay_config, program);
  const sim::RunResult plain_run =
      sim::run_simulation(noisy(8, 777), program);
  EXPECT_EQ(store::encode_trace(freed_run.trace),
            store::encode_trace(plain_run.trace));
}

TEST(PinFree, FreeingEntriesReopensTheRaces) {
  // Control for the pinning machinery: all pinned collapses the distance
  // to zero, all freed restores (some of) the seed-to-seed gap.
  const sim::RankProgram program = race_program(8);
  const sim::RunResult recorded =
      sim::run_simulation(noisy(8, 11), program);
  const sim::ReplaySchedule pinned = record_schedule(recorded.trace);
  sim::ReplaySchedule freed = pinned;
  for (std::size_t i = 0; i < freed.total_matches(); ++i) {
    ASSERT_TRUE(freed.free_entry(i));
  }

  const auto kernel = kernels::make_kernel("wl:2");
  const auto features = [&](const trace::Trace& trace) {
    return kernels::build_labeled_graph(graph::EventGraph::from_trace(trace),
                                        kernels::LabelPolicy::kTypePeer);
  };
  sim::SimConfig replay_config = noisy(8, 777);
  replay_config.replay = &pinned;
  const sim::RunResult pinned_run =
      sim::run_simulation(replay_config, program);
  replay_config.replay = &freed;
  const sim::RunResult freed_run =
      sim::run_simulation(replay_config, program);

  EXPECT_DOUBLE_EQ(
      kernel->distance(features(recorded.trace), features(pinned_run.trace)),
      0.0);
  EXPECT_GT(
      kernel->distance(features(recorded.trace), features(freed_run.trace)),
      0.0);
}

TEST(RecordAndReplay, WorksOnPackagedPatterns) {
  for (const std::string& name :
       {std::string("amg2013"), std::string("unstructured_mesh")}) {
    patterns::PatternConfig shape;
    shape.num_ranks = 6;
    const sim::RankProgram program =
        patterns::make_pattern(name)->program(shape);
    const RecordReplayResult rr =
        record_and_replay(noisy(6, 2), noisy(6, 31337), program);
    const auto kernel = kernels::make_kernel("wl:2");
    const double distance = kernel->distance(
        kernels::build_labeled_graph(
            graph::EventGraph::from_trace(rr.recorded.trace),
            kernels::LabelPolicy::kTypePeer),
        kernels::build_labeled_graph(
            graph::EventGraph::from_trace(rr.replayed.trace),
            kernels::LabelPolicy::kTypePeer));
    EXPECT_DOUBLE_EQ(distance, 0.0) << name;
  }
}

}  // namespace
}  // namespace anacin::replay

#include "replay/bisect.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "store/store.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace anacin::replay {
namespace {

namespace fs = std::filesystem;

/// message_race at full non-determinism: every receive on rank 0 is a
/// wildcard, so the recorded schedule has (ranks - 1) * iterations entries
/// and the seed-to-seed kernel distance is comfortably nonzero.
BisectConfig race_config() {
  BisectConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 8;
  config.shape.iterations = 1;
  config.record_sim.num_ranks = 8;
  config.record_sim.seed = 11;
  config.record_sim.network.nd_fraction = 1.0;
  config.replay_seed = 777;
  return config;
}

TEST(Bisect, RejectsDegenerateConfigs) {
  ThreadPool pool;
  {
    BisectConfig config = race_config();
    config.replay_seed = config.record_sim.seed;
    EXPECT_THROW(bisect(config, pool), ConfigError);
  }
  {
    BisectConfig config = race_config();
    config.target_fraction = 0.0;
    EXPECT_THROW(bisect(config, pool), ConfigError);
  }
  {
    BisectConfig config = race_config();
    config.target_fraction = 1.5;
    EXPECT_THROW(bisect(config, pool), ConfigError);
  }
  {
    BisectConfig config = race_config();
    config.slice_window = 0;
    EXPECT_THROW(bisect(config, pool), ConfigError);
  }
}

TEST(Bisect, ConvergesOnMessageRaceAndNamesTheRacyCallsite) {
  ThreadPool pool;
  const BisectConfig config = race_config();
  const BisectResult result = bisect(config, pool);

  ASSERT_GT(result.schedule.total_matches(), 0u);
  ASSERT_GT(result.full_gap, 0.0);
  ASSERT_FALSE(result.minimal.empty());
  // The converged set reproduces the configured fraction of the gap...
  EXPECT_GE(result.achieved, config.target_fraction * result.full_gap);
  // ...and is genuinely minimal with respect to the recording.
  EXPECT_LE(result.minimal.size(), result.schedule.total_matches());
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.candidates, 0u);

  ASSERT_EQ(result.report.size(), result.minimal.size());
  for (const RacyMatch& match : result.report) {
    // Every racy match is one of rank 0's wildcard receives inside the
    // race_recv scope — the report names the paper's root-cause callsite.
    EXPECT_EQ(match.callsite, "message_race>race_recv>MPI_Recv");
    EXPECT_EQ(match.rank, 0);
    EXPECT_GE(match.source, 1);
  }
  for (std::size_t i = 1; i < result.report.size(); ++i) {
    EXPECT_GE(result.report[i - 1].contribution, result.report[i].contribution);
  }
}

TEST(Bisect, IsDeterministicAcrossInvocations) {
  ThreadPool pool;
  const BisectConfig config = race_config();
  const BisectResult first = bisect(config, pool);
  const BisectResult second = bisect(config, pool);
  EXPECT_EQ(first.minimal, second.minimal);
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.candidates, second.candidates);
  EXPECT_DOUBLE_EQ(first.full_gap, second.full_gap);
  EXPECT_DOUBLE_EQ(first.achieved, second.achieved);
}

TEST(Bisect, StoreBackedBisectionMatchesInProcessAndWarmRuns) {
  const fs::path root =
      fs::temp_directory_path() / "anacin_bisect_store_test";
  fs::remove_all(root);
  ThreadPool pool;
  const BisectConfig config = race_config();
  const BisectResult plain = bisect(config, pool);

  BisectResult cold;
  BisectResult warm;
  {
    store::ArtifactStore artifact_store(
        store::ObjectStore::Config{root.string(), 64ull << 20});
    store::set_active_store(&artifact_store);
    cold = bisect(config, pool);
    warm = bisect(config, pool);
    store::set_active_store(nullptr);
  }
  fs::remove_all(root);

  // Store-cached candidate replays produce the same bisection as direct
  // in-process evaluation, and a warm store changes nothing but the work.
  EXPECT_EQ(cold.minimal, plain.minimal);
  EXPECT_DOUBLE_EQ(cold.full_gap, plain.full_gap);
  EXPECT_DOUBLE_EQ(cold.achieved, plain.achieved);
  EXPECT_EQ(warm.minimal, plain.minimal);
  EXPECT_DOUBLE_EQ(warm.achieved, plain.achieved);
}

TEST(Bisect, JsonDocumentCarriesTheRankedReport) {
  ThreadPool pool;
  const BisectConfig config = race_config();
  const BisectResult result = bisect(config, pool);
  const json::Value doc = bisect_to_json(config, result);
  EXPECT_EQ(doc.at("schema").as_string(), "anacin-bisect-1");
  EXPECT_EQ(doc.at("pattern").as_string(), "message_race");
  EXPECT_EQ(doc.at("minimal").size(), result.minimal.size());
  ASSERT_EQ(doc.at("report").size(), result.report.size());
  ASSERT_GT(doc.at("report").size(), 0u);
  EXPECT_EQ(doc.at("report").at(0).at("callsite").as_string(),
            "message_race>race_recv>MPI_Recv");
  EXPECT_EQ(doc.at("replay_seed").as_string(), "777");
}

TEST(Bisect, DeterministicProgramYieldsEmptyMinimalSet) {
  ThreadPool pool;
  BisectConfig config = race_config();
  config.pattern = "ping_pong";
  config.shape.num_ranks = 4;
  config.record_sim.num_ranks = 4;
  config.record_sim.network.nd_fraction = 0.0;
  const BisectResult result = bisect(config, pool);
  EXPECT_EQ(result.schedule.total_matches(), 0u);
  EXPECT_TRUE(result.minimal.empty());
  EXPECT_DOUBLE_EQ(result.full_gap, 0.0);
}

}  // namespace
}  // namespace anacin::replay

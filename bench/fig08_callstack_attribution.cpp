// Reproduces Fig 8: callstack visualization for the AMG 2013
// mini-application — the normalized relative frequency of the call paths
// of MPI functions that take place during periods of highly
// non-deterministic execution across the logical time of the event graph.
// Settings follow Fig 7 (32 MPI processes, 100% ND, 1 node, 1 iteration).

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 32;
  int runs = 10;
  int slice_window = 16;
  std::string out = core::results_dir() + "/fig08_callstacks.svg";
  ArgParser parser("Fig 8: callstack frequency in high-ND regions (AMG 2013)");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions to compare", &runs);
  parser.add_int("slice-window", "logical-time slice width", &slice_window);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Fig 8", "callstacks in high-ND logical-time slices, AMG "
                           "2013 on " +
                               std::to_string(ranks) + " processes");

  core::CampaignConfig config;
  config.pattern = "amg2013";
  config.shape.num_ranks = ranks;
  config.nd_fraction = 1.0;
  config.num_runs = runs;
  const core::CampaignResult campaign = core::run_campaign(config, pool);

  const auto kernel = kernels::make_kernel(config.kernel);
  analysis::RootCauseConfig root_config;
  root_config.slice_window = static_cast<std::uint64_t>(slice_window);
  const analysis::RootCauseReport report = analysis::find_root_causes(
      *kernel, config.label_policy, campaign.graphs, root_config, pool);

  std::cout << "high-ND slices (window " << slice_window << "): ";
  for (const std::size_t s : report.hot_slices) std::cout << s << ' ';
  std::cout << "of " << report.profile.distance.size() << " total\n\n";

  std::cout << "normalized relative frequency of call paths in high-ND "
               "regions:\n";
  std::vector<std::string> labels;
  std::vector<double> values;
  std::vector<viz::Bar> bars;
  for (const auto& entry : report.callstacks) {
    labels.push_back(entry.path);
    values.push_back(entry.frequency);
    bars.push_back({entry.path, entry.frequency});
  }
  std::cout << viz::ascii_bar_chart(labels, values) << '\n';

  if (!report.callstacks.empty()) {
    const auto& top = report.callstacks.front();
    std::cout << "likely root source: " << top.path << " (wildcard share "
              << format_fixed(top.wildcard_share * 100.0, 1) << "%)\n";
    std::cout << "paper's expected shape (wildcard receive callsites "
                 "dominate): "
              << (top.wildcard_share > 0.5 &&
                          top.path.find("MPI_Irecv") != std::string::npos
                      ? "REPRODUCED"
                      : "NOT reproduced")
              << '\n';
  }

  // Slice divergence profile as a line plot companion (where in logical
  // time the runs diverge).
  std::vector<viz::Point> profile_points;
  for (std::size_t s = 0; s < report.profile.distance.size(); ++s) {
    profile_points.push_back(
        {static_cast<double>(s), report.profile.distance[s]});
  }
  viz::line_plot({{"mean pairwise slice distance", profile_points}},
                 {.width = 640,
                  .height = 300,
                  .title = "Fig 8 companion: divergence across logical time",
                  .x_label = "logical-time slice",
                  .y_label = "mean kernel distance"})
      .save(core::results_dir() + "/fig08_slice_profile.svg");

  viz::bar_plot(bars, {.width = 760,
                       .height = 320,
                       .title = "Fig 8: callstacks in high-ND regions "
                                "(AMG 2013)",
                       .x_label = "normalized relative frequency",
                       .y_label = ""})
      .save(out);
  bench::note_artifact(out);
  bench::note_artifact(core::results_dir() + "/fig08_slice_profile.svg");
  return 0;
}

// Microbenchmarks of the record/replay layer: what schedule recording,
// forced (all-pinned) replay, and freed (unconstrained) replay cost on
// top of a clean simulation, plus one end-to-end bisection of a small
// message race — the candidate-replay loop `anacin bisect` spends its
// time in.

#include <benchmark/benchmark.h>

#include "core/anacin.hpp"
#include "obs_cli.hpp"
#include "replay/bisect.hpp"

using namespace anacin;

namespace {

sim::SimConfig race_sim(int ranks, std::uint64_t seed) {
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  return config;
}

void BM_RecordSchedule(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  const sim::RankProgram program =
      patterns::make_pattern("message_race")->program(shape);
  const sim::RunResult run = sim::run_simulation(race_sim(ranks, 1), program);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    const sim::ReplaySchedule schedule = replay::record_schedule(run.trace);
    matches += schedule.total_matches();
    benchmark::DoNotOptimize(schedule.wildcard_matches.data());
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(matches), benchmark::Counter::kIsRate);
}

void run_replay_benchmark(benchmark::State& state, bool pinned) {
  const int ranks = static_cast<int>(state.range(0));
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  const sim::RankProgram program =
      patterns::make_pattern("message_race")->program(shape);
  const sim::RunResult recorded =
      sim::run_simulation(race_sim(ranks, 1), program);
  sim::ReplaySchedule schedule = replay::record_schedule(recorded.trace);
  if (!pinned) {
    for (std::size_t i = 0; i < schedule.total_matches(); ++i) {
      schedule.free_entry(i);
    }
  }
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::SimConfig config = race_sim(ranks, 777);
    config.replay = &schedule;
    const sim::RunResult run = sim::run_simulation(config, program);
    events += run.trace.total_events();
    benchmark::DoNotOptimize(run.stats.makespan_us);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_ReplayAllPinned(benchmark::State& state) {
  run_replay_benchmark(state, /*pinned=*/true);
}

void BM_ReplayAllFreed(benchmark::State& state) {
  run_replay_benchmark(state, /*pinned=*/false);
}

void BM_BisectMessageRace(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  replay::BisectConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = ranks;
  config.record_sim = race_sim(ranks, 11);
  config.replay_seed = 777;
  ThreadPool pool;
  std::uint64_t candidates = 0;
  for (auto _ : state) {
    const replay::BisectResult result = replay::bisect(config, pool);
    candidates += result.candidates;
    benchmark::DoNotOptimize(result.minimal.data());
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}

}  // namespace

BENCHMARK(BM_RecordSchedule)->Arg(8)->Arg(16);
BENCHMARK(BM_ReplayAllPinned)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplayAllFreed)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BisectMessageRace)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

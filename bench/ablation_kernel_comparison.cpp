// Ablation: graph-kernel choice. Compares vertex-histogram,
// edge-histogram, and WL subtree kernels on the Fig-7 style ND% sweep:
// all should be ~0 at 0% and grow, with WL the most sensitive (it sees
// subtree context, not just labels or single edges).

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  int runs = 10;
  int step = 25;
  std::string out = core::results_dir() + "/ablation_kernel_comparison.svg";
  ArgParser parser("Ablation: kernel choice vs ND% sensitivity (AMG 2013)");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions per setting", &runs);
  parser.add_int("step", "ND percentage increment", &step);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Ablation: kernel comparison",
                  "AMG 2013 on " + std::to_string(ranks) +
                      " processes; median kernel distance vs ND%");

  const std::vector<std::string> kernel_specs{"vertex_histogram",
                                              "edge_histogram", "wl:2"};
  std::vector<viz::LineSeries> series;
  std::cout << pad_right("nd%", 6);
  for (const auto& spec : kernel_specs) std::cout << pad_left(spec, 18);
  std::cout << '\n';

  std::vector<std::vector<double>> medians(kernel_specs.size());
  for (int percent = 0; percent <= 100; percent += step) {
    std::cout << pad_right(std::to_string(percent), 6);
    for (std::size_t k = 0; k < kernel_specs.size(); ++k) {
      core::CampaignConfig config;
      config.pattern = "amg2013";
      config.shape.num_ranks = ranks;
      config.nd_fraction = percent / 100.0;
      config.num_runs = runs;
      config.kernel = kernel_specs[k];
      const core::CampaignResult result = core::run_campaign(config, pool);
      medians[k].push_back(result.distance_summary.median);
      std::cout << pad_left(format_fixed(result.distance_summary.median, 3),
                            18);
    }
    std::cout << '\n';
  }

  for (std::size_t k = 0; k < kernel_specs.size(); ++k) {
    viz::LineSeries line;
    line.label = kernel_specs[k];
    int percent = 0;
    for (const double median : medians[k]) {
      line.points.push_back({static_cast<double>(percent), median});
      percent += step;
    }
    series.push_back(std::move(line));
  }
  viz::line_plot(series, {.width = 640,
                          .height = 400,
                          .title = "Ablation: kernel sensitivity to ND%",
                          .x_label = "percentage of non-determinism",
                          .y_label = "median kernel distance"})
      .save(out);
  bench::note_artifact(out);

  std::cout << "\ninterpretation: WL dominates the histogram kernels at "
               "every ND level;\nthe final column should show "
               "wl >= edge_histogram >= vertex_histogram.\n";
  return 0;
}

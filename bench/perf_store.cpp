// Microbenchmarks of the content-addressed artifact store: cold campaign
// execution (every artifact computed and written) versus warm re-execution
// (every simulation and kernel distance served from the store), plus the
// raw object put/get path.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/campaign.hpp"
#include "obs_cli.hpp"
#include "store/codec.hpp"
#include "store/hash.hpp"
#include "store/object_store.hpp"
#include "store/store.hpp"

using namespace anacin;
namespace fs = std::filesystem;

namespace {

core::CampaignConfig bench_campaign(std::uint64_t base_seed) {
  core::CampaignConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 8;
  config.nd_fraction = 1.0;
  config.num_runs = 8;
  config.base_seed = base_seed;
  return config;
}

fs::path bench_store_root(const std::string& name) {
  return fs::temp_directory_path() / ("anacin-perf-store-" + name);
}

// Cold: a fresh store and a fresh base_seed per iteration, so nothing —
// not even the process-global reference memo — can serve a cached result.
void BM_CampaignCold(benchmark::State& state) {
  const fs::path root = bench_store_root("cold");
  ThreadPool pool;
  std::uint64_t base_seed = 1000000;
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(root);
    store::ArtifactStore artifacts({root.string()});
    state.ResumeTiming();
    const core::CampaignResult result =
        core::run_campaign(bench_campaign(base_seed++), pool, &artifacts);
    benchmark::DoNotOptimize(result.distance_summary.mean);
  }
  fs::remove_all(root);
}

// Warm: the store is filled once, then every iteration replays the same
// campaign purely from cached artifacts.
void BM_CampaignWarm(benchmark::State& state) {
  const fs::path root = bench_store_root("warm");
  fs::remove_all(root);
  ThreadPool pool;
  store::ArtifactStore artifacts({root.string()});
  run_campaign(bench_campaign(42), pool, &artifacts);
  for (auto _ : state) {
    const core::CampaignResult result =
        core::run_campaign(bench_campaign(42), pool, &artifacts);
    benchmark::DoNotOptimize(result.distance_summary.mean);
  }
  fs::remove_all(root);
}

// Baseline without any store, for the cold-overhead comparison.
void BM_CampaignNoStore(benchmark::State& state) {
  ThreadPool pool;
  std::uint64_t base_seed = 2000000;
  for (auto _ : state) {
    const core::CampaignResult result =
        core::run_campaign(bench_campaign(base_seed++), pool, nullptr);
    benchmark::DoNotOptimize(result.distance_summary.mean);
  }
}

void BM_ObjectPutGet(benchmark::State& state) {
  const fs::path root = bench_store_root("putget");
  fs::remove_all(root);
  store::ObjectStore objects({root.string()});
  const std::vector<double> payload(static_cast<std::size_t>(state.range(0)),
                                    0.5);
  const std::vector<std::uint8_t> blob = store::encode_distances(payload);
  std::uint64_t next = 0;
  for (auto _ : state) {
    const store::Digest key = store::digest_string(std::to_string(next++));
    objects.put(key, store::Kind::kDistances, blob);
    benchmark::DoNotOptimize(objects.get(key));
  }
  state.counters["bytes"] = static_cast<double>(blob.size());
  fs::remove_all(root);
}

}  // namespace

BENCHMARK(BM_CampaignCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignWarm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignNoStore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObjectPutGet)->Arg(1 << 10)->Arg(1 << 16);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

// Reproduces Fig 4 (a and b): two event graph visualizations of the same
// message race configuration (4 MPI processes, 100% non-determinism). The
// two graphs come from independent executions of the same code with the
// same inputs — and their communication patterns differ.

#include <iostream>

#include "common.hpp"

using namespace anacin;

namespace {

std::vector<int> recv_order(const graph::EventGraph& graph) {
  std::vector<int> order;
  for (const graph::EventNode& node : graph.nodes()) {
    if (node.type == trace::EventType::kRecv && node.rank == 0) {
      order.push_back(node.peer);
    }
  }
  return order;
}

}  // namespace

int main(int argc, const char** argv) {
  int ranks = 4;
  std::uint64_t seed_a = 21;
  std::uint64_t seed_b = 22;
  std::string out_dir = core::results_dir();
  ArgParser parser("Fig 4: two non-deterministic runs of the message race");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_uint64("seed-a", "seed of run (a)", &seed_a);
  parser.add_uint64("seed-b", "seed of run (b)", &seed_b);
  parser.add_string("out-dir", "output directory", &out_dir);
  if (!parser.parse(argc, argv)) return 0;

  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.network.nd_fraction = 1.0;  // the paper runs Fig 4 at 100% ND

  // Like the course instructions say, runs may occasionally agree; scan
  // forward from seed_b until the two executions actually differ.
  config.seed = seed_a;
  const graph::EventGraph run_a = graph::EventGraph::from_trace(
      core::run_pattern_once("message_race", shape, config).trace);
  graph::EventGraph run_b;
  for (int attempt = 0; attempt < 64; ++attempt) {
    config.seed = seed_b + static_cast<std::uint64_t>(attempt);
    run_b = graph::EventGraph::from_trace(
        core::run_pattern_once("message_race", shape, config).trace);
    if (recv_order(run_b) != recv_order(run_a)) break;
  }

  bench::announce("Fig 4", "same code, same inputs, two independent runs at "
                           "100% non-determinism");
  std::cout << "run (a), seed " << seed_a << ":\n"
            << viz::ascii_event_graph(run_a) << '\n';
  std::cout << "run (b), seed " << config.seed << ":\n"
            << viz::ascii_event_graph(run_b) << '\n';

  std::cout << "rank 0 receive order (a): ";
  for (const int src : recv_order(run_a)) std::cout << src << ' ';
  std::cout << "\nrank 0 receive order (b): ";
  for (const int src : recv_order(run_b)) std::cout << src << ' ';
  std::cout << "\n=> the message race resolved "
            << (recv_order(run_a) == recv_order(run_b) ? "identically"
                                                       : "differently")
            << " across the two runs\n";

  viz::EventGraphRenderConfig render;
  render.title = "Fig 4a: message race run (a)";
  viz::render_event_graph(run_a, render).save(out_dir + "/fig04a_run_a.svg");
  render.title = "Fig 4b: message race run (b)";
  viz::render_event_graph(run_b, render).save(out_dir + "/fig04b_run_b.svg");
  bench::note_artifact(out_dir + "/fig04a_run_a.svg");
  bench::note_artifact(out_dir + "/fig04b_run_b.svg");
  return 0;
}

// Reproduces Table I (learning objectives) and Table II (prerequisites)
// of the paper's course module.

#include <iostream>

#include "course/module.hpp"

int main() {
  std::cout << anacin::course::render_learning_objectives() << '\n';
  std::cout << anacin::course::render_prerequisites();
  return 0;
}

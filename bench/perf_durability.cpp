// Microbenchmarks of the fsync discipline behind --durability: the raw
// atomic_write_file commit at each tier, and the journal-append path
// (the hot durable write of a sweep) at none vs commit. The committed
// BENCH_durability.json baseline gates the commit-tier journal overhead
// in CI — see the "Durability model" section of docs/RESILIENCE.md.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/journal.hpp"
#include "obs_cli.hpp"
#include "support/fs.hpp"
#include "support/io_chaos.hpp"
#include "support/json.hpp"

using namespace anacin;
namespace fs = std::filesystem;

namespace {

fs::path bench_root(const std::string& name) {
  const fs::path root =
      fs::temp_directory_path() / ("anacin-perf-durability-" + name);
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

// One atomic_write_file commit (4 KiB payload) per iteration at the tier
// named by the arg. The delta between tiers is the pure fsync cost: tier 0
// pays only the rename, tiers 1+ add a data-file fsync before the rename
// and a directory fsync after it.
void BM_AtomicWrite(benchmark::State& state) {
  const auto level = static_cast<support::Durability>(state.range(0));
  const fs::path root =
      bench_root(std::string("write-") + support::durability_name(level));
  support::set_durability(level);
  const std::string payload(4096, 'x');
  const std::string target = (root / "report.json").string();
  for (auto _ : state) {
    support::atomic_write_file(target, payload,
                               support::PathClass::kReport);
  }
  support::set_durability(support::Durability::kNone);
  state.SetLabel(support::durability_name(level));
  fs::remove_all(root);
}

// Journal appends — the write that dominates a sweep's durable I/O. Each
// record() rewrites the whole journal through atomic_write_file, so a
// batch of appends measures the realistic growing-file cost, not a
// single fixed-size commit. 32 records per iteration keeps the file-size
// distribution identical across iterations and tiers.
void BM_JournalAppend(benchmark::State& state) {
  const auto level = static_cast<support::Durability>(state.range(0));
  const fs::path root =
      bench_root(std::string("journal-") + support::durability_name(level));
  support::set_durability(level);
  constexpr int kRecords = 32;
  std::uint64_t generation = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path =
        (root / ("sweep-" + std::to_string(generation++) + ".jsonl"))
            .string();
    core::CampaignJournal journal(path, "bench-campaign");
    state.ResumeTiming();
    for (int i = 0; i < kRecords; ++i) {
      json::Value payload = json::Value::object();
      payload.set("median", 0.25 * i);
      payload.set("iqr", 0.01 * i);
      journal.record("point-" + std::to_string(i), std::move(payload));
    }
  }
  support::set_durability(support::Durability::kNone);
  state.SetLabel(support::durability_name(level));
  state.SetItemsProcessed(state.iterations() * kRecords);
  fs::remove_all(root);
}

}  // namespace

BENCHMARK(BM_AtomicWrite)
    ->Arg(static_cast<int>(support::Durability::kNone))
    ->Arg(static_cast<int>(support::Durability::kCommit))
    ->Arg(static_cast<int>(support::Durability::kParanoid))
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JournalAppend)
    ->Arg(static_cast<int>(support::Durability::kNone))
    ->Arg(static_cast<int>(support::Durability::kCommit))
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

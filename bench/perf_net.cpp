// The wire cost of the distributed fabric: frame encode/decode throughput
// for the unified codec (what every unit, object, and heartbeat pays) and
// the loopback TCP round-trip latency of one framed request/response —
// the per-unit floor `anacin serve` adds over a local worker pool. Every
// frame benchmark runs at both protocol versions (second arg: 1 = legacy
// no-trailer framing, 2 = CRC32C trailer), so the integrity tax of v2 is
// a first-class, regression-gated number: the CI chaos-smoke job asserts
// the v2 loopback round trip stays within 5% of v1 at 64 bytes (the
// control-plane frame size, where the CRC hides under the syscalls) and
// within a coarse ceiling at 4 KiB (bulk frames are throughput-bound:
// four CRC passes per round trip at ~10 GB/s — see BM_Crc32c — are an
// irreducible fraction of loopback bandwidth), and archives the run
// against the committed BENCH_net.json baseline.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "proc/protocol.hpp"
#include "support/crc32c.hpp"

using namespace anacin;

namespace {

std::string payload_of(std::size_t size) {
  std::string payload(size, '\0');
  // Deterministic non-trivial bytes so memcmp-style dedup can't cheat.
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<char>((i * 131u + 7u) & 0xffu);
  }
  return payload;
}

std::uint16_t version_arg(const benchmark::State& state) {
  return static_cast<std::uint16_t>(state.range(1));
}

/// Raw CRC32C throughput — the ceiling on what the v2 trailer can cost.
/// Picks the hardware (SSE4.2) path where available, slice-by-8 otherwise.
void BM_Crc32c(benchmark::State& state) {
  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        support::crc32c(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4 << 10)->Arg(256 << 10);

/// encode_frame: one header + memcpy (+ CRC32C at v2) per frame; the
/// write path of both transports.
void BM_FrameEncode(benchmark::State& state) {
  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  const std::uint16_t version = version_arg(state);
  for (auto _ : state) {
    const std::vector<char> buffer =
        proc::encode_frame(proc::FrameType::kObject, payload, version);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(payload.size() + proc::frame_overhead(version)));
}
BENCHMARK(BM_FrameEncode)
    ->Args({64, 1})->Args({64, 2})
    ->Args({4 << 10, 1})->Args({4 << 10, 2})
    ->Args({256 << 10, 1})->Args({256 << 10, 2});

/// Header parse + payload read (+ trailer verify at v2) through a pipe —
/// the read path, including the syscalls a real frame costs.
void BM_FrameDecodeThroughPipe(benchmark::State& state) {
  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  const std::uint16_t version = version_arg(state);
  int fds[2];
  if (::pipe(fds) != 0) {
    state.SkipWithError("pipe() failed");
    return;
  }
  for (auto _ : state) {
    if (!proc::write_frame(fds[1], proc::FrameType::kObject, payload,
                           version)) {
      state.SkipWithError("write_frame failed");
      break;
    }
    const proc::ReadResult got = proc::read_frame(fds[0], 10'000, version);
    if (!got) {
      state.SkipWithError("read_frame failed");
      break;
    }
    benchmark::DoNotOptimize(got.frame.payload.data());
  }
  ::close(fds[0]);
  ::close(fds[1]);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(payload.size() + proc::frame_overhead(version)));
}
// Pipe capacity bounds the in-flight frame; stay under 64 KiB.
BENCHMARK(BM_FrameDecodeThroughPipe)
    ->Args({64, 1})->Args({64, 2})
    ->Args({4 << 10, 1})->Args({4 << 10, 2})
    ->Args({48 << 10, 1})->Args({48 << 10, 2});

/// One framed request/response over loopback TCP — the synchronous
/// per-unit round trip between scheduler and agent. The echo peer mirrors
/// an agent answering a kRequest with a kResult. Comparing the v1 and v2
/// rows of this benchmark is the end-to-end CRC overhead the CI gate
/// enforces: two checksum computations and two verifications per
/// iteration. At 64 bytes they bury under the four syscalls (<5% gate);
/// at larger sizes the four passes are a fixed fraction of loopback
/// bandwidth and the gate is a coarse regression ceiling instead.
void BM_LoopbackRoundTrip(benchmark::State& state) {
  const std::uint16_t version = version_arg(state);
  net::TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<net::TcpConnection> client;
  std::thread dialer([&] {
    client = net::TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<net::TcpConnection> server = listener.accept(5000);
  dialer.join();
  if (server == nullptr || client == nullptr) {
    state.SkipWithError("loopback connect failed");
    return;
  }
  client->set_version(version);
  server->set_version(version);

  std::thread echo([&] {
    for (;;) {
      proc::ReadResult request = server->recv_frame(-1);
      if (!request) break;  // client closed: bench finished
      if (!server->send_frame(proc::FrameType::kResult,
                              request.frame.payload)) {
        break;
      }
    }
  });

  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    if (!client->send_frame(proc::FrameType::kRequest, payload)) {
      state.SkipWithError("send failed");
      break;
    }
    const proc::ReadResult reply = client->recv_frame(10'000);
    if (!reply) {
      state.SkipWithError("recv failed");
      break;
    }
    benchmark::DoNotOptimize(reply.frame.payload.data());
  }

  client->close();
  echo.join();
  server->close();
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 2 *
      static_cast<std::int64_t>(payload.size() + proc::frame_overhead(version)));
}
BENCHMARK(BM_LoopbackRoundTrip)
    ->Args({64, 1})->Args({64, 2})
    ->Args({4 << 10, 1})->Args({4 << 10, 2})
    ->Args({256 << 10, 1})->Args({256 << 10, 2});

}  // namespace

BENCHMARK_MAIN();

// The wire cost of the distributed fabric: frame encode/decode throughput
// for the unified codec (what every unit, object, and heartbeat pays) and
// the loopback TCP round-trip latency of one framed request/response —
// the per-unit floor `anacin serve` adds over a local worker pool. The CI
// distributed-smoke job archives this as BENCH_net.json.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "proc/protocol.hpp"

using namespace anacin;

namespace {

std::string payload_of(std::size_t size) {
  std::string payload(size, '\0');
  // Deterministic non-trivial bytes so memcmp-style dedup can't cheat.
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<char>((i * 131u + 7u) & 0xffu);
  }
  return payload;
}

/// encode_frame: one header + memcpy per frame; the write path of both
/// transports.
void BM_FrameEncode(benchmark::State& state) {
  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const std::vector<char> buffer =
        proc::encode_frame(proc::FrameType::kObject, payload);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size() + 5));
}
BENCHMARK(BM_FrameEncode)->Arg(64)->Arg(4 << 10)->Arg(256 << 10);

/// Header parse + payload read through a pipe — the read path, including
/// the syscalls a real frame costs.
void BM_FrameDecodeThroughPipe(benchmark::State& state) {
  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  int fds[2];
  if (::pipe(fds) != 0) {
    state.SkipWithError("pipe() failed");
    return;
  }
  for (auto _ : state) {
    if (!proc::write_frame(fds[1], proc::FrameType::kObject, payload)) {
      state.SkipWithError("write_frame failed");
      break;
    }
    const proc::ReadResult got = proc::read_frame(fds[0], 10'000);
    if (!got) {
      state.SkipWithError("read_frame failed");
      break;
    }
    benchmark::DoNotOptimize(got.frame.payload.data());
  }
  ::close(fds[0]);
  ::close(fds[1]);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size() + 5));
}
// Pipe capacity bounds the in-flight frame; stay under 64 KiB.
BENCHMARK(BM_FrameDecodeThroughPipe)->Arg(64)->Arg(4 << 10)->Arg(48 << 10);

/// One framed request/response over loopback TCP — the synchronous
/// per-unit round trip between scheduler and agent. The echo peer mirrors
/// an agent answering a kRequest with a kResult.
void BM_LoopbackRoundTrip(benchmark::State& state) {
  net::TcpListener listener("127.0.0.1", 0);
  std::unique_ptr<net::TcpConnection> client;
  std::thread dialer([&] {
    client = net::TcpConnection::connect("127.0.0.1", listener.port(), 5000);
  });
  std::unique_ptr<net::TcpConnection> server = listener.accept(5000);
  dialer.join();
  if (server == nullptr || client == nullptr) {
    state.SkipWithError("loopback connect failed");
    return;
  }

  std::thread echo([&] {
    for (;;) {
      proc::ReadResult request = server->recv_frame(-1);
      if (!request) break;  // client closed: bench finished
      if (!server->send_frame(proc::FrameType::kResult,
                              request.frame.payload)) {
        break;
      }
    }
  });

  const std::string payload = payload_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    if (!client->send_frame(proc::FrameType::kRequest, payload)) {
      state.SkipWithError("send failed");
      break;
    }
    const proc::ReadResult reply = client->recv_frame(10'000);
    if (!reply) {
      state.SkipWithError("recv failed");
      break;
    }
    benchmark::DoNotOptimize(reply.frame.payload.data());
  }

  client->close();
  echo.join();
  server->close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(payload.size() + 5));
}
BENCHMARK(BM_LoopbackRoundTrip)->Arg(64)->Arg(4 << 10)->Arg(256 << 10);

}  // namespace

BENCHMARK_MAIN();

#pragma once

/// Shared helpers for the figure/table reproduction binaries.

#include <iostream>
#include <string>
#include <vector>

#include "core/anacin.hpp"
#include "support/string_util.hpp"

namespace anacin::bench {

/// Print one summary row of a kernel-distance sample.
inline void print_summary_row(const std::string& label,
                              const analysis::Summary& summary) {
  std::cout << pad_right(label, 26) << " n=" << pad_right(
                   std::to_string(summary.count), 4)
            << " median=" << pad_left(format_fixed(summary.median, 3), 10)
            << " mean=" << pad_left(format_fixed(summary.mean, 3), 10)
            << " q1=" << pad_left(format_fixed(summary.q1, 3), 10)
            << " q3=" << pad_left(format_fixed(summary.q3, 3), 10)
            << " max=" << pad_left(format_fixed(summary.max, 3), 10) << '\n';
}

/// Build a violin series entry from a distance sample.
inline viz::ViolinSeries violin_series(const std::string& label,
                                       const std::vector<double>& sample) {
  return viz::ViolinSeries{label, analysis::gaussian_kde(sample)};
}

inline void announce(const std::string& figure, const std::string& caption) {
  std::cout << "==============================================================\n"
            << figure << ": " << caption << '\n'
            << "==============================================================\n";
}

inline void note_artifact(const std::string& path) {
  std::cout << "[artifact] " << path << '\n';
}

}  // namespace anacin::bench

// Beyond the paper's figures: communication-matrix heatmaps of the three
// packaged mini-applications — the classic way to *see* why the patterns
// have different complexity (message race: one hot column; AMG 2013: a
// dense all-to-all; unstructured mesh: a sparse random stencil).

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  std::string out_dir = core::results_dir();
  ArgParser parser("Communication matrices of the packaged mini-apps");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_string("out-dir", "output directory", &out_dir);
  if (!parser.parse(argc, argv)) return 0;

  bench::announce("Extra: communication matrices",
                  "message counts per rank pair, " + std::to_string(ranks) +
                      " processes");

  for (const std::string pattern :
       {"message_race", "amg2013", "unstructured_mesh"}) {
    patterns::PatternConfig shape;
    shape.num_ranks = ranks;
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.network.nd_fraction = 0.0;
    const sim::RunResult run =
        core::run_pattern_once(pattern, shape, config);
    const graph::CommMatrix matrix = graph::communication_matrix(
        graph::EventGraph::from_trace(run.trace));

    std::cout << "--- " << pattern << " (" << matrix.total_messages()
              << " messages) ---\n";
    if (ranks <= 16) std::cout << viz::ascii_comm_matrix(matrix);
    const std::string path = out_dir + "/comm_matrix_" + pattern + ".svg";
    viz::comm_matrix_heatmap(matrix, "communication matrix: " + pattern)
        .save(path);
    bench::note_artifact(path);
  }
  return 0;
}

// Ablation: WL node-label policy. With labels that ignore the matched
// peer, the two matchings of a symmetric message race are isomorphic
// graphs and the kernel distance is blind to the race; including the peer
// rank (the library default) makes matching-order differences visible.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  int runs = 20;
  ArgParser parser("Ablation: label policy vs measured non-determinism");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions per policy", &runs);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Ablation: label policy",
                  "message race on " + std::to_string(ranks) +
                      " processes at 100% ND, " + std::to_string(runs) +
                      " runs, WL depth 2");

  for (const kernels::LabelPolicy policy :
       {kernels::LabelPolicy::kTypeOnly, kernels::LabelPolicy::kTypePeer,
        kernels::LabelPolicy::kTypePeerTag,
        kernels::LabelPolicy::kTypeCallstack,
        kernels::LabelPolicy::kTypePeerCallstack}) {
    core::CampaignConfig config;
    config.pattern = "message_race";
    config.shape.num_ranks = ranks;
    config.nd_fraction = 1.0;
    config.num_runs = runs;
    config.label_policy = policy;
    const core::CampaignResult result = core::run_campaign(config, pool);
    bench::print_summary_row(
        std::string(kernels::label_policy_name(policy)),
        result.distance_summary);
  }
  std::cout << "\ninterpretation: type_only measures ~0 despite the races "
               "(isomorphic matchings);\npolicies that include the matched "
               "peer expose them — hence the kTypePeer default.\n";
  return 0;
}

// Reproduces Fig 3: event graph visualization of the AMG 2013
// communication pattern on two MPI processes (each process sends a message
// to the other and receives asynchronously; the pattern runs twice).

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 2;
  std::string out = core::results_dir() + "/fig03_amg2013.svg";
  ArgParser parser("Fig 3: AMG 2013 event graph");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.network.nd_fraction = 0.0;
  const sim::RunResult run = core::run_pattern_once("amg2013", shape, config);
  const graph::EventGraph graph = graph::EventGraph::from_trace(run.trace);

  bench::announce("Fig 3", "AMG 2013 pattern on " + std::to_string(ranks) +
                               " MPI processes");
  std::cout << viz::ascii_event_graph(graph);

  viz::EventGraphRenderConfig render;
  render.title =
      "Fig 3: AMG 2013 pattern, " + std::to_string(ranks) + " MPI processes";
  viz::render_event_graph(graph, render).save(out);
  bench::note_artifact(out);
  return 0;
}

// Reproduces Fig 6: kernel distances for 20 executions of the Unstructured
// Mesh mini-application on 16 MPI processes with (a) two iterations vs
// (b) one iteration of the core application code, at 100% non-determinism.
// Expected shape: more iterations => higher kernel distance.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  int runs = 20;
  std::string out = core::results_dir() + "/fig06_iteration_scaling.svg";
  ArgParser parser("Fig 6: kernel distance vs communication pattern "
                   "iterations (unstructured mesh, 100% ND)");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions per setting", &runs);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  const auto campaign = [&](int iterations) {
    core::CampaignConfig config;
    config.pattern = "unstructured_mesh";
    config.shape.num_ranks = ranks;
    config.shape.iterations = iterations;
    config.nd_fraction = 1.0;
    config.num_runs = runs;
    return core::run_campaign(config, pool);
  };

  bench::announce("Fig 6", "kernel distances, unstructured mesh on " +
                               std::to_string(ranks) +
                               " processes, 2 vs 1 iterations, " +
                               std::to_string(runs) + " runs");
  const core::CampaignResult two = campaign(2);
  const core::CampaignResult one = campaign(1);

  bench::print_summary_row("(a) 2 iterations", two.distance_summary);
  bench::print_summary_row("(b) 1 iteration", one.distance_summary);
  const double p = analysis::mann_whitney_u(two.measurement.distances,
                                            one.measurement.distances)
                       .p_value;
  std::cout << "Mann-Whitney p-value (a vs b): " << p << '\n';
  std::cout << "paper's expected shape (2-iteration median > 1-iteration "
               "median): "
            << (two.distance_summary.median > one.distance_summary.median
                    ? "REPRODUCED"
                    : "NOT reproduced")
            << '\n';

  viz::violin_plot(
      {bench::violin_series("1 iteration", one.measurement.distances),
       bench::violin_series("2 iterations", two.measurement.distances)},
      {.width = 520,
       .height = 380,
       .title = "Fig 6: kernel distance vs pattern iterations",
       .x_label = "iterations of the core application code",
       .y_label = "kernel distance"})
      .save(out);
  bench::note_artifact(out);
  return 0;
}

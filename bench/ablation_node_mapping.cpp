// Ablation: compute-node count. Inter-node links carry larger jitter, so
// spreading ranks over more nodes raises the measured non-determinism at a
// fixed (partial) ND fraction — the paper's advice to run Fig-4 style
// lessons across multiple compute nodes.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  int runs = 15;
  double nd_percent = 5.0;
  ArgParser parser("Ablation: compute nodes vs measured non-determinism");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions per setting", &runs);
  parser.add_double("nd-percent", "percentage of non-determinism",
                    &nd_percent);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Ablation: node mapping",
                  "AMG 2013 on " + std::to_string(ranks) + " processes at " +
                      format_fixed(nd_percent, 0) + "% ND");

  for (const int nodes : {1, 2, 4, 8}) {
    if (nodes > ranks) break;
    core::CampaignConfig config;
    config.pattern = "amg2013";
    config.shape.num_ranks = ranks;
    config.num_nodes = nodes;
    config.nd_fraction = nd_percent / 100.0;
    config.num_runs = runs;
    const core::CampaignResult result = core::run_campaign(config, pool);
    bench::print_summary_row(std::to_string(nodes) + " node(s)",
                             result.distance_summary);
  }
  std::cout << "\ninterpretation: larger inter-node jitter should keep the "
               "multi-node medians\nat or above the single-node median.\n";
  return 0;
}

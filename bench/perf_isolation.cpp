// Overhead of --isolate=process: on a warm store every dispatched unit is
// answered from the cache by the worker child, so the isolated-minus-
// in-process delta is the pure sandboxing cost (fork/exec amortized by
// worker reuse, plus one pipe-protocol round trip per unit). The CI
// isolation-smoke job archives this as BENCH_isolation.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/campaign.hpp"
#include "obs_cli.hpp"
#include "proc/worker_main.hpp"
#include "proc/worker_pool.hpp"
#include "store/store.hpp"

#ifndef ANACIN_CLI_PATH
#error "ANACIN_CLI_PATH must point at the anacin executable"
#endif

using namespace anacin;
namespace fs = std::filesystem;

namespace {

core::CampaignConfig bench_campaign() {
  core::CampaignConfig config;
  config.pattern = "message_race";
  config.shape.num_ranks = 8;
  config.num_runs = 8;
  config.base_seed = 42;
  return config;
}

// Work units per campaign under the kToReference reduction: num_runs
// simulations + the reference + num_runs pair distances.
constexpr double kUnitsPerCampaign = 17.0;

fs::path bench_store_root(const std::string& name) {
  return fs::temp_directory_path() / ("anacin-perf-isolation-" + name);
}

proc::WorkerPoolConfig pool_config(const fs::path& root) {
  proc::WorkerPoolConfig config;
  config.worker_exe = ANACIN_CLI_PATH;
  config.store_dir = root.string();
  return config;
}

/// Fill `root` with every artifact of the bench campaign.
void warm_store(const fs::path& root, ThreadPool& pool) {
  fs::remove_all(root);
  store::ArtifactStore artifacts({root.string()});
  core::run_campaign(bench_campaign(), pool, &artifacts);
}

// Baseline: a warm campaign executed in-process (every unit is a store
// lookup on this side of any process boundary).
void BM_WarmCampaignInProcess(benchmark::State& state) {
  const fs::path root = bench_store_root("inproc");
  ThreadPool pool;
  warm_store(root, pool);
  store::ArtifactStore artifacts({root.string()});
  for (auto _ : state) {
    const core::CampaignResult result =
        core::run_campaign(bench_campaign(), pool, &artifacts);
    benchmark::DoNotOptimize(result.distance_summary.mean);
  }
  state.counters["units_per_iter"] = kUnitsPerCampaign;
  fs::remove_all(root);
}

// The same warm campaign with every unit dispatched to sandboxed worker
// children. (time_isolated - time_inprocess) / units_per_iter is the
// per-unit isolation overhead quoted in docs/RESILIENCE.md.
void BM_WarmCampaignIsolated(benchmark::State& state) {
  const fs::path root = bench_store_root("isolated");
  ThreadPool pool;
  warm_store(root, pool);
  store::ArtifactStore artifacts({root.string()});
  proc::WorkerPool workers(pool_config(root));
  core::ResilienceOptions resilience;
  resilience.executor = &workers;
  for (auto _ : state) {
    const core::CampaignResult result =
        core::run_campaign(bench_campaign(), pool, &artifacts, resilience);
    benchmark::DoNotOptimize(result.distance_summary.mean);
  }
  state.counters["units_per_iter"] = kUnitsPerCampaign;
  fs::remove_all(root);
}

// One warm run unit through the pipe protocol: the purest per-unit cost
// (the child answers from the cache without simulating anything).
void BM_WarmUnitDispatch(benchmark::State& state) {
  const fs::path root = bench_store_root("unit");
  ThreadPool pool;
  warm_store(root, pool);
  store::ArtifactStore artifacts({root.string()});
  proc::WorkerPool workers(pool_config(root));
  const core::CampaignConfig config = bench_campaign();
  const json::Value request = proc::make_run_request(
      "run:0", config.pattern, config.shape, config.sim_config_for_run(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(workers.execute("run:0", request));
  }
  fs::remove_all(root);
}

// The in-process equivalent of one warm unit: a store lookup.
void BM_WarmUnitInProcess(benchmark::State& state) {
  const fs::path root = bench_store_root("lookup");
  ThreadPool pool;
  warm_store(root, pool);
  store::ArtifactStore artifacts({root.string()});
  const core::CampaignConfig config = bench_campaign();
  const store::Digest key = store::ArtifactStore::run_key(
      config.pattern, config.shape, config.sim_config_for_run(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(artifacts.load_run(key));
  }
  fs::remove_all(root);
}

}  // namespace

BENCHMARK(BM_WarmCampaignInProcess)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmCampaignIsolated)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmUnitDispatch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WarmUnitInProcess)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

// Reproduces Fig 5: kernel distances for 20 executions of the Unstructured
// Mesh mini-application on (a) 32 MPI processes vs (b) 16 MPI processes,
// at 100% non-determinism. Expected shape: more processes => higher kernel
// distance (more non-determinism).

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int many = 32;
  int few = 16;
  int runs = 20;
  std::string out = core::results_dir() + "/fig05_process_scaling.svg";
  ArgParser parser("Fig 5: kernel distance vs number of MPI processes "
                   "(unstructured mesh, 100% ND)");
  parser.add_int("many", "larger process count (a)", &many);
  parser.add_int("few", "smaller process count (b)", &few);
  parser.add_int("runs", "executions per setting", &runs);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  const auto campaign = [&](int ranks) {
    core::CampaignConfig config;
    config.pattern = "unstructured_mesh";
    config.shape.num_ranks = ranks;
    config.nd_fraction = 1.0;
    config.num_runs = runs;
    return core::run_campaign(config, pool);
  };

  bench::announce("Fig 5",
                  "kernel distances, unstructured mesh, " +
                      std::to_string(many) + " vs " + std::to_string(few) +
                      " MPI processes, " + std::to_string(runs) + " runs");
  const core::CampaignResult result_many = campaign(many);
  const core::CampaignResult result_few = campaign(few);

  bench::print_summary_row("(a) " + std::to_string(many) + " processes",
                           result_many.distance_summary);
  bench::print_summary_row("(b) " + std::to_string(few) + " processes",
                           result_few.distance_summary);

  const double p =
      analysis::mann_whitney_u(result_many.measurement.distances,
                               result_few.measurement.distances)
          .p_value;
  std::cout << "Mann-Whitney p-value (a vs b): " << p << '\n';
  std::cout << "paper's expected shape ("
            << many << "p median > " << few << "p median): "
            << (result_many.distance_summary.median >
                        result_few.distance_summary.median
                    ? "REPRODUCED"
                    : "NOT reproduced")
            << '\n';

  std::cout << "\ndistance sample (a), " << many << " processes:\n"
            << viz::ascii_histogram(result_many.measurement.distances);
  std::cout << "distance sample (b), " << few << " processes:\n"
            << viz::ascii_histogram(result_few.measurement.distances);

  viz::violin_plot(
      {bench::violin_series(std::to_string(few) + " procs",
                            result_few.measurement.distances),
       bench::violin_series(std::to_string(many) + " procs",
                            result_many.measurement.distances)},
      {.width = 520,
       .height = 380,
       .title = "Fig 5: kernel distance vs number of MPI processes",
       .x_label = "MPI processes",
       .y_label = "kernel distance"})
      .save(out);
  bench::note_artifact(out);
  return 0;
}

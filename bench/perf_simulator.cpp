// Microbenchmarks of the discrete-event MPI simulator substrate:
// end-to-end simulation throughput for each packaged mini-application.

#include <benchmark/benchmark.h>

#include "core/campaign.hpp"
#include "obs_cli.hpp"

using namespace anacin;

namespace {

void run_pattern_benchmark(benchmark::State& state,
                           const std::string& pattern) {
  const int ranks = static_cast<int>(state.range(0));
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  const sim::RankProgram program =
      patterns::make_pattern(pattern)->program(shape);

  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.seed = seed++;
    config.network.nd_fraction = 1.0;
    const sim::RunResult result = sim::run_simulation(config, program);
    events += result.trace.total_events();
    messages += result.stats.messages;
    benchmark::DoNotOptimize(result.stats.makespan_us);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
}

void BM_SimMessageRace(benchmark::State& state) {
  run_pattern_benchmark(state, "message_race");
}
void BM_SimAmg2013(benchmark::State& state) {
  run_pattern_benchmark(state, "amg2013");
}
void BM_SimUnstructuredMesh(benchmark::State& state) {
  run_pattern_benchmark(state, "unstructured_mesh");
}

void BM_EventGraphBuild(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  sim::SimConfig config;
  config.num_ranks = ranks;
  const sim::RunResult run =
      core::run_pattern_once("amg2013", shape, config);
  for (auto _ : state) {
    const graph::EventGraph graph = graph::EventGraph::from_trace(run.trace);
    benchmark::DoNotOptimize(graph.max_lamport());
  }
  state.counters["nodes"] =
      static_cast<double>(run.trace.total_events());
}

}  // namespace

BENCHMARK(BM_SimMessageRace)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimAmg2013)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimUnstructuredMesh)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventGraphBuild)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

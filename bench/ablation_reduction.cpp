// Ablation: distance-reduction mode. The paper's violins use one data
// point per execution; this repository supports both "distance to a
// jitter-free reference" (N points) and "all pairwise distances"
// (N-choose-2 points). The qualitative conclusions — who has more
// non-determinism — must not depend on the choice.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int runs = 15;
  ArgParser parser("Ablation: to-reference vs pairwise distance reduction");
  parser.add_int("runs", "executions per setting", &runs);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Ablation: distance reduction",
                  "unstructured mesh, 16 vs 8 ranks at 100% ND, " +
                      std::to_string(runs) + " runs");

  const auto measure = [&](int ranks,
                           analysis::DistanceReduction reduction) {
    core::CampaignConfig config;
    config.pattern = "unstructured_mesh";
    config.shape.num_ranks = ranks;
    config.nd_fraction = 1.0;
    config.num_runs = runs;
    config.reduction = reduction;
    return core::run_campaign(config, pool);
  };

  for (const auto reduction : {analysis::DistanceReduction::kToReference,
                               analysis::DistanceReduction::kPairwise}) {
    const char* name =
        reduction == analysis::DistanceReduction::kToReference
            ? "to_reference"
            : "pairwise";
    const core::CampaignResult big = measure(16, reduction);
    const core::CampaignResult small = measure(8, reduction);
    std::cout << "reduction = " << name << " (" <<
        big.measurement.distances.size() << " points per setting)\n";
    bench::print_summary_row("  16 ranks", big.distance_summary);
    bench::print_summary_row("  8 ranks", small.distance_summary);
    const double delta = analysis::cliffs_delta(
        big.measurement.distances, small.measurement.distances);
    std::cout << "  Cliff's delta (16 vs 8) = " << format_fixed(delta, 3)
              << (delta > 0.474 ? "  (large effect)" : "") << '\n';
    std::cout << "  ordering preserved: "
              << (big.distance_summary.median > small.distance_summary.median
                      ? "YES"
                      : "NO")
              << "\n\n";
  }
  std::cout << "interpretation: both reductions rank the settings "
               "identically; the paper's\nper-execution violins "
               "(to_reference) are the default because 20 runs give 20\n"
               "independent points rather than 190 correlated pairs.\n";
  return 0;
}

// Microbenchmarks of the fault-injection layer: what message drops,
// duplicates, and stragglers cost on top of a clean simulation, and how
// expensive the FaultModel sampling itself is.

#include <benchmark/benchmark.h>

#include "core/campaign.hpp"
#include "obs_cli.hpp"
#include "sim/faults.hpp"

using namespace anacin;

namespace {

void run_fault_benchmark(benchmark::State& state,
                         const sim::FaultConfig& faults) {
  const int ranks = static_cast<int>(state.range(0));
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  const sim::RankProgram program =
      patterns::make_pattern("amg2013")->program(shape);

  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  for (auto _ : state) {
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.seed = seed++;
    config.network.nd_fraction = 1.0;
    config.faults = faults;
    const sim::RunResult result = sim::run_simulation(config, program);
    events += result.trace.total_events();
    drops += result.stats.drops;
    duplicates += result.stats.duplicates;
    benchmark::DoNotOptimize(result.stats.makespan_us);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["drops"] = static_cast<double>(drops);
  state.counters["duplicates"] = static_cast<double>(duplicates);
}

void BM_SimNoFaults(benchmark::State& state) {
  run_fault_benchmark(state, sim::FaultConfig{});
}

void BM_SimWithDrops(benchmark::State& state) {
  sim::FaultConfig faults;
  faults.drop_probability = 0.05;
  run_fault_benchmark(state, faults);
}

void BM_SimWithDuplicates(benchmark::State& state) {
  sim::FaultConfig faults;
  faults.duplicate_probability = 0.05;
  run_fault_benchmark(state, faults);
}

void BM_SimWithStragglers(benchmark::State& state) {
  sim::FaultConfig faults;
  faults.straggler_ranks = {0, 1};
  faults.straggler_multiplier = 4.0;
  run_fault_benchmark(state, faults);
}

void BM_SimKitchenSink(benchmark::State& state) {
  sim::FaultConfig faults;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.05;
  faults.straggler_ranks = {0};
  run_fault_benchmark(state, faults);
}

void BM_FaultModelSampling(benchmark::State& state) {
  sim::FaultConfig faults;
  faults.drop_probability = 0.05;
  faults.duplicate_probability = 0.05;
  sim::FaultModel model(faults, 32, 2, Rng(1));
  std::uint64_t samples = 0;
  for (auto _ : state) {
    const auto fate = model.sample_message(0, 1);
    benchmark::DoNotOptimize(fate.dropped_attempts);
    ++samples;
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SimNoFaults)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimWithDrops)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimWithDuplicates)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimWithStragglers)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimKitchenSink)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultModelSampling);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

// Ablation: record-and-replay (the ReMPI tool class from the paper's
// Related Work). Measures kernel distance of noisy runs with and without a
// recorded matching schedule: replay must collapse the measured
// non-determinism to ~0.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  int runs = 10;
  ArgParser parser("Ablation: replay suppresses measured non-determinism");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "replayed executions", &runs);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Ablation: record-and-replay",
                  "unstructured mesh on " + std::to_string(ranks) +
                      " processes at 100% ND");

  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  const sim::RankProgram program =
      patterns::make_pattern("unstructured_mesh")->program(shape);

  sim::SimConfig record_config;
  record_config.num_ranks = ranks;
  record_config.seed = 7;
  record_config.network.nd_fraction = 1.0;
  const sim::RunResult recorded = sim::run_simulation(record_config, program);
  const sim::ReplaySchedule schedule = replay::record_schedule(recorded.trace);
  const auto reference = graph::EventGraph::from_trace(recorded.trace);

  const auto kernel = kernels::make_kernel("wl:2");
  const auto measure = [&](bool with_replay) {
    std::vector<graph::EventGraph> graphs;
    for (int i = 0; i < runs; ++i) {
      sim::SimConfig config = record_config;
      config.seed = 1000 + static_cast<std::uint64_t>(i);
      if (with_replay) config.replay = &schedule;
      graphs.push_back(graph::EventGraph::from_trace(
          sim::run_simulation(config, program).trace));
    }
    return analysis::measure_nd(*kernel, kernels::LabelPolicy::kTypePeer,
                                graphs, &reference,
                                analysis::DistanceReduction::kToReference,
                                pool);
  };

  const analysis::NdMeasurement without = measure(false);
  const analysis::NdMeasurement with = measure(true);
  bench::print_summary_row("without replay",
                           analysis::summarize(without.distances));
  bench::print_summary_row("with replay",
                           analysis::summarize(with.distances));
  std::cout << "recorded wildcard matches: " << schedule.total_matches()
            << '\n';
  std::cout << "expected shape (replay distance == 0): "
            << (analysis::summarize(with.distances).max == 0.0
                    ? "REPRODUCED"
                    : "NOT reproduced")
            << '\n';
  return 0;
}

// Ablation: WL iteration depth h. Deeper relabelling sees larger subtree
// context (non-decreasing measured distance) at linearly growing cost.

#include <chrono>
#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 16;
  int runs = 10;
  ArgParser parser("Ablation: WL depth vs sensitivity and cost (AMG 2013)");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions per depth", &runs);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Ablation: WL depth",
                  "AMG 2013 on " + std::to_string(ranks) +
                      " processes at 100% ND");

  std::cout << pad_right("depth", 7) << pad_left("median", 12)
            << pad_left("mean", 12) << pad_left("features ms", 14) << '\n';
  for (int depth = 0; depth <= 4; ++depth) {
    core::CampaignConfig config;
    config.pattern = "amg2013";
    config.shape.num_ranks = ranks;
    config.nd_fraction = 1.0;
    config.num_runs = runs;
    config.kernel = "wl:" + std::to_string(depth);
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result = core::run_campaign(config, pool);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::cout << pad_right(std::to_string(depth), 7)
              << pad_left(format_fixed(result.distance_summary.median, 3), 12)
              << pad_left(format_fixed(result.distance_summary.mean, 3), 12)
              << pad_left(format_fixed(elapsed, 1), 14) << '\n';
  }
  std::cout << "\ninterpretation: distance is non-decreasing in depth; "
               "depth 2 (the default)\ncaptures most of the signal at a "
               "fraction of the deep-WL cost.\n";
  return 0;
}

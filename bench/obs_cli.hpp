#pragma once

/// Observability plumbing for the google-benchmark binaries: strip the
/// --metrics-out/--trace-out flags before benchmark::Initialize sees them
/// (it rejects unknown arguments), then write the JSON outputs after the
/// benchmarks ran. This is what the CI bench-smoke job uses to archive a
/// machine-readable perf signal (BENCH_ci.json) per commit.

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <string_view>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace anacin::bench {

struct ObsOptions {
  std::string metrics_out;
  std::string trace_out;
};

/// Remove `--metrics-out(=| )FILE` / `--trace-out(=| )FILE` from argv,
/// compacting it in place and updating argc.
inline ObsOptions strip_obs_flags(int& argc, char** argv) {
  ObsOptions options;
  int write_index = 1;
  for (int read_index = 1; read_index < argc; ++read_index) {
    const std::string_view arg = argv[read_index];
    std::string* value = nullptr;
    std::string_view flag;
    if (arg.rfind("--metrics-out", 0) == 0) {
      value = &options.metrics_out;
      flag = "--metrics-out";
    } else if (arg.rfind("--trace-out", 0) == 0) {
      value = &options.trace_out;
      flag = "--trace-out";
    }
    if (value == nullptr) {
      argv[write_index++] = argv[read_index];
      continue;
    }
    if (arg.size() > flag.size() && arg[flag.size()] == '=') {
      *value = std::string(arg.substr(flag.size() + 1));
    } else if (arg == flag && read_index + 1 < argc) {
      *value = argv[++read_index];
    } else {
      throw ConfigError(std::string(flag) + " requires a file path");
    }
  }
  argc = write_index;
  return options;
}

inline void write_json_text(const std::string& path,
                            const std::string& text) {
  std::ofstream out(path);
  ANACIN_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << text << '\n';
}

inline void write_obs_outputs(const ObsOptions& options) {
  if (!options.metrics_out.empty()) {
    write_json_text(options.metrics_out,
                    obs::Registry::global().snapshot_json().dump(2));
  }
  if (!options.trace_out.empty()) {
    write_json_text(options.trace_out,
                    obs::Tracer::global().chrome_trace_json().dump(2));
  }
}

/// Drop-in replacement for BENCHMARK_MAIN()'s body.
inline int run_benchmark_main(int argc, char** argv) {
  ObsOptions options = strip_obs_flags(argc, argv);
  if (!options.trace_out.empty()) {
    obs::Tracer::global().set_enabled(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_obs_outputs(options);
  return 0;
}

}  // namespace anacin::bench

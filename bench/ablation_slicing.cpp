// Ablation: slicing policy for root-cause localization. Event graphs can
// be sliced by Lamport (logical) time or by virtual (wall-clock) time.
// With a program whose first half is deterministic and second half races,
// logical-time slices keep the deterministic prologue at exactly zero
// divergence, while virtual-time slices smear the divergence everywhere —
// jitter shifts identical events into different wall-clock windows.

#include <iostream>

#include "common.hpp"

using namespace anacin;

namespace {

/// Deterministic ring prologue + racing epilogue (the planted hotspot).
void half_and_half(sim::Comm& comm) {
  const int n = comm.size();
  {
    const auto frame = comm.scoped_frame("stable_phase");
    for (int lap = 0; lap < 8; ++lap) {
      sim::Request r = comm.irecv((comm.rank() + n - 1) % n, 1);
      comm.send((comm.rank() + 1) % n, 1);
      (void)comm.wait(r);
    }
  }
  {
    const auto frame = comm.scoped_frame("racy_phase");
    if (comm.rank() == 0) {
      for (int i = 0; i < n - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  }
}

std::vector<double> profile_for(
    const std::vector<graph::EventGraph>& runs,
    const std::vector<graph::SliceSet>& slices,
    const kernels::GraphKernel& kernel) {
  std::size_t num_slices = 0;
  for (const auto& set : slices) {
    num_slices = std::max(num_slices, set.num_slices);
  }
  std::vector<double> profile(num_slices, 0.0);
  for (std::size_t s = 0; s < num_slices; ++s) {
    std::vector<kernels::FeatureVector> features;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      static const std::vector<graph::NodeId> kEmpty;
      const auto& nodes = s < slices[r].num_slices
                              ? slices[r].nodes_in_slice[s]
                              : kEmpty;
      features.push_back(kernel.features(kernels::build_labeled_subgraph(
          runs[r], nodes, kernels::LabelPolicy::kTypePeer)));
    }
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      for (std::size_t j = i + 1; j < features.size(); ++j) {
        total += kernels::kernel_distance(features[i], features[j]);
        ++pairs;
      }
    }
    profile[s] = pairs ? total / static_cast<double>(pairs) : 0.0;
  }
  return profile;
}

double early_half_mass(const std::vector<double>& profile) {
  double early = 0.0;
  double total = 0.0;
  for (std::size_t s = 0; s < profile.size(); ++s) {
    total += profile[s];
    if (s < profile.size() / 2) early += profile[s];
  }
  return total > 0.0 ? early / total : 0.0;
}

}  // namespace

int main(int argc, const char** argv) {
  int ranks = 8;
  int runs = 6;
  ArgParser parser("Ablation: Lamport vs virtual-time slicing");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions to compare", &runs);
  if (!parser.parse(argc, argv)) return 0;

  bench::announce("Ablation: slicing policy",
                  "deterministic prologue + racing epilogue on " +
                      std::to_string(ranks) + " processes");

  std::vector<graph::EventGraph> graphs;
  for (int i = 0; i < runs; ++i) {
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.seed = 100 + static_cast<std::uint64_t>(i);
    config.network.nd_fraction = 1.0;
    graphs.push_back(graph::EventGraph::from_trace(
        sim::run_simulation(config, half_and_half).trace));
  }

  const auto kernel = kernels::make_kernel("wl:2");

  std::vector<graph::SliceSet> lamport_slices;
  std::vector<graph::SliceSet> virtual_slices;
  double mean_makespan = 0.0;
  for (const auto& run : graphs) {
    lamport_slices.push_back(graph::slice_by_lamport_window(run, 4));
    mean_makespan += run.node(static_cast<graph::NodeId>(run.num_nodes() - 1))
                         .t_end /
                     static_cast<double>(graphs.size());
  }
  for (const auto& run : graphs) {
    virtual_slices.push_back(
        graph::slice_by_virtual_time_window(run, mean_makespan / 10.0));
  }

  const std::vector<double> lamport_profile =
      profile_for(graphs, lamport_slices, *kernel);
  const std::vector<double> virtual_profile =
      profile_for(graphs, virtual_slices, *kernel);

  std::cout << "divergence profile, Lamport slicing (window 4):\n";
  for (std::size_t s = 0; s < lamport_profile.size(); ++s) {
    std::cout << "  slice " << pad_left(std::to_string(s), 2) << ": "
              << format_fixed(lamport_profile[s], 3) << '\n';
  }
  std::cout << "divergence profile, virtual-time slicing (10 windows):\n";
  for (std::size_t s = 0; s < virtual_profile.size(); ++s) {
    std::cout << "  slice " << pad_left(std::to_string(s), 2) << ": "
              << format_fixed(virtual_profile[s], 3) << '\n';
  }

  const double lamport_early = early_half_mass(lamport_profile);
  const double virtual_early = early_half_mass(virtual_profile);
  std::cout << "\ndivergence mass in the early (deterministic) half:\n";
  std::cout << "  Lamport slicing:      "
            << format_fixed(lamport_early * 100.0, 1) << "%\n";
  std::cout << "  virtual-time slicing: "
            << format_fixed(virtual_early * 100.0, 1) << "%\n";
  std::cout << "expected shape (logical time localizes; wall-clock time "
               "smears): "
            << (lamport_early < virtual_early ? "REPRODUCED"
                                              : "NOT reproduced")
            << '\n';
  return 0;
}

// Reproduces Fig 1: an example event graph of an MPI communication pattern
// between three MPI processes, with nodes for MPI_Send()/MPI_Recv() events,
// on-process logical-precedence edges, and inter-process message edges.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  std::string out = core::results_dir() + "/fig01_event_graph_example.svg";
  ArgParser parser("Fig 1: example event graph on three MPI processes");
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  // The illustrative scenario: rank 0 and rank 2 each send to rank 1;
  // rank 1 replies to rank 0 — a small mixed pattern like the paper's
  // opening figure.
  sim::SimConfig config;
  config.num_ranks = 3;
  config.network.nd_fraction = 0.0;
  const sim::RunResult run = sim::run_simulation(config, [](sim::Comm& comm) {
    switch (comm.rank()) {
      case 0:
        comm.send(1, 0);
        (void)comm.recv(1, 1);
        break;
      case 1:
        (void)comm.recv();
        (void)comm.recv();
        comm.send(0, 1);
        break;
      case 2:
        comm.send(1, 0);
        break;
    }
  });
  const graph::EventGraph graph = graph::EventGraph::from_trace(run.trace);

  bench::announce("Fig 1", "event graph of a 3-process communication pattern");
  std::cout << viz::ascii_event_graph(graph);

  viz::EventGraphRenderConfig render;
  render.title = "Fig 1: event graph, 3 MPI processes";
  viz::render_event_graph(graph, render).save(out);
  bench::note_artifact(out);
  return 0;
}

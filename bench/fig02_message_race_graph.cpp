// Reproduces Fig 2: event graph visualization of a message race
// communication pattern on four MPI processes (ranks 1..3 each send one
// message to rank 0).

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 4;
  std::string out = core::results_dir() + "/fig02_message_race.svg";
  ArgParser parser("Fig 2: message race event graph");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.network.nd_fraction = 0.0;
  const sim::RunResult run =
      core::run_pattern_once("message_race", shape, config);
  const graph::EventGraph graph = graph::EventGraph::from_trace(run.trace);

  bench::announce("Fig 2", "message race on " + std::to_string(ranks) +
                               " MPI processes");
  std::cout << viz::ascii_event_graph(graph);

  viz::EventGraphRenderConfig render;
  render.title = "Fig 2: message race, " + std::to_string(ranks) +
                 " MPI processes";
  viz::render_event_graph(graph, render).save(out);
  bench::note_artifact(out);
  return 0;
}

#!/usr/bin/env python3
"""Perf-regression gate over google-benchmark JSON output.

Two modes:

  emit     distill one or more `--benchmark_out` JSON files into a small,
           committed baseline (median wall time per benchmark, in ns):

               compare_bench.py emit out1.json [out2.json ...] -o BENCH_x.json

  compare  check fresh `--benchmark_out` JSON files against a committed
           baseline, print a before/after markdown table, and exit 1 if any
           benchmark's median regressed more than the threshold:

               compare_bench.py compare BENCH_x.json out1.json [out2.json ...] \
                   [--threshold 0.20] [--summary "$GITHUB_STEP_SUMMARY"]

Medians come from google-benchmark aggregate rows (run the binaries with
--benchmark_repetitions); a benchmark run without repetitions falls back to
its single iteration row. Only benchmarks present in the baseline gate the
build — new benchmarks are reported as "new" and ignored until the baseline
is refreshed (see docs/KERNELS.md).

Stdlib only: CI runners and the local tree need nothing beyond python3.
"""

import argparse
import json
import sys

NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_medians(path):
    """Map benchmark name -> median real time in ns from one gbench file."""
    with open(path) as handle:
        doc = json.load(handle)
    singles = {}
    medians = {}
    for row in doc.get("benchmarks", []):
        scale = NS_PER[row.get("time_unit", "ns")]
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[row["run_name"]] = row["real_time"] * scale
        elif row.get("run_type", "iteration") == "iteration":
            # repetition rows carry the same run_name; keep the first so a
            # repetitions run without aggregates still yields one number.
            singles.setdefault(row.get("run_name", row["name"]),
                               row["real_time"] * scale)
    return {**singles, **medians}


def load_many(paths):
    merged = {}
    for path in paths:
        for name, value in load_medians(path).items():
            if name in merged:
                sys.exit(f"error: benchmark '{name}' appears in more than "
                         f"one input file")
            merged[name] = value
    if not merged:
        sys.exit("error: no benchmarks found in input files")
    return merged


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def emit(args):
    baseline = {
        "comment": "perf-gate baseline: median wall time (ns) per benchmark;"
                   " refresh with bench/compare_bench.py emit"
                   " (see docs/KERNELS.md)",
        "benchmarks": dict(sorted(load_many(args.inputs).items())),
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} with {len(baseline['benchmarks'])} baselines")


def compare(args):
    with open(args.baseline) as handle:
        baseline = json.load(handle)["benchmarks"]
    current = load_many(args.inputs)

    lines = ["| benchmark | baseline | current | ratio | status |",
             "|---|---|---|---|---|"]
    failures = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            lines.append(f"| {name} | {fmt_time(baseline[name])} | — | — |"
                         f" missing |")
            failures.append(f"{name}: in baseline but not in this run")
            continue
        if name not in baseline:
            lines.append(f"| {name} | — | {fmt_time(current[name])} | — |"
                         f" new (not gated) |")
            continue
        ratio = current[name] / baseline[name]
        if ratio > 1.0 + args.threshold:
            status = f"REGRESSED >{args.threshold:.0%}"
            failures.append(f"{name}: {fmt_time(baseline[name])} -> "
                            f"{fmt_time(current[name])} ({ratio:.2f}x)")
        elif ratio < 1.0 - args.threshold:
            status = "improved (consider refreshing baseline)"
        else:
            status = "ok"
        lines.append(f"| {name} | {fmt_time(baseline[name])} |"
                     f" {fmt_time(current[name])} | {ratio:.2f}x | {status} |")

    table = "\n".join(lines)
    print(table)
    if args.summary:
        with open(args.summary, "a") as handle:
            handle.write("### Perf gate: " + args.baseline + "\n\n"
                         + table + "\n\n")
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nperf gate OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    emit_parser = sub.add_parser("emit", help="distill a committed baseline")
    emit_parser.add_argument("inputs", nargs="+")
    emit_parser.add_argument("-o", "--output", required=True)
    emit_parser.set_defaults(func=emit)

    compare_parser = sub.add_parser("compare", help="gate against a baseline")
    compare_parser.add_argument("baseline")
    compare_parser.add_argument("inputs", nargs="+")
    compare_parser.add_argument("--threshold", type=float, default=0.20,
                                help="allowed median regression (default 0.20)")
    compare_parser.add_argument("--summary", default="",
                                help="file to append the markdown table to "
                                     "(e.g. $GITHUB_STEP_SUMMARY)")
    compare_parser.set_defaults(func=compare)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()

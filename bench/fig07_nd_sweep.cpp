// Reproduces Fig 7: kernel distance visualization of the AMG 2013
// mini-application on 32 MPI processes, varying the percentage of
// non-determinism from 0% to 100% in increments of 10%, with 1 compute
// node, 1 communication pattern iteration, and 1-byte messages; 20 runs
// per setting. Expected shape: measured non-determinism is ~0 at 0% and
// grows with the actual ND percentage.

#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int ranks = 32;
  int runs = 20;
  int step = 10;
  std::string out = core::results_dir() + "/fig07_nd_sweep.svg";
  std::string csv_out = core::results_dir() + "/fig07_nd_sweep.csv";
  ArgParser parser("Fig 7: kernel distance vs percentage of non-determinism "
                   "(AMG 2013)");
  parser.add_int("ranks", "number of MPI processes", &ranks);
  parser.add_int("runs", "executions per setting", &runs);
  parser.add_int("step", "ND percentage increment", &step);
  parser.add_string("out", "output SVG path", &out);
  parser.add_string("csv", "output CSV path", &csv_out);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Fig 7", "AMG 2013 on " + std::to_string(ranks) +
                               " processes, ND% from 0 to 100 step " +
                               std::to_string(step) + ", " +
                               std::to_string(runs) +
                               " runs per setting, 1 node, 1 iteration, "
                               "1-byte messages");

  std::vector<viz::ViolinSeries> violins;
  std::vector<double> percents;
  std::vector<double> medians;
  core::CsvWriter csv({"nd_percent", "median", "mean", "q1", "q3", "max"});
  for (int percent = 0; percent <= 100; percent += step) {
    core::CampaignConfig config;
    config.pattern = "amg2013";
    config.shape.num_ranks = ranks;
    config.shape.iterations = 1;
    config.shape.message_bytes = 1;
    config.num_nodes = 1;
    config.nd_fraction = percent / 100.0;
    config.num_runs = runs;
    const core::CampaignResult result = core::run_campaign(config, pool);

    bench::print_summary_row(std::to_string(percent) + "% ND",
                             result.distance_summary);
    violins.push_back(bench::violin_series(std::to_string(percent) + "%",
                                           result.measurement.distances));
    percents.push_back(percent);
    medians.push_back(result.distance_summary.median);
    csv.add_row({std::to_string(percent),
                 format_fixed(result.distance_summary.median, 4),
                 format_fixed(result.distance_summary.mean, 4),
                 format_fixed(result.distance_summary.q1, 4),
                 format_fixed(result.distance_summary.q3, 4),
                 format_fixed(result.distance_summary.max, 4)});
  }

  const double rho = analysis::spearman(percents, medians);
  std::cout << "Spearman(median distance, ND%) = " << format_fixed(rho, 3)
            << '\n';
  std::cout << "paper's expected shape (monotone growth from ~0): "
            << (rho > 0.8 && medians.front() < medians.back() ? "REPRODUCED"
                                                              : "NOT reproduced")
            << '\n';

  viz::violin_plot(violins,
                   {.width = 900,
                    .height = 420,
                    .title = "Fig 7: kernel distance vs % non-determinism "
                             "(AMG 2013, " +
                                 std::to_string(ranks) + " processes)",
                    .x_label = "percentage of non-determinism",
                    .y_label = "kernel distance"})
      .save(out);
  csv.save(csv_out);
  bench::note_artifact(out);
  bench::note_artifact(csv_out);
  return 0;
}

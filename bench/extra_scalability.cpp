// Beyond the paper's figures: how the measured non-determinism and the
// analysis cost scale with the process count. The paper's largest use
// cases ran on a 32-process cluster; this bench shows the whole pipeline
// (simulate + graph + WL + distances) stays laptop-friendly well past
// that, and that the Fig-5 relationship (more processes, more ND) holds
// across the sweep rather than at two points only.

#include <chrono>
#include <iostream>

#include "common.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  int runs = 10;
  std::string out = core::results_dir() + "/extra_scalability.svg";
  ArgParser parser("Scalability: measured ND and pipeline cost vs ranks");
  parser.add_int("runs", "executions per setting", &runs);
  parser.add_string("out", "output SVG path", &out);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  bench::announce("Extra: scalability study",
                  "unstructured mesh at 100% ND, " + std::to_string(runs) +
                      " runs per rank count");

  std::cout << pad_right("ranks", 7) << pad_left("median dist", 13)
            << pad_left("msgs/run", 10) << pad_left("pipeline ms", 13)
            << '\n';
  std::vector<viz::Point> distance_curve;
  std::vector<double> rank_counts;
  std::vector<double> medians;
  for (const int ranks : {4, 8, 16, 32, 48, 64}) {
    core::CampaignConfig config;
    config.pattern = "unstructured_mesh";
    config.shape.num_ranks = ranks;
    config.nd_fraction = 1.0;
    config.num_runs = runs;
    const auto start = std::chrono::steady_clock::now();
    const core::CampaignResult result = core::run_campaign(config, pool);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::cout << pad_right(std::to_string(ranks), 7)
              << pad_left(format_fixed(result.distance_summary.median, 2), 13)
              << pad_left(std::to_string(result.total_messages /
                                         result.graphs.size()),
                          10)
              << pad_left(format_fixed(elapsed_ms, 0), 13) << '\n';
    distance_curve.push_back(
        {static_cast<double>(ranks), result.distance_summary.median});
    rank_counts.push_back(ranks);
    medians.push_back(result.distance_summary.median);
  }

  std::cout << "Spearman(median distance, ranks) = "
            << format_fixed(analysis::spearman(rank_counts, medians), 3)
            << "  (Fig-5 relationship across the whole sweep)\n";

  viz::line_plot({{"median kernel distance", distance_curve}},
                 {.width = 560,
                  .height = 360,
                  .title = "Measured non-determinism vs process count",
                  .x_label = "MPI processes",
                  .y_label = "median kernel distance"})
      .save(out);
  bench::note_artifact(out);
  return 0;
}

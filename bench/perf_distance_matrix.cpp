// Microbenchmark of the pairwise distance-matrix computation (the core of
// every violin figure) including its thread-pool parallelisation.

#include <benchmark/benchmark.h>

#include "core/campaign.hpp"
#include "kernels/distance_matrix.hpp"
#include "obs_cli.hpp"

using namespace anacin;

namespace {

std::vector<kernels::LabeledGraph> make_sample(int count, int ranks) {
  std::vector<kernels::LabeledGraph> graphs;
  for (int i = 0; i < count; ++i) {
    patterns::PatternConfig shape;
    shape.num_ranks = ranks;
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.seed = static_cast<std::uint64_t>(i) + 1;
    config.network.nd_fraction = 1.0;
    const sim::RunResult run =
        core::run_pattern_once("unstructured_mesh", shape, config);
    graphs.push_back(kernels::build_labeled_graph(
        graph::EventGraph::from_trace(run.trace),
        kernels::LabelPolicy::kTypePeer));
  }
  return graphs;
}

void BM_PairwiseDistances(benchmark::State& state) {
  const auto graphs =
      make_sample(static_cast<int>(state.range(0)), 16);
  const kernels::WLSubtreeKernel kernel(2);
  ThreadPool pool;
  for (auto _ : state) {
    const kernels::DistanceMatrix matrix =
        kernels::pairwise_distances(kernel, graphs, pool);
    benchmark::DoNotOptimize(matrix.values.data());
  }
  state.counters["pairs"] = static_cast<double>(
      graphs.size() * (graphs.size() - 1) / 2);
}

void BM_DistancesToReference(benchmark::State& state) {
  const auto graphs = make_sample(static_cast<int>(state.range(0)), 16);
  const kernels::WLSubtreeKernel kernel(2);
  ThreadPool pool;
  for (auto _ : state) {
    const auto distances =
        kernels::distances_to_reference(kernel, graphs[0], graphs, pool);
    benchmark::DoNotOptimize(distances.data());
  }
}

}  // namespace

BENCHMARK(BM_PairwiseDistances)->Arg(10)->Arg(20)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistancesToReference)->Arg(20)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

// Microbenchmarks of the graph-kernel layer: WL feature extraction across
// depths and kernel-distance evaluation.

#include <benchmark/benchmark.h>

#include "core/campaign.hpp"
#include "kernels/kernel.hpp"
#include "obs_cli.hpp"

using namespace anacin;

namespace {

kernels::LabeledGraph make_graph(int ranks, std::uint64_t seed) {
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  const sim::RunResult run = core::run_pattern_once("amg2013", shape, config);
  return kernels::build_labeled_graph(
      graph::EventGraph::from_trace(run.trace),
      kernels::LabelPolicy::kTypePeer);
}

void BM_WlFeatures(benchmark::State& state) {
  const kernels::LabeledGraph graph = make_graph(16, 1);
  const kernels::WLSubtreeKernel kernel(
      static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const kernels::FeatureVector features = kernel.features(graph);
    benchmark::DoNotOptimize(features.self_dot);
  }
  state.counters["nodes"] = static_cast<double>(graph.num_nodes());
}

void BM_HistogramFeatures(benchmark::State& state) {
  const kernels::LabeledGraph graph = make_graph(16, 1);
  const kernels::EdgeHistogramKernel kernel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.features(graph).self_dot);
  }
}

void BM_KernelDistance(benchmark::State& state) {
  const kernels::WLSubtreeKernel kernel(2);
  const kernels::FeatureVector a = kernel.features(make_graph(16, 1));
  const kernels::FeatureVector b = kernel.features(make_graph(16, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::kernel_distance(a, b));
  }
  state.counters["features"] = static_cast<double>(a.size());
}

}  // namespace

BENCHMARK(BM_WlFeatures)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HistogramFeatures)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KernelDistance)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  return anacin::bench::run_benchmark_main(argc, argv);
}

# Empty compiler generated dependencies file for extra_comm_matrices.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/extra_comm_matrices"
  "../bench/extra_comm_matrices.pdb"
  "CMakeFiles/extra_comm_matrices.dir/extra_comm_matrices.cpp.o"
  "CMakeFiles/extra_comm_matrices.dir/extra_comm_matrices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_comm_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

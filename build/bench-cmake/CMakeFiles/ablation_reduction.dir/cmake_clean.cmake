file(REMOVE_RECURSE
  "../bench/ablation_reduction"
  "../bench/ablation_reduction.pdb"
  "CMakeFiles/ablation_reduction.dir/ablation_reduction.cpp.o"
  "CMakeFiles/ablation_reduction.dir/ablation_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

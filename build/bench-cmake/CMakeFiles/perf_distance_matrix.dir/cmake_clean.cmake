file(REMOVE_RECURSE
  "../bench/perf_distance_matrix"
  "../bench/perf_distance_matrix.pdb"
  "CMakeFiles/perf_distance_matrix.dir/perf_distance_matrix.cpp.o"
  "CMakeFiles/perf_distance_matrix.dir/perf_distance_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_distance_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for perf_distance_matrix.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_slicing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_slicing"
  "../bench/ablation_slicing.pdb"
  "CMakeFiles/ablation_slicing.dir/ablation_slicing.cpp.o"
  "CMakeFiles/ablation_slicing.dir/ablation_slicing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_kernel_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_kernel_comparison"
  "../bench/ablation_kernel_comparison.pdb"
  "CMakeFiles/ablation_kernel_comparison.dir/ablation_kernel_comparison.cpp.o"
  "CMakeFiles/ablation_kernel_comparison.dir/ablation_kernel_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

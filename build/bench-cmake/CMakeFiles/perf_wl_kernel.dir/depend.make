# Empty dependencies file for perf_wl_kernel.
# This may be replaced when dependencies are built.

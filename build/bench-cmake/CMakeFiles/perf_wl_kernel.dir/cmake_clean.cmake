file(REMOVE_RECURSE
  "../bench/perf_wl_kernel"
  "../bench/perf_wl_kernel.pdb"
  "CMakeFiles/perf_wl_kernel.dir/perf_wl_kernel.cpp.o"
  "CMakeFiles/perf_wl_kernel.dir/perf_wl_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_wl_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

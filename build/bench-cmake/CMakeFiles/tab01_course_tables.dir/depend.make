# Empty dependencies file for tab01_course_tables.
# This may be replaced when dependencies are built.

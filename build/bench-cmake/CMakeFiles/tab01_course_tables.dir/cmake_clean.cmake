file(REMOVE_RECURSE
  "../bench/tab01_course_tables"
  "../bench/tab01_course_tables.pdb"
  "CMakeFiles/tab01_course_tables.dir/tab01_course_tables.cpp.o"
  "CMakeFiles/tab01_course_tables.dir/tab01_course_tables.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_course_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

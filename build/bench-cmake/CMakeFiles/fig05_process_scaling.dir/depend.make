# Empty dependencies file for fig05_process_scaling.
# This may be replaced when dependencies are built.

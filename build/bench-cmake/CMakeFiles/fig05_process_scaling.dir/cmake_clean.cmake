file(REMOVE_RECURSE
  "../bench/fig05_process_scaling"
  "../bench/fig05_process_scaling.pdb"
  "CMakeFiles/fig05_process_scaling.dir/fig05_process_scaling.cpp.o"
  "CMakeFiles/fig05_process_scaling.dir/fig05_process_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_process_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

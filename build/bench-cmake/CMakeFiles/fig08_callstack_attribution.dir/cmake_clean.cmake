file(REMOVE_RECURSE
  "../bench/fig08_callstack_attribution"
  "../bench/fig08_callstack_attribution.pdb"
  "CMakeFiles/fig08_callstack_attribution.dir/fig08_callstack_attribution.cpp.o"
  "CMakeFiles/fig08_callstack_attribution.dir/fig08_callstack_attribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_callstack_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig08_callstack_attribution.
# This may be replaced when dependencies are built.

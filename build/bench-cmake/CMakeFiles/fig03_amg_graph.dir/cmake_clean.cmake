file(REMOVE_RECURSE
  "../bench/fig03_amg_graph"
  "../bench/fig03_amg_graph.pdb"
  "CMakeFiles/fig03_amg_graph.dir/fig03_amg_graph.cpp.o"
  "CMakeFiles/fig03_amg_graph.dir/fig03_amg_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_amg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig03_amg_graph.
# This may be replaced when dependencies are built.

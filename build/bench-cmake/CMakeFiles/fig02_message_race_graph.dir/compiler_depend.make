# Empty compiler generated dependencies file for fig02_message_race_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig02_message_race_graph"
  "../bench/fig02_message_race_graph.pdb"
  "CMakeFiles/fig02_message_race_graph.dir/fig02_message_race_graph.cpp.o"
  "CMakeFiles/fig02_message_race_graph.dir/fig02_message_race_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_message_race_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig04_nd_two_runs"
  "../bench/fig04_nd_two_runs.pdb"
  "CMakeFiles/fig04_nd_two_runs.dir/fig04_nd_two_runs.cpp.o"
  "CMakeFiles/fig04_nd_two_runs.dir/fig04_nd_two_runs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_nd_two_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

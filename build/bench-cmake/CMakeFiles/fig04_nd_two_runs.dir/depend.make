# Empty dependencies file for fig04_nd_two_runs.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_wl_depth.
# This may be replaced when dependencies are built.

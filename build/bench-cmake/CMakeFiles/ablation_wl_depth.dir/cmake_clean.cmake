file(REMOVE_RECURSE
  "../bench/ablation_wl_depth"
  "../bench/ablation_wl_depth.pdb"
  "CMakeFiles/ablation_wl_depth.dir/ablation_wl_depth.cpp.o"
  "CMakeFiles/ablation_wl_depth.dir/ablation_wl_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wl_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

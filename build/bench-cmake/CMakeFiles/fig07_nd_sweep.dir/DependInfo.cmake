
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_nd_sweep.cpp" "bench-cmake/CMakeFiles/fig07_nd_sweep.dir/fig07_nd_sweep.cpp.o" "gcc" "bench-cmake/CMakeFiles/fig07_nd_sweep.dir/fig07_nd_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anacin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/course/CMakeFiles/anacin_course.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/anacin_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/anacin_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/anacin_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anacin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/anacin_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/anacin_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anacin_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

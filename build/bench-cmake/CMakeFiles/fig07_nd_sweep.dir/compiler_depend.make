# Empty compiler generated dependencies file for fig07_nd_sweep.
# This may be replaced when dependencies are built.

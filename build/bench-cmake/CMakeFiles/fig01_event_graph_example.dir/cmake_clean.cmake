file(REMOVE_RECURSE
  "../bench/fig01_event_graph_example"
  "../bench/fig01_event_graph_example.pdb"
  "CMakeFiles/fig01_event_graph_example.dir/fig01_event_graph_example.cpp.o"
  "CMakeFiles/fig01_event_graph_example.dir/fig01_event_graph_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_event_graph_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig01_event_graph_example.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_node_mapping.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_node_mapping"
  "../bench/ablation_node_mapping.pdb"
  "CMakeFiles/ablation_node_mapping.dir/ablation_node_mapping.cpp.o"
  "CMakeFiles/ablation_node_mapping.dir/ablation_node_mapping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_node_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

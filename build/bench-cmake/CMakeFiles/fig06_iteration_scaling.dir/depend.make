# Empty dependencies file for fig06_iteration_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig06_iteration_scaling"
  "../bench/fig06_iteration_scaling.pdb"
  "CMakeFiles/fig06_iteration_scaling.dir/fig06_iteration_scaling.cpp.o"
  "CMakeFiles/fig06_iteration_scaling.dir/fig06_iteration_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_iteration_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

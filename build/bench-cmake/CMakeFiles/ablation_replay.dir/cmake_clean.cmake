file(REMOVE_RECURSE
  "../bench/ablation_replay"
  "../bench/ablation_replay.pdb"
  "CMakeFiles/ablation_replay.dir/ablation_replay.cpp.o"
  "CMakeFiles/ablation_replay.dir/ablation_replay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/extra_scalability"
  "../bench/extra_scalability.pdb"
  "CMakeFiles/extra_scalability.dir/extra_scalability.cpp.o"
  "CMakeFiles/extra_scalability.dir/extra_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

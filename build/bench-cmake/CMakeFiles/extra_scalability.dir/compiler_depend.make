# Empty compiler generated dependencies file for extra_scalability.
# This may be replaced when dependencies are built.

# Empty dependencies file for extra_scalability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_label_policy"
  "../bench/ablation_label_policy.pdb"
  "CMakeFiles/ablation_label_policy.dir/ablation_label_policy.cpp.o"
  "CMakeFiles/ablation_label_policy.dir/ablation_label_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_label_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

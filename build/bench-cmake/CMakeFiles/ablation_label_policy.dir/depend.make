# Empty dependencies file for ablation_label_policy.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_realtime[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_course[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")

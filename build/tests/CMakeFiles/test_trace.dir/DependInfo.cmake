
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_callstack.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_callstack.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_callstack.cpp.o.d"
  "/root/repo/tests/trace/test_event.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_event.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_event.cpp.o.d"
  "/root/repo/tests/trace/test_filter.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_filter.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_filter.cpp.o.d"
  "/root/repo/tests/trace/test_trace.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anacin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anacin_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

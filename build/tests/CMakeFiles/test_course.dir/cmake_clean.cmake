file(REMOVE_RECURSE
  "CMakeFiles/test_course.dir/course/test_course.cpp.o"
  "CMakeFiles/test_course.dir/course/test_course.cpp.o.d"
  "CMakeFiles/test_course.dir/course/test_quiz.cpp.o"
  "CMakeFiles/test_course.dir/course/test_quiz.cpp.o.d"
  "test_course"
  "test_course.pdb"
  "test_course[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

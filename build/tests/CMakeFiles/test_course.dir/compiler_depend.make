# Empty compiler generated dependencies file for test_course.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_collectives.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o.d"
  "/root/repo/tests/sim/test_deadlock.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o.d"
  "/root/repo/tests/sim/test_determinism.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_determinism.cpp.o.d"
  "/root/repo/tests/sim/test_edge_cases.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o.d"
  "/root/repo/tests/sim/test_engine_basic.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_engine_basic.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_engine_basic.cpp.o.d"
  "/root/repo/tests/sim/test_matching.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_matching.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_matching.cpp.o.d"
  "/root/repo/tests/sim/test_network.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_network.cpp.o.d"
  "/root/repo/tests/sim/test_probe_and_extras.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_probe_and_extras.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_probe_and_extras.cpp.o.d"
  "/root/repo/tests/sim/test_random_programs.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_random_programs.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_random_programs.cpp.o.d"
  "/root/repo/tests/sim/test_types.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_types.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/anacin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anacin_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/anacin_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

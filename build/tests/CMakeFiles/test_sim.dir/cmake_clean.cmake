file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_collectives.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_deadlock.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_determinism.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_determinism.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_edge_cases.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine_basic.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_engine_basic.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_matching.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_matching.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_network.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_network.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_probe_and_extras.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_probe_and_extras.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_random_programs.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_random_programs.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_types.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_types.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_clustering.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_clustering.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_kde.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_kde.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_nd_measurement.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_nd_measurement.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_resampling.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_resampling.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_root_cause.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_root_cause.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

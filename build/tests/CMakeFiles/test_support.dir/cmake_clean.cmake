file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/test_cli.cpp.o"
  "CMakeFiles/test_support.dir/support/test_cli.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_json.cpp.o"
  "CMakeFiles/test_support.dir/support/test_json.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_log.cpp.o"
  "CMakeFiles/test_support.dir/support/test_log.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_rng.cpp.o"
  "CMakeFiles/test_support.dir/support/test_rng.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_string_util.cpp.o"
  "CMakeFiles/test_support.dir/support/test_string_util.cpp.o.d"
  "CMakeFiles/test_support.dir/support/test_thread_pool.cpp.o"
  "CMakeFiles/test_support.dir/support/test_thread_pool.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/test_cli.cpp" "tests/CMakeFiles/test_support.dir/support/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_cli.cpp.o.d"
  "/root/repo/tests/support/test_json.cpp" "tests/CMakeFiles/test_support.dir/support/test_json.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_json.cpp.o.d"
  "/root/repo/tests/support/test_log.cpp" "tests/CMakeFiles/test_support.dir/support/test_log.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_log.cpp.o.d"
  "/root/repo/tests/support/test_rng.cpp" "tests/CMakeFiles/test_support.dir/support/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_rng.cpp.o.d"
  "/root/repo/tests/support/test_string_util.cpp" "tests/CMakeFiles/test_support.dir/support/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_string_util.cpp.o.d"
  "/root/repo/tests/support/test_thread_pool.cpp" "tests/CMakeFiles/test_support.dir/support/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernels/test_distance_matrix.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_distance_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_distance_matrix.cpp.o.d"
  "/root/repo/tests/kernels/test_graphlet_and_invariance.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_graphlet_and_invariance.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_graphlet_and_invariance.cpp.o.d"
  "/root/repo/tests/kernels/test_kernels.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_kernels.cpp.o.d"
  "/root/repo/tests/kernels/test_labeled_graph.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_labeled_graph.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_labeled_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/anacin_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anacin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anacin_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

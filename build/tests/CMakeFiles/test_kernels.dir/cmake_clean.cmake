file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/kernels/test_distance_matrix.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_distance_matrix.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_graphlet_and_invariance.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_graphlet_and_invariance.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_kernels.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_kernels.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_labeled_graph.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_labeled_graph.cpp.o.d"
  "test_kernels"
  "test_kernels.pdb"
  "test_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanacin_graph.a"
)

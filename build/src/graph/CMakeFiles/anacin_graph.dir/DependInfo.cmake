
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/anacin_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/anacin_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/event_graph.cpp" "src/graph/CMakeFiles/anacin_graph.dir/event_graph.cpp.o" "gcc" "src/graph/CMakeFiles/anacin_graph.dir/event_graph.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/graph/CMakeFiles/anacin_graph.dir/metrics.cpp.o" "gcc" "src/graph/CMakeFiles/anacin_graph.dir/metrics.cpp.o.d"
  "/root/repo/src/graph/slicing.cpp" "src/graph/CMakeFiles/anacin_graph.dir/slicing.cpp.o" "gcc" "src/graph/CMakeFiles/anacin_graph.dir/slicing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

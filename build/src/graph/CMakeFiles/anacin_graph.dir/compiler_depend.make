# Empty compiler generated dependencies file for anacin_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/anacin_graph.dir/digraph.cpp.o"
  "CMakeFiles/anacin_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/anacin_graph.dir/event_graph.cpp.o"
  "CMakeFiles/anacin_graph.dir/event_graph.cpp.o.d"
  "CMakeFiles/anacin_graph.dir/metrics.cpp.o"
  "CMakeFiles/anacin_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/anacin_graph.dir/slicing.cpp.o"
  "CMakeFiles/anacin_graph.dir/slicing.cpp.o.d"
  "libanacin_graph.a"
  "libanacin_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

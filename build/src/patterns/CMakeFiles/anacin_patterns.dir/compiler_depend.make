# Empty compiler generated dependencies file for anacin_patterns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libanacin_patterns.a"
)

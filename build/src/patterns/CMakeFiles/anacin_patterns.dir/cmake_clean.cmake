file(REMOVE_RECURSE
  "CMakeFiles/anacin_patterns.dir/patterns.cpp.o"
  "CMakeFiles/anacin_patterns.dir/patterns.cpp.o.d"
  "libanacin_patterns.a"
  "libanacin_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

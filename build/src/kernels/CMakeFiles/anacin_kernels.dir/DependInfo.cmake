
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/distance_matrix.cpp" "src/kernels/CMakeFiles/anacin_kernels.dir/distance_matrix.cpp.o" "gcc" "src/kernels/CMakeFiles/anacin_kernels.dir/distance_matrix.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/anacin_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/anacin_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/labeled_graph.cpp" "src/kernels/CMakeFiles/anacin_kernels.dir/labeled_graph.cpp.o" "gcc" "src/kernels/CMakeFiles/anacin_kernels.dir/labeled_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anacin_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

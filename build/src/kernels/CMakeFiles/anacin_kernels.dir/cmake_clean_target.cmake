file(REMOVE_RECURSE
  "libanacin_kernels.a"
)

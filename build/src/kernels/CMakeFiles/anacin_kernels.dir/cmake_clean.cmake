file(REMOVE_RECURSE
  "CMakeFiles/anacin_kernels.dir/distance_matrix.cpp.o"
  "CMakeFiles/anacin_kernels.dir/distance_matrix.cpp.o.d"
  "CMakeFiles/anacin_kernels.dir/kernel.cpp.o"
  "CMakeFiles/anacin_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/anacin_kernels.dir/labeled_graph.cpp.o"
  "CMakeFiles/anacin_kernels.dir/labeled_graph.cpp.o.d"
  "libanacin_kernels.a"
  "libanacin_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

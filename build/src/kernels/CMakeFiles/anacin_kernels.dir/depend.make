# Empty dependencies file for anacin_kernels.
# This may be replaced when dependencies are built.

# Empty dependencies file for anacin_replay.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/anacin_replay.dir/replay.cpp.o"
  "CMakeFiles/anacin_replay.dir/replay.cpp.o.d"
  "libanacin_replay.a"
  "libanacin_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanacin_replay.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anacin_core.dir/campaign.cpp.o"
  "CMakeFiles/anacin_core.dir/campaign.cpp.o.d"
  "CMakeFiles/anacin_core.dir/experiments.cpp.o"
  "CMakeFiles/anacin_core.dir/experiments.cpp.o.d"
  "CMakeFiles/anacin_core.dir/html_report.cpp.o"
  "CMakeFiles/anacin_core.dir/html_report.cpp.o.d"
  "CMakeFiles/anacin_core.dir/report.cpp.o"
  "CMakeFiles/anacin_core.dir/report.cpp.o.d"
  "libanacin_core.a"
  "libanacin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanacin_core.a"
)

# Empty compiler generated dependencies file for anacin_core.
# This may be replaced when dependencies are built.

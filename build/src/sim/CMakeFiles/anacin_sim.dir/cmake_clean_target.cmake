file(REMOVE_RECURSE
  "libanacin_sim.a"
)

# Empty compiler generated dependencies file for anacin_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/anacin_sim.dir/comm.cpp.o"
  "CMakeFiles/anacin_sim.dir/comm.cpp.o.d"
  "CMakeFiles/anacin_sim.dir/config.cpp.o"
  "CMakeFiles/anacin_sim.dir/config.cpp.o.d"
  "CMakeFiles/anacin_sim.dir/engine.cpp.o"
  "CMakeFiles/anacin_sim.dir/engine.cpp.o.d"
  "CMakeFiles/anacin_sim.dir/network.cpp.o"
  "CMakeFiles/anacin_sim.dir/network.cpp.o.d"
  "CMakeFiles/anacin_sim.dir/simulator.cpp.o"
  "CMakeFiles/anacin_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/anacin_sim.dir/types.cpp.o"
  "CMakeFiles/anacin_sim.dir/types.cpp.o.d"
  "libanacin_sim.a"
  "libanacin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/anacin_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/anacin_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/anacin_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/anacin_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/anacin_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/anacin_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/anacin_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/anacin_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/anacin_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/anacin_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/types.cpp" "src/sim/CMakeFiles/anacin_sim.dir/types.cpp.o" "gcc" "src/sim/CMakeFiles/anacin_sim.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for anacin_trace.
# This may be replaced when dependencies are built.

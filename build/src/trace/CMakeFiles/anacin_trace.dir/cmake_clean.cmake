file(REMOVE_RECURSE
  "CMakeFiles/anacin_trace.dir/callstack.cpp.o"
  "CMakeFiles/anacin_trace.dir/callstack.cpp.o.d"
  "CMakeFiles/anacin_trace.dir/event.cpp.o"
  "CMakeFiles/anacin_trace.dir/event.cpp.o.d"
  "CMakeFiles/anacin_trace.dir/filter.cpp.o"
  "CMakeFiles/anacin_trace.dir/filter.cpp.o.d"
  "CMakeFiles/anacin_trace.dir/trace.cpp.o"
  "CMakeFiles/anacin_trace.dir/trace.cpp.o.d"
  "libanacin_trace.a"
  "libanacin_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

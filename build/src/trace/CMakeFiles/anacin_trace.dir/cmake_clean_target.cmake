file(REMOVE_RECURSE
  "libanacin_trace.a"
)

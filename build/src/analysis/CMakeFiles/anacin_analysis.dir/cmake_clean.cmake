file(REMOVE_RECURSE
  "CMakeFiles/anacin_analysis.dir/clustering.cpp.o"
  "CMakeFiles/anacin_analysis.dir/clustering.cpp.o.d"
  "CMakeFiles/anacin_analysis.dir/kde.cpp.o"
  "CMakeFiles/anacin_analysis.dir/kde.cpp.o.d"
  "CMakeFiles/anacin_analysis.dir/nd_measurement.cpp.o"
  "CMakeFiles/anacin_analysis.dir/nd_measurement.cpp.o.d"
  "CMakeFiles/anacin_analysis.dir/resampling.cpp.o"
  "CMakeFiles/anacin_analysis.dir/resampling.cpp.o.d"
  "CMakeFiles/anacin_analysis.dir/root_cause.cpp.o"
  "CMakeFiles/anacin_analysis.dir/root_cause.cpp.o.d"
  "CMakeFiles/anacin_analysis.dir/stats.cpp.o"
  "CMakeFiles/anacin_analysis.dir/stats.cpp.o.d"
  "libanacin_analysis.a"
  "libanacin_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

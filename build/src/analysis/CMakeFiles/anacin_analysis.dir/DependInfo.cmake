
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cpp" "src/analysis/CMakeFiles/anacin_analysis.dir/clustering.cpp.o" "gcc" "src/analysis/CMakeFiles/anacin_analysis.dir/clustering.cpp.o.d"
  "/root/repo/src/analysis/kde.cpp" "src/analysis/CMakeFiles/anacin_analysis.dir/kde.cpp.o" "gcc" "src/analysis/CMakeFiles/anacin_analysis.dir/kde.cpp.o.d"
  "/root/repo/src/analysis/nd_measurement.cpp" "src/analysis/CMakeFiles/anacin_analysis.dir/nd_measurement.cpp.o" "gcc" "src/analysis/CMakeFiles/anacin_analysis.dir/nd_measurement.cpp.o.d"
  "/root/repo/src/analysis/resampling.cpp" "src/analysis/CMakeFiles/anacin_analysis.dir/resampling.cpp.o" "gcc" "src/analysis/CMakeFiles/anacin_analysis.dir/resampling.cpp.o.d"
  "/root/repo/src/analysis/root_cause.cpp" "src/analysis/CMakeFiles/anacin_analysis.dir/root_cause.cpp.o" "gcc" "src/analysis/CMakeFiles/anacin_analysis.dir/root_cause.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/anacin_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/anacin_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/anacin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anacin_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/anacin_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/anacin_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libanacin_analysis.a"
)

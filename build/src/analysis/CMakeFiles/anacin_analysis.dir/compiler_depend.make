# Empty compiler generated dependencies file for anacin_analysis.
# This may be replaced when dependencies are built.

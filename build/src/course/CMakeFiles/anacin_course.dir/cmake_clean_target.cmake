file(REMOVE_RECURSE
  "libanacin_course.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anacin_course.dir/module.cpp.o"
  "CMakeFiles/anacin_course.dir/module.cpp.o.d"
  "CMakeFiles/anacin_course.dir/quiz.cpp.o"
  "CMakeFiles/anacin_course.dir/quiz.cpp.o.d"
  "CMakeFiles/anacin_course.dir/use_cases.cpp.o"
  "CMakeFiles/anacin_course.dir/use_cases.cpp.o.d"
  "libanacin_course.a"
  "libanacin_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for anacin_course.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/anacin.dir/main.cpp.o"
  "CMakeFiles/anacin.dir/main.cpp.o.d"
  "anacin"
  "anacin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for anacin.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for anacin_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libanacin_cli.a"
)

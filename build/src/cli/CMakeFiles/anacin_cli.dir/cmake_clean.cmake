file(REMOVE_RECURSE
  "CMakeFiles/anacin_cli.dir/cli_app.cpp.o"
  "CMakeFiles/anacin_cli.dir/cli_app.cpp.o.d"
  "libanacin_cli.a"
  "libanacin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

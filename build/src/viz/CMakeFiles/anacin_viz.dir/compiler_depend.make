# Empty compiler generated dependencies file for anacin_viz.
# This may be replaced when dependencies are built.

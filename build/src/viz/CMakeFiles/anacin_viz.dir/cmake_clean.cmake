file(REMOVE_RECURSE
  "CMakeFiles/anacin_viz.dir/ascii.cpp.o"
  "CMakeFiles/anacin_viz.dir/ascii.cpp.o.d"
  "CMakeFiles/anacin_viz.dir/event_graph_render.cpp.o"
  "CMakeFiles/anacin_viz.dir/event_graph_render.cpp.o.d"
  "CMakeFiles/anacin_viz.dir/heatmap.cpp.o"
  "CMakeFiles/anacin_viz.dir/heatmap.cpp.o.d"
  "CMakeFiles/anacin_viz.dir/plots.cpp.o"
  "CMakeFiles/anacin_viz.dir/plots.cpp.o.d"
  "CMakeFiles/anacin_viz.dir/svg.cpp.o"
  "CMakeFiles/anacin_viz.dir/svg.cpp.o.d"
  "libanacin_viz.a"
  "libanacin_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

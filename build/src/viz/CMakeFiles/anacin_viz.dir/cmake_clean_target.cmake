file(REMOVE_RECURSE
  "libanacin_viz.a"
)

file(REMOVE_RECURSE
  "libanacin_support.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anacin_support.dir/cli.cpp.o"
  "CMakeFiles/anacin_support.dir/cli.cpp.o.d"
  "CMakeFiles/anacin_support.dir/json.cpp.o"
  "CMakeFiles/anacin_support.dir/json.cpp.o.d"
  "CMakeFiles/anacin_support.dir/log.cpp.o"
  "CMakeFiles/anacin_support.dir/log.cpp.o.d"
  "CMakeFiles/anacin_support.dir/rng.cpp.o"
  "CMakeFiles/anacin_support.dir/rng.cpp.o.d"
  "CMakeFiles/anacin_support.dir/string_util.cpp.o"
  "CMakeFiles/anacin_support.dir/string_util.cpp.o.d"
  "CMakeFiles/anacin_support.dir/thread_pool.cpp.o"
  "CMakeFiles/anacin_support.dir/thread_pool.cpp.o.d"
  "libanacin_support.a"
  "libanacin_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for anacin_support.
# This may be replaced when dependencies are built.

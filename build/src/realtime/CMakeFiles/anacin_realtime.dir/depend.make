# Empty dependencies file for anacin_realtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libanacin_realtime.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anacin_realtime.dir/realtime.cpp.o"
  "CMakeFiles/anacin_realtime.dir/realtime.cpp.o.d"
  "libanacin_realtime.a"
  "libanacin_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anacin_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/numerical_reproducibility.dir/numerical_reproducibility.cpp.o"
  "CMakeFiles/numerical_reproducibility.dir/numerical_reproducibility.cpp.o.d"
  "numerical_reproducibility"
  "numerical_reproducibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numerical_reproducibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

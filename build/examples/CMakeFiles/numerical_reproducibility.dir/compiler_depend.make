# Empty compiler generated dependencies file for numerical_reproducibility.
# This may be replaced when dependencies are built.

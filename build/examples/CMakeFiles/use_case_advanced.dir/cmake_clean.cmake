file(REMOVE_RECURSE
  "CMakeFiles/use_case_advanced.dir/use_case_advanced.cpp.o"
  "CMakeFiles/use_case_advanced.dir/use_case_advanced.cpp.o.d"
  "use_case_advanced"
  "use_case_advanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/use_case_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for use_case_advanced.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/use_case_intermediate.dir/use_case_intermediate.cpp.o"
  "CMakeFiles/use_case_intermediate.dir/use_case_intermediate.cpp.o.d"
  "use_case_intermediate"
  "use_case_intermediate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/use_case_intermediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

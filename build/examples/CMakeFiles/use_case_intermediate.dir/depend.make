# Empty dependencies file for use_case_intermediate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/clustering_runs.dir/clustering_runs.cpp.o"
  "CMakeFiles/clustering_runs.dir/clustering_runs.cpp.o.d"
  "clustering_runs"
  "clustering_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

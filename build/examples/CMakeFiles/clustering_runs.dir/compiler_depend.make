# Empty compiler generated dependencies file for clustering_runs.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for use_case_beginner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/use_case_beginner.dir/use_case_beginner.cpp.o"
  "CMakeFiles/use_case_beginner.dir/use_case_beginner.cpp.o.d"
  "use_case_beginner"
  "use_case_beginner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/use_case_beginner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

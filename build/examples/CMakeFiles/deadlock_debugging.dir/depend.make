# Empty dependencies file for deadlock_debugging.
# This may be replaced when dependencies are built.

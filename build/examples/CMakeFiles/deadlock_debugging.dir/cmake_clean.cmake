file(REMOVE_RECURSE
  "CMakeFiles/deadlock_debugging.dir/deadlock_debugging.cpp.o"
  "CMakeFiles/deadlock_debugging.dir/deadlock_debugging.cpp.o.d"
  "deadlock_debugging"
  "deadlock_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deadlock_debugging.
# This may be replaced when dependencies are built.

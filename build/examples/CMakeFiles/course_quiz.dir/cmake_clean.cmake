file(REMOVE_RECURSE
  "CMakeFiles/course_quiz.dir/course_quiz.cpp.o"
  "CMakeFiles/course_quiz.dir/course_quiz.cpp.o.d"
  "course_quiz"
  "course_quiz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_quiz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for course_quiz.
# This may be replaced when dependencies are built.

// Use Case 1 (beginner level): distributed computing and non-determinism.
//
// Goal A.1 — introduce parallelism using the message passing paradigm:
//   visualize a message race (Fig 2) and the AMG 2013 pattern (Fig 3).
// Goal A.2 — define non-determinism associated to message passing:
//   run the same code with the same inputs twice and observe different
//   communication patterns (Figs 4a / 4b).

#include <iostream>

#include "core/anacin.hpp"
#include "course/use_cases.hpp"

using namespace anacin;

int main() {
  const course::UseCase1Result lesson = course::run_use_case_1();

  std::cout << "Goal A.1 — message passing patterns\n\n";
  std::cout << "message race on 4 processes (cf. paper Fig 2):\n"
            << viz::ascii_event_graph(lesson.message_race) << '\n';
  std::cout << "AMG 2013 pattern on 2 processes (cf. paper Fig 3):\n"
            << viz::ascii_event_graph(lesson.amg_two_ranks) << '\n';

  std::cout << "Goal A.2 — non-determinism (cf. paper Figs 4a/4b)\n\n";
  std::cout << "run (a):\n" << viz::ascii_event_graph(lesson.race_run_a);
  std::cout << "\nrun (b):\n" << viz::ascii_event_graph(lesson.race_run_b);
  std::cout << "\nSame code, same inputs — did the communication patterns "
               "differ? "
            << (lesson.runs_differ ? "YES" : "no (rerun with other seeds)")
            << '\n';

  // Save SVG renderings for the classroom.
  const std::string dir = core::results_dir();
  viz::render_event_graph(lesson.message_race,
                          {.node_radius = 7,
                           .column_width = 34,
                           .row_height = 56,
                           .title = "Use case 1: message race",
                           .annotate_matches = true,
                           .hide_collective_traffic = false})
      .save(dir + "/use_case_1_message_race.svg");
  std::cout << "\nSVG artifacts written under " << dir << "/\n";

  std::cout << "\nLesson check: "
            << (lesson.runs_differ ? "PASS" : "INCONCLUSIVE") << '\n';
  return lesson.runs_differ ? 0 : 1;
}

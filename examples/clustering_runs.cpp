// Grouping executions by behavior.
//
// Kernel distances do more than quantify non-determinism: they organize a
// pile of runs into behavior groups. Here a "mystery" sample mixes
// executions of two different mesh applications plus their noisy reruns;
// single-linkage clustering over the pairwise kernel-distance matrix
// recovers the two applications without any labels — the run-comparison
// workflow behind the ANACIN-X methodology.

#include <iostream>

#include "core/anacin.hpp"

using namespace anacin;

int main() {
  ThreadPool pool;
  const auto kernel = kernels::make_kernel("wl:2");

  // Build the mystery sample: 5 runs each of two different mesh
  // topologies (two "applications"), all at 100% ND.
  std::vector<kernels::LabeledGraph> graphs;
  std::vector<std::string> labels;
  for (const std::uint64_t topology : {7ull, 424242ull}) {
    for (int i = 0; i < 5; ++i) {
      patterns::PatternConfig shape;
      shape.num_ranks = 12;
      shape.topology_seed = topology;
      sim::SimConfig config;
      config.num_ranks = 12;
      config.seed = 10 + static_cast<std::uint64_t>(i);
      config.network.nd_fraction = 1.0;
      graphs.push_back(kernels::build_labeled_graph(
          graph::EventGraph::from_trace(
              core::run_pattern_once("unstructured_mesh", shape, config)
                  .trace),
          kernels::LabelPolicy::kTypePeer));
      labels.push_back("app" + std::string(topology == 7 ? "A" : "B") +
                       "/run" + std::to_string(i));
    }
  }

  const kernels::DistanceMatrix matrix =
      kernels::pairwise_distances(*kernel, graphs, pool);

  std::cout << "pairwise kernel distances (rounded):\n      ";
  for (std::size_t j = 0; j < matrix.size; ++j) {
    std::cout << pad_left(std::to_string(j), 5);
  }
  std::cout << '\n';
  for (std::size_t i = 0; i < matrix.size; ++i) {
    std::cout << pad_left(std::to_string(i), 4) << "  ";
    for (std::size_t j = 0; j < matrix.size; ++j) {
      std::cout << pad_left(format_fixed(matrix.at(i, j), 0), 5);
    }
    std::cout << "   " << labels[i] << '\n';
  }

  const double threshold = analysis::largest_gap_threshold(matrix);
  const analysis::Clustering clustering =
      analysis::single_linkage(matrix, threshold);

  std::cout << "\nautomatic threshold (largest gap): "
            << format_fixed(threshold, 2) << '\n';
  std::cout << "discovered " << clustering.num_clusters()
            << " behavior group(s):\n";
  for (std::size_t c = 0; c < clustering.num_clusters(); ++c) {
    std::cout << "  group " << c << ": ";
    for (const std::size_t member : clustering.clusters[c]) {
      std::cout << labels[member] << ' ';
    }
    std::cout << '\n';
  }
  std::cout << "\nThe two applications separate cleanly even though every "
               "run of each was\nnon-deterministic — structure dominates "
               "noise in the kernel-distance geometry.\n";
  return clustering.num_clusters() == 2 ? 0 : 1;
}

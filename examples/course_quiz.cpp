// The course module's comprehension quiz: prints the question bank per
// level with answer keys, then demonstrates automatic grading of a sample
// submission.

#include <iostream>

#include "course/quiz.hpp"

using namespace anacin::course;

int main() {
  for (const char* level : {"A", "B", "C"}) {
    std::cout << "===== level " << level << " questions =====\n";
    for (const QuizQuestion& question : questions_for(level)) {
      std::cout << render_question(question, /*reveal=*/true) << '\n';
    }
  }

  // A sample (imperfect) submission, graded automatically.
  const std::vector<std::pair<std::string, std::size_t>> submission{
      {"A.1-q1", 1}, {"A.2-q2", 0}, {"B.1-q1", 1},
      {"B.2-q1", 0},  // wrong on purpose
      {"C.1-q2", 2}, {"C.2-q3", 1},
  };
  const QuizGrade grade = grade_quiz(submission);
  std::cout << "sample submission: " << grade.correct << '/'
            << grade.answered << " correct (score "
            << static_cast<int>(grade.score() * 100) << "%)\n";
  for (const std::string& id : grade.missed_ids) {
    std::cout << "  review: " << id << '\n';
  }
  return 0;
}

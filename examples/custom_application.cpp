// Applying the pipeline to your own application ("students can extend the
// ANACIN-X environment to support their own application").
//
// This example writes a small producer/consumer pipeline with a work-
// stealing twist, annotates its phases with callsite scopes, then runs the
// full analysis: measure its non-determinism, locate the root source, and
// finally suppress it with record-and-replay.

#include <iostream>

#include "core/anacin.hpp"

using namespace anacin;

namespace {

/// A toy "scientific" app: rank 0 distributes work items round-robin; the
/// workers return results to rank 0, which collects them with
/// MPI_ANY_SOURCE (first-come-first-served) — the classic pattern whose
/// collection order is a root source of non-determinism.
void my_application(sim::Comm& comm) {
  const auto app = comm.scoped_frame("my_app");
  constexpr int kItemsPerWorker = 4;
  const int workers = comm.size() - 1;
  if (workers == 0) return;

  if (comm.rank() == 0) {
    {
      const auto phase = comm.scoped_frame("distribute");
      for (int item = 0; item < workers * kItemsPerWorker; ++item) {
        comm.send(1 + item % workers, /*tag=*/1,
                  sim::payload_from_u64(static_cast<std::uint64_t>(item)));
      }
    }
    {
      const auto phase = comm.scoped_frame("collect");
      double checksum = 0.0;
      for (int i = 0; i < workers * kItemsPerWorker; ++i) {
        // Root source: first-come-first-served collection.
        const sim::RecvResult r = comm.recv(sim::kAnySource, 2);
        checksum = checksum * 0.5 + sim::double_from_payload(r.payload);
      }
      (void)checksum;  // order-dependent!
    }
  } else {
    const auto phase = comm.scoped_frame("work");
    for (int i = 0; i < kItemsPerWorker; ++i) {
      const sim::RecvResult item = comm.recv(0, 1);
      comm.compute(10.0 + 3.0 * comm.rank());  // uneven work
      comm.send(0, 2,
                sim::payload_from_double(
                    static_cast<double>(sim::u64_from_payload(item.payload))));
    }
  }
}

}  // namespace

int main() {
  ThreadPool pool;
  constexpr int kRanks = 8;
  constexpr int kRuns = 10;

  // --- 1. measure ---------------------------------------------------------
  std::vector<graph::EventGraph> runs;
  for (int i = 0; i < kRuns; ++i) {
    sim::SimConfig config;
    config.num_ranks = kRanks;
    config.seed = 100 + static_cast<std::uint64_t>(i);
    config.network.nd_fraction = 1.0;
    runs.push_back(graph::EventGraph::from_trace(
        sim::run_simulation(config, my_application).trace));
  }
  sim::SimConfig reference_config;
  reference_config.num_ranks = kRanks;
  reference_config.network.nd_fraction = 0.0;
  const graph::EventGraph reference = graph::EventGraph::from_trace(
      sim::run_simulation(reference_config, my_application).trace);

  const auto kernel = kernels::make_kernel("wl:2");
  const analysis::NdMeasurement measurement = analysis::measure_nd(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, &reference,
      analysis::DistanceReduction::kToReference, pool);
  const analysis::Summary summary =
      analysis::summarize(measurement.distances);
  std::cout << "1. measured non-determinism of my_app: median kernel "
               "distance = "
            << summary.median << " (max " << summary.max << ")\n\n";

  // --- 2. locate the root source ------------------------------------------
  const analysis::RootCauseReport report = analysis::find_root_causes(
      *kernel, kernels::LabelPolicy::kTypePeer, runs, {}, pool);
  std::cout << "2. callstacks in highly non-deterministic regions:\n";
  for (const auto& entry : report.callstacks) {
    std::cout << "   " << pad_right(entry.path, 40) << ' '
              << format_fixed(entry.frequency, 3) << '\n';
  }
  if (!report.callstacks.empty()) {
    std::cout << "   => look at '" << report.callstacks.front().path
              << "' in the source code\n";
  }
  std::cout << '\n';

  // --- 3. suppress it with record-and-replay -------------------------------
  sim::SimConfig record_config;
  record_config.num_ranks = kRanks;
  record_config.seed = 1;
  record_config.network.nd_fraction = 1.0;
  const replay::RecordReplayResult rr = replay::record_and_replay(
      record_config, record_config, my_application);
  const double replay_distance = kernel->distance(
      kernels::build_labeled_graph(
          graph::EventGraph::from_trace(rr.recorded.trace),
          kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(
          graph::EventGraph::from_trace(rr.replayed.trace),
          kernels::LabelPolicy::kTypePeer));
  std::cout << "3. record-and-replay: kernel distance(recorded, replayed) = "
            << replay_distance
            << (replay_distance == 0.0 ? "  (non-determinism suppressed)"
                                       : "")
            << '\n';
  return 0;
}

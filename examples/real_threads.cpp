// Simulated vs real non-determinism.
//
// The course environment *mimics* platform noise with a seeded jitter
// model. This example runs the same message race on the native-threads
// backend, where the only source of non-determinism is the actual OS
// scheduler — and feeds both kinds of runs through the identical analysis
// pipeline. Whatever your machine's scheduler does today, the method
// (event graphs + kernel distance) measures it.

#include <iostream>

#include "core/anacin.hpp"
#include "realtime/realtime.hpp"

using namespace anacin;

namespace {

std::vector<int> recv_order(const graph::EventGraph& graph) {
  std::vector<int> order;
  for (const graph::EventNode& node : graph.nodes()) {
    if (node.type == trace::EventType::kRecv && node.rank == 0) {
      order.push_back(node.peer);
    }
  }
  return order;
}

}  // namespace

int main() {
  constexpr int kRanks = 6;
  constexpr int kRuns = 8;

  // --- real threads ---------------------------------------------------------
  realtime::RtConfig rt_config;
  rt_config.num_ranks = kRanks;
  const realtime::RankProgram rt_program = [](realtime::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.compute(50.0);  // a little real work before sending
      comm.send(0, 0);
    }
  };

  const auto kernel = kernels::make_kernel("wl:2");
  std::vector<graph::EventGraph> real_runs;
  std::cout << "native-threads runs (rank 0 receive order):\n";
  for (int i = 0; i < kRuns; ++i) {
    real_runs.push_back(graph::EventGraph::from_trace(
        realtime::run_threads(rt_config, rt_program)));
    std::cout << "  run " << i << ": ";
    for (const int src : recv_order(real_runs.back())) std::cout << src << ' ';
    std::cout << '\n';
  }

  double max_real_distance = 0.0;
  {
    std::vector<kernels::FeatureVector> features;
    for (const auto& run : real_runs) {
      features.push_back(kernel->features(kernels::build_labeled_graph(
          run, kernels::LabelPolicy::kTypePeer)));
    }
    for (std::size_t i = 0; i < features.size(); ++i) {
      for (std::size_t j = i + 1; j < features.size(); ++j) {
        max_real_distance =
            std::max(max_real_distance,
                     kernels::kernel_distance(features[i], features[j]));
      }
    }
  }
  std::cout << "max pairwise kernel distance across real runs: "
            << max_real_distance << '\n';
  std::cout << (max_real_distance > 0.0
                    ? "=> your OS scheduler produced measurable "
                      "non-determinism\n"
                    : "=> the scheduler happened to be stable this time — "
                      "rerun, or raise the rank count\n");

  // --- simulator, for comparison -------------------------------------------
  sim::SimConfig sim_config;
  sim_config.num_ranks = kRanks;
  sim_config.network.nd_fraction = 1.0;
  const sim::RankProgram sim_program = [](sim::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) (void)comm.recv();
    } else {
      comm.send(0, 0);
    }
  };
  std::vector<kernels::FeatureVector> sim_features;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    sim_config.seed = seed;
    sim_features.push_back(kernel->features(kernels::build_labeled_graph(
        graph::EventGraph::from_trace(
            sim::run_simulation(sim_config, sim_program).trace),
        kernels::LabelPolicy::kTypePeer)));
  }
  double max_sim_distance = 0.0;
  for (std::size_t i = 0; i < sim_features.size(); ++i) {
    for (std::size_t j = i + 1; j < sim_features.size(); ++j) {
      max_sim_distance =
          std::max(max_sim_distance,
                   kernels::kernel_distance(sim_features[i], sim_features[j]));
    }
  }
  std::cout << "\nsimulator at 100% ND, same program: max pairwise distance "
            << max_sim_distance << '\n';
  std::cout << "Same pipeline, two noise sources — the course teaches with "
               "the controllable one.\n";
  return 0;
}

// Quickstart: simulate a racing MPI program twice, build its event graphs,
// and measure the non-determinism between the two runs with a graph-kernel
// distance — the whole ANACIN pipeline in ~50 lines.

#include <iostream>

#include "core/anacin.hpp"

using namespace anacin;

int main() {
  // 1. An "MPI" program: ranks 1..3 race messages into rank 0's wildcard
  //    receives (branch on comm.rank() exactly like real MPI code).
  const sim::RankProgram program = [](sim::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < comm.size() - 1; ++i) {
        const sim::RecvResult message = comm.recv();  // MPI_ANY_SOURCE
        std::cout << "rank 0 received from rank " << message.source << '\n';
      }
    } else {
      comm.send(0, /*tag=*/0);
    }
  };

  // 2. Run it twice with different seeds at 100% non-determinism — two
  //    independent executions of the same code on a "noisy" platform.
  sim::SimConfig config;
  config.num_ranks = 4;
  config.network.nd_fraction = 1.0;

  config.seed = 1;
  const sim::RunResult run_a = sim::run_simulation(config, program);
  std::cout << "---\n";
  config.seed = 2;
  const sim::RunResult run_b = sim::run_simulation(config, program);

  // 3. Event graphs: nodes are MPI events, edges are program order and
  //    messages.
  const graph::EventGraph graph_a = graph::EventGraph::from_trace(run_a.trace);
  const graph::EventGraph graph_b = graph::EventGraph::from_trace(run_b.trace);
  std::cout << "---\nrun A event graph:\n"
            << viz::ascii_event_graph(graph_a);

  // 4. Kernel distance: the scalar proxy for non-determinism.
  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(graph_a, kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(graph_b, kernels::LabelPolicy::kTypePeer));
  std::cout << "---\nkernel distance between the two runs: " << distance
            << (distance > 0 ? "  (the runs differ!)" : "  (identical runs)")
            << '\n';
  return 0;
}

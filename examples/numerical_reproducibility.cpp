// Why non-determinism matters scientifically: the paper motivates the
// course with the Enzo example, where different runs identified different
// galactic halos because message order changed floating-point results.
//
// This example reproduces that failure mode in miniature: rank 0 sums
// contributions in MPI_ANY_SOURCE arrival order. Addition of doubles is
// not associative, so different match orders give *numerically different
// totals* — and the fixed-order tree reduction (our library collective)
// stays bit-stable.

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <set>

#include "core/anacin.hpp"

using namespace anacin;

namespace {

/// Wildcard-order accumulation: the non-reproducible reduction.
double run_naive_sum(std::uint64_t seed, int ranks) {
  double total = 0.0;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  sim::run_simulation(config, [&total](sim::Comm& comm) {
    if (comm.rank() == 0) {
      double sum = 0.0;
      for (int i = 0; i < comm.size() - 1; ++i) {
        sum += sim::double_from_payload(comm.recv().payload);
      }
      total = sum;
    } else {
      // Wildly mixed magnitudes make the addition order visible.
      const double value =
          comm.rank() % 3 == 0 ? 1e16 : (comm.rank() % 3 == 1 ? 1.0 : -1e16);
      comm.send(0, 0, sim::payload_from_double(value));
    }
  });
  return total;
}

/// Fixed-order tree reduction: the reproducible one.
double run_tree_sum(std::uint64_t seed, int ranks) {
  double total = 0.0;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = 1.0;
  sim::run_simulation(config, [&total](sim::Comm& comm) {
    const double value =
        comm.rank() == 0
            ? 0.0
            : (comm.rank() % 3 == 0 ? 1e16
                                    : (comm.rank() % 3 == 1 ? 1.0 : -1e16));
    const double sum = comm.reduce_sum(0, value);
    if (comm.rank() == 0) total = sum;
  });
  return total;
}

}  // namespace

int main() {
  constexpr int kRanks = 16;
  constexpr int kRuns = 12;

  std::set<double> naive_results;
  std::set<double> tree_results;
  std::cout << "run   naive (ANY_SOURCE order)        tree reduction\n";
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    const double naive = run_naive_sum(seed, kRanks);
    const double tree = run_tree_sum(seed, kRanks);
    naive_results.insert(naive);
    tree_results.insert(tree);
    std::printf("%3" PRIu64 "   %+.17e   %+.17e\n", seed, naive, tree);
  }

  std::cout << "\ndistinct results over " << kRuns << " runs:\n";
  std::cout << "  naive wildcard sum : " << naive_results.size()
            << " distinct value(s)\n";
  std::cout << "  fixed-order reduce : " << tree_results.size()
            << " distinct value(s)\n\n";
  std::cout << "The same code with the same inputs produced "
            << naive_results.size()
            << " different totals — exactly how non-deterministic message "
               "ordering\nchanges scientific results (cf. the paper's Enzo "
               "motivation). A fixed reduction\norder restores "
               "reproducibility.\n";
  return tree_results.size() == 1 ? 0 : 1;
}

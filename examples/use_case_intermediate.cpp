// Use Case 2 (intermediate level): factors that impact non-determinism.
//
// Goal B.1 — the number of MPI processes is directly related to the amount
//   of non-determinism (paper Fig 5).
// Goal B.2 — more iterations of the communication pattern accumulate more
//   non-determinism within one execution (paper Fig 6).
//
// Scaled to laptop size by default; pass --paper-scale for the paper's
// 32/16-process, 20-run configuration.

#include <iostream>

#include "core/anacin.hpp"
#include "course/use_cases.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  bool paper_scale = false;
  int runs = 12;
  ArgParser parser("Use case 2: factors that impact non-determinism");
  parser.add_flag("paper-scale", "use the paper's 32/16 procs x 20 runs",
                  &paper_scale);
  parser.add_int("runs", "executions per setting", &runs);
  if (!parser.parse(argc, argv)) return 0;

  const int many = paper_scale ? 32 : 16;
  const int few = paper_scale ? 16 : 8;
  if (paper_scale) runs = 20;

  ThreadPool pool;
  const course::UseCase2Result lesson =
      course::run_use_case_2(pool, many, few, runs);

  std::cout << "Goal B.1 — number of processes (cf. paper Fig 5)\n";
  std::cout << "  " << many
            << " procs: median distance = " << lesson.many_procs.median
            << " (q1 " << lesson.many_procs.q1 << ", q3 "
            << lesson.many_procs.q3 << ")\n";
  std::cout << "  " << few
            << " procs: median distance = " << lesson.few_procs.median
            << " (q1 " << lesson.few_procs.q1 << ", q3 "
            << lesson.few_procs.q3 << ")\n";
  std::cout << "  Mann-Whitney p = " << lesson.procs_p_value << '\n';
  std::cout << "  more processes => more non-determinism: "
            << (lesson.procs_effect_observed ? "OBSERVED" : "not observed")
            << "\n\n";

  std::cout << "Goal B.2 — iterations (cf. paper Fig 6)\n";
  std::cout << "  2 iterations: median distance = "
            << lesson.two_iterations.median << '\n';
  std::cout << "  1 iteration:  median distance = "
            << lesson.one_iteration.median << '\n';
  std::cout << "  Mann-Whitney p = " << lesson.iterations_p_value << '\n';
  std::cout << "  more iterations => more non-determinism: "
            << (lesson.iterations_effect_observed ? "OBSERVED"
                                                  : "not observed")
            << "\n\n";

  std::cout << "Takeaway: when a non-deterministic bug is hard to "
               "reproduce, increase the\nnumber of processes and iterations "
               "to make the non-determinism more visible.\n";

  const bool pass =
      lesson.procs_effect_observed && lesson.iterations_effect_observed;
  std::cout << "\nLesson check: " << (pass ? "PASS" : "FAIL") << '\n';
  return pass ? 0 : 1;
}

// Use Case 3 (advanced level): root sources of non-determinism.
//
// Goal C.1 — quantify the amount of non-determinism: sweep the percentage
//   of non-determinism and show the kernel distance tracks it (paper Fig 7).
// Goal C.2 — identify root sources: find the callstacks active in the most
//   non-deterministic logical-time regions (paper Fig 8).

#include <iostream>

#include "core/anacin.hpp"
#include "course/use_cases.hpp"

using namespace anacin;

int main(int argc, const char** argv) {
  bool paper_scale = false;
  ArgParser parser("Use case 3: root sources of non-determinism");
  parser.add_flag("paper-scale", "use the paper's 32 procs x 20 runs x 10% "
                                 "steps", &paper_scale);
  if (!parser.parse(argc, argv)) return 0;

  ThreadPool pool;
  const course::UseCase3Result lesson =
      paper_scale ? course::run_use_case_3(pool, 32, 20, 10)
                  : course::run_use_case_3(pool, 12, 10, 25);

  std::cout << "Goal C.1 — ND% controls measured non-determinism (Fig 7)\n";
  for (std::size_t i = 0; i < lesson.nd_percents.size(); ++i) {
    std::cout << "  " << pad_left(format_fixed(lesson.nd_percents[i], 0), 4)
              << "% ND: median distance = "
              << format_fixed(lesson.distance_by_percent[i].median, 3)
              << '\n';
  }
  std::cout << "  Spearman(median, ND%) = "
            << format_fixed(lesson.spearman_vs_percent, 3) << " => "
            << (lesson.monotone_observed ? "monotone relationship OBSERVED"
                                         : "not monotone")
            << "\n\n";

  std::cout << "Goal C.2 — root sources via callstacks (Fig 8)\n";
  std::vector<std::string> labels;
  std::vector<double> frequencies;
  for (const auto& entry : lesson.root_causes.callstacks) {
    labels.push_back(entry.path);
    frequencies.push_back(entry.frequency);
  }
  if (!labels.empty()) {
    std::cout << viz::ascii_bar_chart(labels, frequencies) << '\n';
    const auto& top = lesson.root_causes.callstacks.front();
    std::cout << "likely root source: " << top.path << '\n'
              << "  (" << format_fixed(top.wildcard_share * 100.0, 1)
              << "% of its occurrences are MPI_ANY_SOURCE receives)\n";
  }

  const bool pass = lesson.monotone_observed &&
                    lesson.wildcard_recv_attributed;
  std::cout << "\nLesson check: " << (pass ? "PASS" : "FAIL") << '\n';
  return pass ? 0 : 1;
}

// Debugging deadlocks with the simulator's built-in detection.
//
// Deadlocks are the sibling failure mode of non-determinism in message
// passing courses: both come from the timing and matching of messages.
// The engine detects the classic patterns and reports which rank is stuck
// in which call — this example walks through three textbook cases and
// their fixes.

#include <iostream>

#include "core/anacin.hpp"
#include "support/error.hpp"

using namespace anacin;

namespace {

void show(const std::string& title, const sim::RankProgram& program,
          int ranks) {
  std::cout << "--- " << title << " ---\n";
  sim::SimConfig config;
  config.num_ranks = ranks;
  try {
    sim::run_simulation(config, program);
    std::cout << "completed without deadlock\n\n";
  } catch (const DeadlockError& error) {
    std::cout << error.what() << '\n';
  }
}

}  // namespace

int main() {
  // Case 1: everyone receives first — nobody ever sends.
  show("case 1: mutual blocking receives (BROKEN)",
       [](sim::Comm& comm) {
         const int partner = comm.rank() ^ 1;
         (void)comm.recv(partner, 0);  // both partners block here forever
         comm.send(partner, 0);
       },
       2);

  // Fix: odd ranks send first (or use nonblocking receives).
  show("case 1 fixed: stagger the operations",
       [](sim::Comm& comm) {
         const int partner = comm.rank() ^ 1;
         if (comm.rank() % 2 == 0) {
           (void)comm.recv(partner, 0);
           comm.send(partner, 0);
         } else {
           comm.send(partner, 0);
           (void)comm.recv(partner, 0);
         }
       },
       2);

  // Case 2: synchronous sends in a cycle. ssend cannot complete until the
  // receiver posts a matching receive, but every rank is itself stuck in
  // ssend.
  show("case 2: cyclic synchronous sends (BROKEN)",
       [](sim::Comm& comm) {
         const int next = (comm.rank() + 1) % comm.size();
         comm.ssend(next, 0);
         (void)comm.recv();
       },
       3);

  // Fix: post the receive before the synchronous send.
  show("case 2 fixed: irecv before ssend",
       [](sim::Comm& comm) {
         const int next = (comm.rank() + 1) % comm.size();
         sim::Request r = comm.irecv();
         comm.ssend(next, 0);
         (void)comm.wait(r);
       },
       3);

  // Case 3: tag mismatch — the message arrives but can never match.
  show("case 3: tag mismatch (BROKEN)",
       [](sim::Comm& comm) {
         if (comm.rank() == 0) comm.send(1, /*tag=*/7);
         else (void)comm.recv(sim::kAnySource, /*tag=*/8);
       },
       2);

  std::cout << "Note how each diagnostic names the blocked call and shows "
               "queued unexpected\nmessages — the starting point for every "
               "real deadlock hunt.\n";
  return 0;
}

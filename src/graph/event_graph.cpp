#include "graph/event_graph.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::graph {

EventGraph EventGraph::from_trace(const trace::Trace& trace) {
  EventGraph graph;
  graph.callstacks_ = trace.callstacks();

  const int num_ranks = trace.num_ranks();
  graph.rank_offsets_.assign(static_cast<std::size_t>(num_ranks) + 1, 0);
  std::size_t total = 0;
  for (int r = 0; r < num_ranks; ++r) {
    graph.rank_offsets_[static_cast<std::size_t>(r)] = total;
    total += trace.rank_events(r).size();
  }
  graph.rank_offsets_[static_cast<std::size_t>(num_ranks)] = total;

  graph.nodes_.reserve(total);
  for (int r = 0; r < num_ranks; ++r) {
    const auto& events = trace.rank_events(r);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const trace::Event& e = events[i];
      EventNode node;
      node.type = e.type;
      node.rank = e.rank;
      node.seq = static_cast<std::int64_t>(i);
      node.peer = e.peer;
      node.tag = e.tag;
      node.size_bytes = e.size_bytes;
      node.t_start = e.t_start;
      node.t_end = e.t_end;
      node.callstack_id = e.callstack_id;
      node.posted_source = e.posted_source;
      node.jittered = e.jittered;
      graph.nodes_.push_back(node);
    }
  }

  // Message edges from each send to its matched receive.
  for (int r = 0; r < num_ranks; ++r) {
    const auto& events = trace.rank_events(r);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const trace::Event& e = events[i];
      if (e.type != trace::EventType::kRecv) continue;
      ANACIN_CHECK(e.matched_rank >= 0 && e.matched_seq >= 0,
                   "recv event without a matched send (rank "
                       << r << ", seq " << i << ")");
      const NodeId send_node = graph.node_of(e.matched_rank, e.matched_seq);
      const NodeId recv_node = graph.node_of(r, static_cast<std::int64_t>(i));
      ANACIN_CHECK(graph.nodes_[send_node].type == trace::EventType::kSend,
                   "matched event is not a send");
      graph.message_edges_.emplace_back(send_node, recv_node);
    }
  }
  graph.finalize_structure();
  return graph;
}

EventGraph EventGraph::from_parts(
    std::vector<EventNode> nodes, std::vector<std::size_t> rank_offsets,
    std::vector<std::pair<NodeId, NodeId>> message_edges,
    trace::CallstackRegistry callstacks) {
  if (rank_offsets.size() < 2 || rank_offsets.front() != 0 ||
      rank_offsets.back() != nodes.size()) {
    throw ParseError("event graph parts: malformed rank offsets");
  }
  for (std::size_t r = 1; r < rank_offsets.size(); ++r) {
    if (rank_offsets[r] < rank_offsets[r - 1]) {
      throw ParseError("event graph parts: rank offsets not monotone");
    }
  }
  for (const auto& node : nodes) {
    if (node.callstack_id >= callstacks.size()) {
      throw ParseError("event graph parts: callstack id out of range");
    }
  }
  for (const auto& [send_node, recv_node] : message_edges) {
    if (send_node >= nodes.size() || recv_node >= nodes.size() ||
        nodes[send_node].type != trace::EventType::kSend ||
        nodes[recv_node].type != trace::EventType::kRecv) {
      throw ParseError("event graph parts: invalid message edge");
    }
  }
  EventGraph graph;
  graph.nodes_ = std::move(nodes);
  graph.rank_offsets_ = std::move(rank_offsets);
  graph.message_edges_ = std::move(message_edges);
  graph.callstacks_ = std::move(callstacks);
  graph.finalize_structure();
  return graph;
}

void EventGraph::finalize_structure() {
  Digraph::Builder builder(nodes_.size());
  // Program-order edges between consecutive events of a rank.
  for (int r = 0; r < num_ranks(); ++r) {
    const NodeId base = rank_base(r);
    const std::size_t count = rank_size(r);
    for (std::size_t i = 1; i < count; ++i) {
      builder.add_edge(base + static_cast<NodeId>(i) - 1,
                       base + static_cast<NodeId>(i));
    }
  }
  // Message edges from each send to its matched receive.
  for (const auto& [send_node, recv_node] : message_edges_) {
    builder.add_edge(send_node, recv_node);
  }
  digraph_ = std::move(builder).build();

  // Lamport clocks over the DAG: 1 + max over predecessors.
  max_lamport_ = 0;
  const std::vector<NodeId> order = digraph_.topological_order();
  for (const NodeId v : order) {
    std::uint64_t clock = 1;
    for (const NodeId u : digraph_.in_neighbors(v)) {
      clock = std::max(clock, nodes_[u].lamport + 1);
    }
    nodes_[v].lamport = clock;
    max_lamport_ = std::max(max_lamport_, clock);
  }
}

const EventNode& EventGraph::node(NodeId id) const {
  ANACIN_CHECK(id < nodes_.size(), "node id " << id << " out of range");
  return nodes_[id];
}

NodeId EventGraph::rank_base(int rank) const {
  ANACIN_CHECK(rank >= 0 && rank < num_ranks(),
               "rank " << rank << " out of range");
  return static_cast<NodeId>(rank_offsets_[static_cast<std::size_t>(rank)]);
}

std::size_t EventGraph::rank_size(int rank) const {
  ANACIN_CHECK(rank >= 0 && rank < num_ranks(),
               "rank " << rank << " out of range");
  return rank_offsets_[static_cast<std::size_t>(rank) + 1] -
         rank_offsets_[static_cast<std::size_t>(rank)];
}

NodeId EventGraph::node_of(int rank, std::int64_t seq) const {
  ANACIN_CHECK(seq >= 0 && static_cast<std::size_t>(seq) < rank_size(rank),
               "event seq " << seq << " out of range on rank " << rank);
  return rank_base(rank) + static_cast<NodeId>(seq);
}

}  // namespace anacin::graph

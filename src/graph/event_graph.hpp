#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "trace/callstack.hpp"
#include "trace/trace.hpp"

namespace anacin::graph {

/// One node of an event graph (a traced MPI event plus its Lamport clock).
struct EventNode {
  trace::EventType type = trace::EventType::kInit;
  std::int32_t rank = -1;
  std::int64_t seq = -1;
  std::int32_t peer = -1;
  std::int32_t tag = -1;
  std::uint32_t size_bytes = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  std::uint32_t callstack_id = 0;
  std::int32_t posted_source = -2;
  bool jittered = false;
  /// Logical time: 1 + max over predecessors (sources have 1).
  std::uint64_t lamport = 0;
};

/// Graph model of the communication pattern of one execution (the paper's
/// core data structure).
///
/// Nodes are MPI events; edges are program order within a rank plus one
/// message edge from each send to the receive it matched. Event graphs
/// encode time logically: Lamport clocks are computed over the DAG, so two
/// runs of the same program are comparable structurally even though their
/// virtual timestamps differ.
class EventGraph {
public:
  static EventGraph from_trace(const trace::Trace& trace);

  /// Rebuild a graph from its serialized parts (the binary codec in
  /// src/store). `rank_offsets` has num_ranks+1 monotone entries ending at
  /// nodes.size(); message edges must connect a send to a recv. Program
  /// order edges, the digraph, and Lamport clocks are reconstructed
  /// deterministically, so a round trip through the codec is exact.
  /// Throws ParseError on structurally invalid parts.
  static EventGraph from_parts(
      std::vector<EventNode> nodes, std::vector<std::size_t> rank_offsets,
      std::vector<std::pair<NodeId, NodeId>> message_edges,
      trace::CallstackRegistry callstacks);

  std::size_t num_nodes() const { return nodes_.size(); }
  int num_ranks() const { return static_cast<int>(rank_offsets_.size()) - 1; }

  const EventNode& node(NodeId id) const;
  std::span<const EventNode> nodes() const { return nodes_; }

  /// Node ids of a rank's events are contiguous: [offset, offset+count).
  NodeId rank_base(int rank) const;
  std::size_t rank_size(int rank) const;
  /// Node id of the event (rank, seq).
  NodeId node_of(int rank, std::int64_t seq) const;

  const Digraph& digraph() const { return digraph_; }
  /// (send_node, recv_node) pairs, in recv completion order per rank.
  const std::vector<std::pair<NodeId, NodeId>>& message_edges() const {
    return message_edges_;
  }

  std::uint64_t max_lamport() const { return max_lamport_; }

  /// Callstack registry copied from the originating trace.
  const trace::CallstackRegistry& callstacks() const { return callstacks_; }

private:
  /// Build digraph_ (program order + message edges) and Lamport clocks
  /// from nodes_, rank_offsets_, and message_edges_.
  void finalize_structure();

  std::vector<EventNode> nodes_;
  std::vector<std::size_t> rank_offsets_;  // size num_ranks+1
  Digraph digraph_;
  std::vector<std::pair<NodeId, NodeId>> message_edges_;
  std::uint64_t max_lamport_ = 0;
  trace::CallstackRegistry callstacks_;
};

}  // namespace anacin::graph

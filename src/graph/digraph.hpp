#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace anacin::graph {

using NodeId = std::uint32_t;

/// Immutable directed graph in compressed sparse row form (both directions).
///
/// Built once via Builder, then queried. Event graphs are DAGs by
/// construction; `topological_order` throws on cycles as a structural
/// integrity check.
class Digraph {
public:
  class Builder {
  public:
    explicit Builder(std::size_t num_nodes) : num_nodes_(num_nodes) {}
    void add_edge(NodeId from, NodeId to);
    std::size_t num_edges() const { return edges_.size(); }
    Digraph build() &&;

  private:
    std::size_t num_nodes_;
    std::vector<std::pair<NodeId, NodeId>> edges_;
  };

  Digraph() = default;

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return out_targets_.size(); }

  std::span<const NodeId> out_neighbors(NodeId node) const;
  std::span<const NodeId> in_neighbors(NodeId node) const;

  std::size_t out_degree(NodeId node) const {
    return out_neighbors(node).size();
  }
  std::size_t in_degree(NodeId node) const { return in_neighbors(node).size(); }

  /// Kahn topological order; throws Error if the graph has a cycle.
  std::vector<NodeId> topological_order() const;

  bool is_dag() const;

private:
  std::size_t num_nodes_ = 0;
  std::vector<std::uint64_t> out_offsets_;  // size num_nodes_+1
  std::vector<NodeId> out_targets_;
  std::vector<std::uint64_t> in_offsets_;
  std::vector<NodeId> in_sources_;
};

}  // namespace anacin::graph

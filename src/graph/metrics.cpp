#include "graph/metrics.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::graph {

std::uint64_t CommMatrix::total_messages() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : messages) total += count;
  return total;
}

CommMatrix communication_matrix(const EventGraph& graph) {
  CommMatrix matrix;
  matrix.num_ranks = graph.num_ranks();
  const auto cells = static_cast<std::size_t>(matrix.num_ranks) *
                     static_cast<std::size_t>(matrix.num_ranks);
  matrix.messages.assign(cells, 0);
  matrix.bytes.assign(cells, 0);
  for (const auto& [send_node, recv_node] : graph.message_edges()) {
    const EventNode& send = graph.node(send_node);
    const EventNode& recv = graph.node(recv_node);
    const std::size_t cell =
        static_cast<std::size_t>(send.rank) *
            static_cast<std::size_t>(matrix.num_ranks) +
        static_cast<std::size_t>(recv.rank);
    ++matrix.messages[cell];
    matrix.bytes[cell] += send.size_bytes;
  }
  return matrix;
}

CriticalPath critical_path(const EventGraph& graph) {
  CriticalPath path;
  if (graph.num_nodes() == 0) return path;

  // Start from the event with the largest t_end.
  NodeId current = 0;
  for (NodeId v = 1; v < graph.num_nodes(); ++v) {
    if (graph.node(v).t_end > graph.node(current).t_end) current = v;
  }
  path.virtual_duration = graph.node(current).t_end;

  std::vector<NodeId> reversed;
  double recv_time = 0.0;
  for (;;) {
    reversed.push_back(current);
    const EventNode& node = graph.node(current);
    const auto predecessors = graph.digraph().in_neighbors(current);
    if (predecessors.empty()) {
      if (node.type == trace::EventType::kRecv) {
        recv_time += node.t_end - node.t_start;
      }
      break;
    }
    NodeId latest = predecessors[0];
    for (const NodeId p : predecessors) {
      if (graph.node(p).t_end > graph.node(latest).t_end) latest = p;
    }
    if (node.type == trace::EventType::kRecv) {
      // Only the wait beyond the predecessor's finish is attributable to
      // this receive; windows on different ranks overlap otherwise.
      recv_time += std::max(
          0.0, node.t_end - std::max(node.t_start, graph.node(latest).t_end));
    }
    current = latest;
  }
  std::reverse(reversed.begin(), reversed.end());
  path.nodes = std::move(reversed);
  path.recv_share = path.virtual_duration > 0.0
                        ? recv_time / path.virtual_duration
                        : 0.0;
  return path;
}

std::vector<std::size_t> parallelism_profile(const EventGraph& graph) {
  std::vector<std::size_t> profile(graph.max_lamport(), 0);
  for (const EventNode& node : graph.nodes()) {
    ANACIN_CHECK(node.lamport >= 1, "node without a Lamport clock");
    ++profile[static_cast<std::size_t>(node.lamport - 1)];
  }
  return profile;
}

}  // namespace anacin::graph

#pragma once

#include <cstdint>
#include <vector>

#include "graph/event_graph.hpp"

namespace anacin::graph {

/// Per-rank-pair message traffic of one execution.
struct CommMatrix {
  int num_ranks = 0;
  /// messages[src * num_ranks + dst].
  std::vector<std::uint64_t> messages;
  std::vector<std::uint64_t> bytes;

  std::uint64_t messages_between(int src, int dst) const {
    return messages[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(num_ranks) +
                    static_cast<std::size_t>(dst)];
  }
  std::uint64_t bytes_between(int src, int dst) const {
    return bytes[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(num_ranks) +
                 static_cast<std::size_t>(dst)];
  }
  std::uint64_t total_messages() const;
};

CommMatrix communication_matrix(const EventGraph& graph);

/// The dependency chain with the largest virtual-time span: follow, from
/// the last-finishing event backwards, the predecessor that finished
/// latest. Teaches students where the execution's time actually went.
struct CriticalPath {
  std::vector<NodeId> nodes;  // in execution order
  double virtual_duration = 0.0;
  /// Fraction of the path spent in receive events (waiting on messages).
  double recv_share = 0.0;
};

CriticalPath critical_path(const EventGraph& graph);

/// Number of events at each Lamport tick (index 0 = tick 1): a profile of
/// the available parallelism across logical time.
std::vector<std::size_t> parallelism_profile(const EventGraph& graph);

}  // namespace anacin::graph

#include "graph/slicing.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::graph {

SliceSet slice_by_lamport_window(const EventGraph& graph,
                                 std::uint64_t window) {
  ANACIN_CHECK(window >= 1, "slice window must be >= 1, got " << window);
  SliceSet slices;
  slices.window = window;
  slices.num_slices =
      graph.num_nodes() == 0
          ? 0
          : static_cast<std::size_t>((graph.max_lamport() - 1) / window) + 1;
  slices.slice_of_node.resize(graph.num_nodes());
  slices.nodes_in_slice.resize(slices.num_slices);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const std::uint64_t lamport = graph.node(v).lamport;
    ANACIN_CHECK(lamport >= 1, "node without a Lamport clock");
    const auto slice = static_cast<std::uint32_t>((lamport - 1) / window);
    slices.slice_of_node[v] = slice;
    slices.nodes_in_slice[slice].push_back(v);
  }
  return slices;
}

SliceSet slice_into(const EventGraph& graph, std::size_t target_slices) {
  ANACIN_CHECK(target_slices >= 1, "need at least one slice");
  const std::uint64_t span = graph.max_lamport();
  const std::uint64_t window =
      span == 0 ? 1 : (span + target_slices - 1) / target_slices;
  return slice_by_lamport_window(graph, window);
}

SliceSet slice_by_virtual_time_window(const EventGraph& graph,
                                      double window_us) {
  ANACIN_CHECK(window_us > 0.0, "virtual-time window must be positive");
  SliceSet slices;
  slices.window = static_cast<std::uint64_t>(window_us);
  double makespan = 0.0;
  for (const EventNode& node : graph.nodes()) {
    makespan = std::max(makespan, node.t_end);
  }
  slices.num_slices =
      graph.num_nodes() == 0
          ? 0
          : static_cast<std::size_t>(makespan / window_us) + 1;
  slices.slice_of_node.resize(graph.num_nodes());
  slices.nodes_in_slice.resize(slices.num_slices);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto slice =
        static_cast<std::uint32_t>(graph.node(v).t_end / window_us);
    slices.slice_of_node[v] = slice;
    slices.nodes_in_slice[slice].push_back(v);
  }
  return slices;
}

}  // namespace anacin::graph

#include "graph/digraph.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::graph {

void Digraph::Builder::add_edge(NodeId from, NodeId to) {
  ANACIN_CHECK(from < num_nodes_ && to < num_nodes_,
               "edge (" << from << ", " << to << ") out of range for "
                        << num_nodes_ << " nodes");
  edges_.emplace_back(from, to);
}

Digraph Digraph::Builder::build() && {
  Digraph graph;
  graph.num_nodes_ = num_nodes_;
  graph.out_offsets_.assign(num_nodes_ + 1, 0);
  graph.in_offsets_.assign(num_nodes_ + 1, 0);

  for (const auto& [from, to] : edges_) {
    ++graph.out_offsets_[from + 1];
    ++graph.in_offsets_[to + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) {
    graph.out_offsets_[i] += graph.out_offsets_[i - 1];
    graph.in_offsets_[i] += graph.in_offsets_[i - 1];
  }
  graph.out_targets_.resize(edges_.size());
  graph.in_sources_.resize(edges_.size());
  std::vector<std::uint64_t> out_cursor(graph.out_offsets_.begin(),
                                        graph.out_offsets_.end() - 1);
  std::vector<std::uint64_t> in_cursor(graph.in_offsets_.begin(),
                                       graph.in_offsets_.end() - 1);
  for (const auto& [from, to] : edges_) {
    graph.out_targets_[out_cursor[from]++] = to;
    graph.in_sources_[in_cursor[to]++] = from;
  }
  return graph;
}

std::span<const NodeId> Digraph::out_neighbors(NodeId node) const {
  ANACIN_CHECK(node < num_nodes_, "node " << node << " out of range");
  return {out_targets_.data() + out_offsets_[node],
          out_targets_.data() + out_offsets_[node + 1]};
}

std::span<const NodeId> Digraph::in_neighbors(NodeId node) const {
  ANACIN_CHECK(node < num_nodes_, "node " << node << " out of range");
  return {in_sources_.data() + in_offsets_[node],
          in_sources_.data() + in_offsets_[node + 1]};
}

std::vector<NodeId> Digraph::topological_order() const {
  std::vector<std::uint32_t> in_degree_left(num_nodes_);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    in_degree_left[v] = static_cast<std::uint32_t>(in_degree(v));
    if (in_degree_left[v] == 0) frontier.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(num_nodes_);
  // Process in node-id order within the frontier for a deterministic result.
  std::size_t head = 0;
  while (head < frontier.size()) {
    const NodeId v = frontier[head++];
    order.push_back(v);
    for (const NodeId w : out_neighbors(v)) {
      if (--in_degree_left[w] == 0) frontier.push_back(w);
    }
  }
  ANACIN_CHECK(order.size() == num_nodes_,
               "graph has a cycle: only " << order.size() << " of "
                                          << num_nodes_
                                          << " nodes are orderable");
  return order;
}

bool Digraph::is_dag() const {
  try {
    (void)topological_order();
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace anacin::graph

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/event_graph.hpp"

namespace anacin::graph {

/// Partition of an event graph's nodes into consecutive logical-time
/// windows. Slice s contains nodes with Lamport clock in
/// [s*window + 1, (s+1)*window].
///
/// Slices are the unit of localisation for root-cause analysis: per-slice
/// kernel distances across runs show *when* (in logical time) executions
/// diverge, and the callstacks present in the most divergent slices point
/// at the responsible code (paper Fig. 8).
struct SliceSet {
  std::uint64_t window = 0;
  std::size_t num_slices = 0;
  /// Slice index of each node (indexed by NodeId).
  std::vector<std::uint32_t> slice_of_node;
  /// Node ids in each slice, ascending.
  std::vector<std::vector<NodeId>> nodes_in_slice;
};

/// Slice with a fixed logical-time window (>= 1).
SliceSet slice_by_lamport_window(const EventGraph& graph,
                                 std::uint64_t window);

/// Slice into (at most) `target_slices` windows of equal logical width.
SliceSet slice_into(const EventGraph& graph, std::size_t target_slices);

/// Alternative policy: slice by *virtual-time* windows (event t_end).
/// Unlike Lamport slicing, virtual-time windows are not comparable across
/// runs whose timings differ (jitter shifts events between slices even
/// when the communication structure is identical) — the slicing ablation
/// bench demonstrates why the analysis defaults to logical time. The
/// SliceSet::window field holds the window in whole microseconds.
SliceSet slice_by_virtual_time_window(const EventGraph& graph,
                                      double window_us);

}  // namespace anacin::graph

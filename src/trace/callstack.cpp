#include "trace/callstack.hpp"

#include "support/error.hpp"

namespace anacin::trace {

std::string join_frames(const std::vector<std::string>& frames) {
  std::string path;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i != 0) path += '>';
    path += frames[i];
  }
  return path;
}

CallstackRegistry::CallstackRegistry() {
  paths_.emplace_back("");
  index_.emplace("", 0);
}

std::uint32_t CallstackRegistry::intern(std::string_view path) {
  const auto it = index_.find(std::string(path));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(paths_.size());
  paths_.emplace_back(path);
  index_.emplace(paths_.back(), id);
  return id;
}

std::uint32_t CallstackRegistry::intern_frames(
    const std::vector<std::string>& frames) {
  return intern(join_frames(frames));
}

const std::string& CallstackRegistry::path(std::uint32_t id) const {
  ANACIN_CHECK(id < paths_.size(), "callstack id out of range: " << id);
  return paths_[id];
}

}  // namespace anacin::trace

#include "trace/filter.hpp"

#include <map>

#include "support/error.hpp"

namespace anacin::trace {

Trace strip_events_with_tag_at_least(const Trace& trace, int tag_threshold) {
  Trace filtered(trace.num_ranks(), trace.num_nodes());

  // Preserve the callstack registry verbatim so ids keep working.
  for (std::size_t id = 1; id < trace.callstacks().paths().size(); ++id) {
    filtered.callstacks().intern(trace.callstacks().paths()[id]);
  }

  const auto dropped = [tag_threshold](const Event& event) {
    return (event.type == EventType::kSend ||
            event.type == EventType::kRecv) &&
           event.tag >= tag_threshold;
  };

  // First pass: new sequence numbers of surviving events.
  std::map<std::pair<std::int32_t, std::int64_t>, std::int64_t> remap;
  for (int rank = 0; rank < trace.num_ranks(); ++rank) {
    std::int64_t next_seq = 0;
    const auto& events = trace.rank_events(rank);
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (dropped(events[i])) continue;
      remap[{rank, static_cast<std::int64_t>(i)}] = next_seq++;
    }
  }

  // Second pass: copy surviving events with remapped match references.
  for (int rank = 0; rank < trace.num_ranks(); ++rank) {
    for (const Event& event : trace.rank_events(rank)) {
      if (dropped(event)) continue;
      Event copy = event;
      if (copy.type == EventType::kRecv) {
        const auto it = remap.find({copy.matched_rank, copy.matched_seq});
        ANACIN_CHECK(it != remap.end(),
                     "surviving recv matched a stripped send — tags of a "
                     "matched pair must be equal");
        copy.matched_seq = it->second;
      }
      filtered.append(copy);
    }
  }
  return filtered;
}

}  // namespace anacin::trace

#include "trace/trace.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::trace {

Trace::Trace(int num_ranks, int num_nodes) : num_nodes_(num_nodes) {
  ANACIN_CHECK(num_ranks > 0, "trace needs at least one rank");
  ANACIN_CHECK(num_nodes > 0, "trace needs at least one node");
  events_.resize(static_cast<std::size_t>(num_ranks));
}

std::int64_t Trace::append(Event event) {
  ANACIN_CHECK(event.rank >= 0 && event.rank < num_ranks(),
               "event rank " << event.rank << " out of range");
  auto& rank_vector = events_[static_cast<std::size_t>(event.rank)];
  ANACIN_CHECK(rank_vector.empty() || rank_vector.back().t_end <= event.t_end,
               "events must be appended in per-rank time order (rank "
                   << event.rank << ")");
  rank_vector.push_back(event);
  return static_cast<std::int64_t>(rank_vector.size()) - 1;
}

const std::vector<Event>& Trace::rank_events(int rank) const {
  ANACIN_CHECK(rank >= 0 && rank < num_ranks(),
               "rank " << rank << " out of range");
  return events_[static_cast<std::size_t>(rank)];
}

const Event& Trace::event(EventId id) const {
  const auto& rank_vector = rank_events(id.rank);
  ANACIN_CHECK(id.seq >= 0 &&
                   id.seq < static_cast<std::int64_t>(rank_vector.size()),
               "event seq " << id.seq << " out of range on rank " << id.rank);
  return rank_vector[static_cast<std::size_t>(id.seq)];
}

std::size_t Trace::total_events() const {
  std::size_t total = 0;
  for (const auto& rank_vector : events_) total += rank_vector.size();
  return total;
}

double Trace::makespan() const {
  double latest = 0.0;
  for (const auto& rank_vector : events_) {
    for (const auto& event : rank_vector) {
      latest = std::max(latest, event.t_end);
    }
  }
  return latest;
}

json::Value Trace::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", "anacin-trace-1");
  doc.set("num_ranks", num_ranks());
  doc.set("num_nodes", num_nodes_);

  json::Value callstack_array = json::Value::array();
  for (const auto& path : callstacks_.paths()) callstack_array.push_back(path);
  doc.set("callstacks", std::move(callstack_array));

  json::Value ranks = json::Value::array();
  for (const auto& rank_vector : events_) {
    json::Value rank_events = json::Value::array();
    for (const auto& e : rank_vector) {
      json::Value record = json::Value::object();
      record.set("type", std::string(event_type_name(e.type)));
      record.set("rank", e.rank);
      record.set("peer", e.peer);
      record.set("tag", e.tag);
      record.set("size", static_cast<std::int64_t>(e.size_bytes));
      record.set("t0", e.t_start);
      record.set("t1", e.t_end);
      record.set("mrank", e.matched_rank);
      record.set("mseq", e.matched_seq);
      record.set("psrc", e.posted_source);
      record.set("ptag", e.posted_tag);
      record.set("mo", e.match_order);
      record.set("cs", static_cast<std::int64_t>(e.callstack_id));
      record.set("jit", e.jittered);
      rank_events.push_back(std::move(record));
    }
    ranks.push_back(std::move(rank_events));
  }
  doc.set("events", std::move(ranks));
  return doc;
}

Trace Trace::from_json(const json::Value& doc) {
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "anacin-trace-1") {
    throw ParseError("not an anacin-trace-1 document");
  }
  const int num_ranks = static_cast<int>(doc.at("num_ranks").as_int());
  const int num_nodes = static_cast<int>(doc.at("num_nodes").as_int());
  Trace trace(num_ranks, num_nodes);

  // Re-intern callstack paths in order so ids round-trip exactly (id 0 is
  // pre-interned as the empty path by the registry constructor).
  const auto& callstack_array = doc.at("callstacks");
  for (std::size_t i = 0; i < callstack_array.size(); ++i) {
    const std::uint32_t id =
        trace.callstacks_.intern(callstack_array.at(i).as_string());
    ANACIN_CHECK(id == i, "callstack ids must round-trip in order");
  }

  const auto& ranks = doc.at("events");
  ANACIN_CHECK(static_cast<int>(ranks.size()) == num_ranks,
               "event array count mismatch");
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    for (const auto& record : ranks.at(r).items()) {
      Event e;
      e.type = event_type_from_name(record.at("type").as_string());
      e.rank = static_cast<std::int32_t>(record.at("rank").as_int());
      e.peer = static_cast<std::int32_t>(record.at("peer").as_int());
      e.tag = static_cast<std::int32_t>(record.at("tag").as_int());
      e.size_bytes = static_cast<std::uint32_t>(record.at("size").as_int());
      e.t_start = record.at("t0").as_number();
      e.t_end = record.at("t1").as_number();
      e.matched_rank = static_cast<std::int32_t>(record.at("mrank").as_int());
      e.matched_seq = record.at("mseq").as_int();
      e.posted_source = static_cast<std::int32_t>(record.at("psrc").as_int());
      e.posted_tag = static_cast<std::int32_t>(record.at("ptag").as_int());
      // Older anacin-trace-1 documents predate the completion-order field.
      e.match_order = record.contains("mo") ? record.at("mo").as_int() : -1;
      e.callstack_id = static_cast<std::uint32_t>(record.at("cs").as_int());
      e.jittered = record.at("jit").as_bool();
      ANACIN_CHECK(e.rank == static_cast<std::int32_t>(r),
                   "event rank does not match its array position");
      trace.append(e);
    }
  }
  return trace;
}

}  // namespace anacin::trace

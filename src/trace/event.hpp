#pragma once

#include <cstdint>
#include <string_view>

namespace anacin::trace {

/// Kinds of events recorded by the simulator's tracing layer.
///
/// These correspond to the nodes of the paper's event graphs: `kInit` and
/// `kFinalize` are the green circles marking process start/end, `kSend` the
/// blue circles, and `kRecv` the red circles. Collective operations are
/// composed from point-to-point messages, so they appear as send/recv events
/// tagged with a collective callstack frame. `kFault` marks an injected
/// fault (retransmission, discarded duplicate, straggler onset — see
/// sim/faults.hpp); its callstack path names the fault cause.
enum class EventType : std::uint8_t {
  kInit = 0,
  kSend = 1,
  kRecv = 2,
  kFinalize = 3,
  kFault = 4,
};

std::string_view event_type_name(EventType type);

/// Parse the name produced by event_type_name (throws ParseError otherwise).
EventType event_type_from_name(std::string_view name);

/// One traced MPI event on one rank.
///
/// Events for a rank are stored in program order; an event is identified
/// globally by the pair (rank, seq) where `seq` is its index in the rank's
/// event vector. A receive event records the identity of the send event it
/// was matched with, which is exactly the information needed to build the
/// message edges of the event graph.
struct Event {
  EventType type = EventType::kInit;
  std::int32_t rank = -1;
  /// Destination rank for sends, matched source rank for receives, -1 for
  /// init/finalize.
  std::int32_t peer = -1;
  std::int32_t tag = -1;
  std::uint32_t size_bytes = 0;
  /// Virtual time when the operation was issued / completed.
  double t_start = 0.0;
  double t_end = 0.0;
  /// For kRecv: (matched_rank, matched_seq) identify the matching send
  /// event. -1 when not applicable.
  std::int32_t matched_rank = -1;
  std::int64_t matched_seq = -1;
  /// For kRecv: the source/tag filters the receive was posted with
  /// (-1 = wildcard, -2 = not applicable). Wildcard receives are the
  /// root sources of message-race non-determinism.
  std::int32_t posted_source = -2;
  std::int32_t posted_tag = -2;
  /// For kRecv: global completion order of the receive (the engine's
  /// monotone completion counter at the instant the match was made), -1
  /// when not applicable. Trace events are appended at *retirement*
  /// (wait) time, so per-rank trace order can differ from completion
  /// order for irecvs waited out of order; replay schedules must follow
  /// completion order, which this field preserves.
  std::int64_t match_order = -1;
  /// Interned call path active when the event was recorded.
  std::uint32_t callstack_id = 0;
  /// True if the message that produced this event received non-determinism
  /// jitter in the network model (sends and their matched receives).
  bool jittered = false;
};

}  // namespace anacin::trace

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "trace/callstack.hpp"
#include "trace/event.hpp"

namespace anacin::trace {

/// Globally unique identity of an event: (rank, index in that rank's
/// program-order event vector).
struct EventId {
  std::int32_t rank = -1;
  std::int64_t seq = -1;

  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Full record of one simulated execution: per-rank event sequences plus
/// the callstack registry the events refer to.
class Trace {
public:
  Trace() = default;
  Trace(int num_ranks, int num_nodes);

  int num_ranks() const { return static_cast<int>(events_.size()); }
  int num_nodes() const { return num_nodes_; }

  /// Append an event to its rank's sequence; returns the event's seq.
  std::int64_t append(Event event);

  const std::vector<Event>& rank_events(int rank) const;
  const Event& event(EventId id) const;

  /// Total number of events across all ranks.
  std::size_t total_events() const;

  CallstackRegistry& callstacks() { return callstacks_; }
  const CallstackRegistry& callstacks() const { return callstacks_; }

  /// Largest t_end across all events (the virtual makespan).
  double makespan() const;

  /// Serialize to / from a JSON document (schema version "anacin-trace-1").
  json::Value to_json() const;
  static Trace from_json(const json::Value& document);

private:
  int num_nodes_ = 1;
  std::vector<std::vector<Event>> events_;
  CallstackRegistry callstacks_;
};

}  // namespace anacin::trace

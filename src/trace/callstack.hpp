#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace anacin::trace {

/// Interns call paths ("main>phase>MPI_Recv") into dense 32-bit ids.
///
/// The simulator maintains a per-rank stack of frame names; every traced
/// event stores the id of the call path active at the time. Analysis code
/// aggregates across runs by *path string* (ids are only stable within one
/// registry), mirroring how ANACIN-X aggregates callstacks captured from
/// independent executions.
class CallstackRegistry {
public:
  CallstackRegistry();

  /// Intern a full path; returns its id. Id 0 is always the empty path "".
  std::uint32_t intern(std::string_view path);

  /// Intern the path formed by joining frames with '>'.
  std::uint32_t intern_frames(const std::vector<std::string>& frames);

  const std::string& path(std::uint32_t id) const;
  std::size_t size() const { return paths_.size(); }

  /// All interned paths, indexed by id.
  const std::vector<std::string>& paths() const { return paths_; }

private:
  std::vector<std::string> paths_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

/// Join frame names into a canonical path string.
std::string join_frames(const std::vector<std::string>& frames);

}  // namespace anacin::trace

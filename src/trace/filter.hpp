#pragma once

#include "trace/trace.hpp"

namespace anacin::trace {

/// Copy of `trace` without the send/recv events whose tag is >=
/// `tag_threshold` (the library's collectives use tags above
/// sim::kCollectiveTagBase). Matched-send references of the surviving
/// receives are remapped to the new per-rank sequence numbers.
///
/// Useful to study an application's own communication pattern without the
/// point-to-point traffic its collectives decompose into — e.g. rendering
/// a clean Fig-1 style timeline for a program that also calls barriers.
Trace strip_events_with_tag_at_least(const Trace& trace, int tag_threshold);

}  // namespace anacin::trace

#include "trace/event.hpp"

#include "support/error.hpp"

namespace anacin::trace {

std::string_view event_type_name(EventType type) {
  switch (type) {
    case EventType::kInit: return "init";
    case EventType::kSend: return "send";
    case EventType::kRecv: return "recv";
    case EventType::kFinalize: return "finalize";
    case EventType::kFault: return "fault";
  }
  return "?";
}

EventType event_type_from_name(std::string_view name) {
  if (name == "init") return EventType::kInit;
  if (name == "send") return EventType::kSend;
  if (name == "recv") return EventType::kRecv;
  if (name == "finalize") return EventType::kFinalize;
  if (name == "fault") return EventType::kFault;
  throw ParseError("unknown event type name: '" + std::string(name) + "'");
}

}  // namespace anacin::trace

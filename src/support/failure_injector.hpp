#pragma once

#include <map>
#include <string>

namespace anacin::support {

/// Deterministic failure injection for tests, configured from environment
/// variables (snapshotted per consumer, so in-process tests can change
/// them between campaigns). Lives in support/ because it runs in two
/// places: the supervisor's retry loop in the campaign process, and — for
/// the crash/hang execution hooks — whatever process actually executes
/// the work unit (a sandboxed worker child under --isolate=process).
///
/// ANACIN_INJECT_FAILURES (comma-separated; thrown from on_attempt):
///   unit=transient:N    the unit's first N attempts throw TransientError
///   unit=permanent      every attempt of the unit throws PermanentError
///   unit=hang:MS        every attempt sleeps MS milliseconds first
///                       (drives the deadline path without a slow workload)
///
/// ANACIN_INJECT_CRASH (applied by apply_execution_hooks):
///   unit=SEGV           raise(SIGSEGV) in the executing process — under
///                       --isolate=process this kills only the worker
///                       child; in-process it kills the whole campaign,
///                       which is exactly the contrast isolation exists
///                       to demonstrate. Any name support::signal_from_name
///                       accepts works (SEGV, KILL, XCPU, ...).
///
/// ANACIN_INJECT_HANG (applied by apply_execution_hooks):
///   unit=MS             sleep MS milliseconds inside the unit body
///   unit=stop           raise(SIGSTOP): the process freezes — heartbeats
///                       included — until the watchdog SIGKILLs it
///                       (deterministically exercises the heartbeat-stall
///                       kill path)
///
/// Unit ids are the supervisor's ids: "run:<i>", "reference",
/// "pair:<a>-<b>", "measure". The id "*" matches any unit that has no
/// exact entry — e.g. ANACIN_INJECT_CRASH='*=KILL' kills the executing
/// process on whatever unit it picks up first, which is how tests fell a
/// specific fleet agent deterministically when unit placement is racy.
class FailureInjector {
public:
  FailureInjector() = default;
  /// Parse spec strings; throws ConfigError on malformed input.
  explicit FailureInjector(const std::string& failures_spec,
                           const std::string& crash_spec = "",
                           const std::string& hang_spec = "");
  /// Snapshot of the process environment (empty when unset).
  static FailureInjector from_env();

  bool empty() const {
    return plans_.empty() && crashes_.empty() && hangs_.empty();
  }

  /// Called at the top of every supervised attempt (in the campaign
  /// process); throws the planned failure.
  void on_attempt(const std::string& unit_id, int attempt) const;

  /// Crash/hang hooks, applied at the top of the unit body by whichever
  /// process executes it — the worker child under --isolate=process, the
  /// campaign process otherwise. Never called by the parent on behalf of
  /// an isolated child (that would crash the wrong process).
  void apply_execution_hooks(const std::string& unit_id) const;

private:
  struct Plan {
    int transient_failures = 0;
    bool permanent = false;
    double hang_ms = 0.0;
  };
  struct Hang {
    double sleep_ms = 0.0;
    /// raise(SIGSTOP) instead of sleeping (freezes heartbeats too).
    bool freeze = false;
  };

  std::map<std::string, Plan> plans_;
  std::map<std::string, int> crashes_;  // unit -> signal number
  std::map<std::string, Hang> hangs_;
};

}  // namespace anacin::support

#include "support/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace anacin {

namespace {

template <typename T>
T parse_number(const std::string& name, const std::string& text) {
  T value{};
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw ConfigError("invalid value for --" + name + ": '" + text + "'");
  }
  return value;
}

template <>
double parse_number<double>(const std::string& name, const std::string& text) {
  // std::from_chars<double> is available in GCC 12, but go through strtod for
  // leniency with exponent formats used in config files.
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    throw ConfigError("invalid value for --" + name + ": '" + text + "'");
  }
  return value;
}

}  // namespace

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_option(Option option) {
  ANACIN_CHECK(find(option.name) == nullptr,
               "duplicate CLI option --" << option.name);
  options_.push_back(std::move(option));
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const auto& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         bool* out) {
  add_option({name, help, /*is_flag=*/true, *out ? "true" : "false",
              [out](const std::string&) { *out = true; }});
}

void ArgParser::add_int(const std::string& name, const std::string& help,
                        int* out) {
  add_option({name, help, false, std::to_string(*out),
              [name, out](const std::string& text) {
                *out = parse_number<int>(name, text);
              }});
}

void ArgParser::add_int64(const std::string& name, const std::string& help,
                          std::int64_t* out) {
  add_option({name, help, false, std::to_string(*out),
              [name, out](const std::string& text) {
                *out = parse_number<std::int64_t>(name, text);
              }});
}

void ArgParser::add_uint64(const std::string& name, const std::string& help,
                           std::uint64_t* out) {
  add_option({name, help, false, std::to_string(*out),
              [name, out](const std::string& text) {
                *out = parse_number<std::uint64_t>(name, text);
              }});
}

void ArgParser::add_double(const std::string& name, const std::string& help,
                           double* out) {
  add_option({name, help, false, std::to_string(*out),
              [name, out](const std::string& text) {
                *out = parse_number<double>(name, text);
              }});
}

void ArgParser::add_string(const std::string& name, const std::string& help,
                           std::string* out) {
  add_option({name, help, false, *out,
              [out](const std::string& text) { *out = text; }});
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << help_text();
      return false;
    }
    if (token.rfind("--", 0) != 0) {
      throw ConfigError("unexpected positional argument: '" + token + "'");
    }
    token.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.erase(eq);
      has_value = true;
    }
    const Option* option = find(token);
    if (option == nullptr) {
      throw ConfigError("unknown option --" + token + " (try --help)");
    }
    if (option->is_flag) {
      if (has_value) {
        throw ConfigError("flag --" + token + " does not take a value");
      }
      option->apply("");
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw ConfigError("option --" + token + " requires a value");
      }
      value = argv[++i];
    }
    option->apply(value);
  }
  return true;
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\noptions:\n";
  for (const auto& option : options_) {
    std::string left = "  --" + option.name;
    if (!option.is_flag) left += " <value>";
    os << pad_right(left, 34) << option.help;
    if (!option.default_repr.empty()) {
      os << " (default: " << option.default_repr << ')';
    }
    os << '\n';
  }
  os << pad_right("  --help", 34) << "show this message\n";
  return os.str();
}

}  // namespace anacin

#include "support/crc32c.hpp"

#include <array>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ANACIN_CRC32C_X86 1
#include <nmmintrin.h>
#endif

namespace anacin::support {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

/// Slice-by-8 tables, built once: table[0] is the classic byte table,
/// table[k][b] extends it so eight input bytes fold in two XOR rounds.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

std::uint32_t crc32c_sw(const unsigned char* p, std::size_t size,
                        std::uint32_t crc) {
  const auto& t = tables().t;
  while (size >= 8) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][crc & 0xffu] ^ t[6][(crc >> 8) & 0xffu] ^
          t[5][(crc >> 16) & 0xffu] ^ t[4][crc >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#ifdef ANACIN_CRC32C_X86

__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const unsigned char* p, std::size_t size, std::uint32_t crc) {
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool hardware_available() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}

#else

bool hardware_available() { return false; }

#endif

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t crc = ~seed;
#ifdef ANACIN_CRC32C_X86
  if (hardware_available()) return ~crc32c_hw(p, size, crc);
#endif
  return ~crc32c_sw(p, size, crc);
}

bool crc32c_is_hardware() { return hardware_available(); }

}  // namespace anacin::support

#include "support/io_chaos.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace anacin::support {

namespace {

double parse_probability(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw ConfigError("io chaos spec: '" + key + "' needs a number, got '" +
                      text + "'");
  }
  if (used != text.size() || value < 0.0 || value > 1.0) {
    throw ConfigError("io chaos spec: '" + key + "' must be in [0,1], got '" +
                      text + "'");
  }
  return value;
}

std::int64_t parse_int64_strict(const std::string& key,
                                const std::string& text) {
  std::size_t used = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &used);
  } catch (const std::exception&) {
    throw ConfigError("io chaos spec: '" + key + "' needs an integer, got '" +
                      text + "'");
  }
  if (used != text.size()) {
    throw ConfigError("io chaos spec: '" + key + "' needs an integer, got '" +
                      text + "'");
  }
  return static_cast<std::int64_t>(value);
}

/// One engine per process: the fault stream, the compat one-shot budget,
/// and the durable-op counter all live here, guarded by one mutex so the
/// draw sequence is well-defined even when worker threads commit
/// concurrently.
struct Engine {
  std::mutex mutex;
  bool env_loaded = false;
  std::optional<IoChaosConfig> config;
  std::optional<Rng> rng;
  std::int64_t fail_write_after = -1;
  std::uint64_t durable_ops = 0;
  std::uint64_t faults = 0;

  /// Lazily adopt the environment so worker children and library users
  /// honor ANACIN_IO_CHAOS / ANACIN_FAIL_WRITE_AFTER without plumbing.
  void ensure_loaded() {
    if (env_loaded) return;
    env_loaded = true;
    config = IoChaosConfig::from_env();
    if (config.has_value()) rng.emplace(mix64(config->seed));
    if (const char* env = std::getenv("ANACIN_FAIL_WRITE_AFTER");
        env != nullptr && *env != '\0') {
      const std::int64_t budget =
          parse_int64_strict("ANACIN_FAIL_WRITE_AFTER", env);
      if (budget < -1) {
        throw ConfigError(
            "io chaos spec: 'ANACIN_FAIL_WRITE_AFTER' must be >= -1, got '" +
            std::string(env) + "'");
      }
      fail_write_after = budget;
    }
  }
};

Engine& engine() {
  static Engine instance;
  return instance;
}

std::atomic<int> g_durability{-1};  // -1 = not yet resolved from env

}  // namespace

const char* path_class_name(PathClass path_class) {
  switch (path_class) {
    case PathClass::kJournal: return "journal";
    case PathClass::kStore: return "store";
    case PathClass::kReport: return "report";
    case PathClass::kOther: return "other";
  }
  return "other";
}

const char* durability_name(Durability level) {
  switch (level) {
    case Durability::kNone: return "none";
    case Durability::kCommit: return "commit";
    case Durability::kParanoid: return "paranoid";
  }
  return "none";
}

Durability parse_durability(const std::string& text) {
  if (text == "none") return Durability::kNone;
  if (text == "commit") return Durability::kCommit;
  if (text == "paranoid") return Durability::kParanoid;
  throw ConfigError("--durability must be none, commit, or paranoid, got '" +
                    text + "'");
}

Durability durability_level() {
  int level = g_durability.load(std::memory_order_acquire);
  if (level < 0) {
    const char* env = std::getenv("ANACIN_DURABILITY");
    const Durability parsed = (env != nullptr && *env != '\0')
                                  ? parse_durability(env)
                                  : Durability::kNone;
    level = static_cast<int>(parsed);
    g_durability.store(level, std::memory_order_release);
  }
  return static_cast<Durability>(level);
}

void set_durability(Durability level) {
  g_durability.store(static_cast<int>(level), std::memory_order_release);
}

bool IoChaosConfig::in_scope(PathClass path_class) const {
  switch (path_class) {
    case PathClass::kJournal: return scope_journal;
    case PathClass::kStore: return scope_store;
    case PathClass::kReport: return scope_report;
    case PathClass::kOther: return scope_other;
  }
  return true;
}

void IoChaosConfig::apply(const std::string& key, const std::string& value) {
  if (key == "seed") {
    seed = static_cast<std::uint64_t>(parse_int64_strict(key, value));
  } else if (key == "enospc") {
    enospc = parse_probability(key, value);
  } else if (key == "eio") {
    eio = parse_probability(key, value);
  } else if (key == "open_fail") {
    open_fail = parse_probability(key, value);
  } else if (key == "rename_fail") {
    rename_fail = parse_probability(key, value);
  } else if (key == "fsync_drop") {
    fsync_drop = parse_probability(key, value);
  } else if (key == "crash_after") {
    crash_after = parse_int64_strict(key, value);
    if (crash_after < -1) {
      throw ConfigError("io chaos spec: 'crash_after' must be >= -1, got '" +
                        value + "'");
    }
  } else if (key == "scope") {
    scope_journal = scope_store = scope_report = scope_other = false;
    for (const std::string& part : split(value, '+')) {
      const std::string name(trim(part));
      if (name == "journal") {
        scope_journal = true;
      } else if (name == "store") {
        scope_store = true;
      } else if (name == "report") {
        scope_report = true;
      } else if (name == "other") {
        scope_other = true;
      } else if (name == "all") {
        scope_journal = scope_store = scope_report = scope_other = true;
      } else {
        throw ConfigError("io chaos spec: unknown scope '" + name +
                          "' (expected journal|store|report|other|all)");
      }
    }
  } else {
    throw ConfigError("io chaos spec: unknown key '" + key + "'");
  }
}

IoChaosConfig IoChaosConfig::parse(const std::string& spec) {
  IoChaosConfig config;
  for (const std::string& field : split(spec, ',')) {
    const std::string trimmed(trim(field));
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("io chaos spec: expected key=value, got '" + trimmed +
                        "'");
    }
    config.apply(std::string(trim(trimmed.substr(0, eq))),
                 std::string(trim(trimmed.substr(eq + 1))));
  }
  return config;
}

std::optional<IoChaosConfig> IoChaosConfig::from_env() {
  const char* spec = std::getenv("ANACIN_IO_CHAOS");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

std::string IoChaosConfig::spec() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (enospc > 0) os << ",enospc=" << enospc;
  if (eio > 0) os << ",eio=" << eio;
  if (open_fail > 0) os << ",open_fail=" << open_fail;
  if (rename_fail > 0) os << ",rename_fail=" << rename_fail;
  if (fsync_drop > 0) os << ",fsync_drop=" << fsync_drop;
  if (crash_after >= 0) os << ",crash_after=" << crash_after;
  if (!(scope_journal && scope_store && scope_report && scope_other)) {
    os << ",scope=";
    const char* sep = "";
    if (scope_journal) { os << sep << "journal"; sep = "+"; }
    if (scope_store) { os << sep << "store"; sep = "+"; }
    if (scope_report) { os << sep << "report"; sep = "+"; }
    if (scope_other) { os << sep << "other"; sep = "+"; }
  }
  return os.str();
}

std::string IoChaosConfig::summary() const {
  std::ostringstream os;
  os << "io chaos seed=" << seed;
  if (enospc > 0) os << " enospc=" << enospc;
  if (eio > 0) os << " eio=" << eio;
  if (open_fail > 0) os << " open_fail=" << open_fail;
  if (rename_fail > 0) os << " rename_fail=" << rename_fail;
  if (fsync_drop > 0) os << " fsync_drop=" << fsync_drop;
  if (crash_after >= 0) os << " crash_after=" << crash_after;
  if (!(scope_journal && scope_store && scope_report && scope_other)) {
    os << " scope=";
    const char* sep = "";
    if (scope_journal) { os << sep << "journal"; sep = "+"; }
    if (scope_store) { os << sep << "store"; sep = "+"; }
    if (scope_report) { os << sep << "report"; sep = "+"; }
    if (scope_other) { os << sep << "other"; sep = "+"; }
  }
  return os.str();
}

void install_io_chaos(const std::optional<IoChaosConfig>& config) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.env_loaded = true;  // an explicit install outranks the environment
  e.config = config;
  e.rng.reset();
  if (e.config.has_value()) e.rng.emplace(mix64(e.config->seed));
  e.durable_ops = 0;
  e.faults = 0;
}

std::optional<IoChaosConfig> active_io_chaos() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.ensure_loaded();
  return e.config;
}

namespace io_chaos {

WriteFault next_write_fault(PathClass path_class) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.ensure_loaded();
  WriteFault fault;
  if (!e.config.has_value() || !e.config->enabled() ||
      !e.config->in_scope(path_class)) {
    return fault;
  }
  const IoChaosConfig& config = *e.config;
  Rng& rng = *e.rng;
  // Fixed draw order per op keeps the stream length constant, so the
  // decision at op k never depends on which stage fired at op k-1.
  const bool open_fails = rng.bernoulli(config.open_fail);
  const bool enospc = rng.bernoulli(config.enospc);
  const bool eio = rng.bernoulli(config.eio);
  const bool rename_fails = rng.bernoulli(config.rename_fail);
  fault.drop_fsync = rng.bernoulli(config.fsync_drop);
  using Kind = WriteFault::Kind;
  fault.kind = open_fails    ? Kind::kOpenFail
               : enospc      ? Kind::kEnospc
               : eio         ? Kind::kEio
               : rename_fails ? Kind::kRenameFail
                              : Kind::kNone;
  if (fault.kind != Kind::kNone) ++e.faults;
  if (fault.drop_fsync) ++e.faults;
  return fault;
}

bool fail_rename(PathClass path_class) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.ensure_loaded();
  if (!e.config.has_value() || !e.config->in_scope(path_class)) return false;
  const bool fails = e.rng->bernoulli(e.config->rename_fail);
  if (fails) ++e.faults;
  return fails;
}

void note_durable_op() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.ensure_loaded();
  ++e.durable_ops;
  if (e.config.has_value() && e.config->crash_after >= 0 &&
      e.durable_ops == static_cast<std::uint64_t>(e.config->crash_after)) {
    // The whole point of the crash-consistency explorer: die so hard that
    // no destructor, flush, or atexit handler can tidy up after us.
    std::raise(SIGKILL);
  }
}

std::uint64_t durable_op_count() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  return e.durable_ops;
}

std::uint64_t injected_fault_count() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  return e.faults;
}

void set_fail_write_after(std::int64_t budget) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.ensure_loaded();
  e.fail_write_after = budget;
}

bool consume_fail_write_after() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.ensure_loaded();
  if (e.fail_write_after < 0) return false;
  if (e.fail_write_after == 0) {
    e.fail_write_after = -1;  // one-shot: later writes succeed again
    ++e.faults;
    return true;
  }
  --e.fail_write_after;
  return false;
}

void reset_for_tests() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lock(e.mutex);
  e.env_loaded = false;
  e.config.reset();
  e.rng.reset();
  e.fail_write_after = -1;
  e.durable_ops = 0;
  e.faults = 0;
  g_durability.store(-1, std::memory_order_release);
}

}  // namespace io_chaos

}  // namespace anacin::support

#pragma once

#include <string>
#include <string_view>

namespace anacin::support {

/// Name of a POSIX signal number ("SIGSEGV"); "signal <n>" for numbers
/// outside the portable table.
std::string signal_name(int signo);

/// Parse a signal name — "SEGV" or "SIGSEGV", case-insensitive — into its
/// number. Throws ConfigError on unknown names (used by the
/// ANACIN_INJECT_CRASH hook, so typos fail loudly instead of injecting
/// nothing).
int signal_from_name(std::string_view name);

}  // namespace anacin::support

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace anacin {

/// Small declarative command-line parser for the bench/example binaries.
///
/// Supports `--name value` and `--name=value` forms, `--flag` booleans,
/// and generates a --help text. Unknown options raise ConfigError so typos
/// in experiment scripts fail loudly instead of silently running the
/// default configuration.
class ArgParser {
public:
  explicit ArgParser(std::string program_description);

  void add_flag(const std::string& name, const std::string& help, bool* out);
  void add_int(const std::string& name, const std::string& help, int* out);
  void add_int64(const std::string& name, const std::string& help,
                 std::int64_t* out);
  void add_uint64(const std::string& name, const std::string& help,
                  std::uint64_t* out);
  void add_double(const std::string& name, const std::string& help,
                  double* out);
  void add_string(const std::string& name, const std::string& help,
                  std::string* out);

  /// Parse argv. Returns false if --help was requested (help text already
  /// printed to stdout); throws ConfigError on malformed input.
  bool parse(int argc, const char* const* argv);

  std::string help_text() const;

private:
  struct Option {
    std::string name;
    std::string help;
    bool is_flag = false;
    std::string default_repr;
    std::function<void(const std::string&)> apply;
  };

  void add_option(Option option);
  const Option* find(const std::string& name) const;

  std::string description_;
  std::vector<Option> options_;
};

}  // namespace anacin

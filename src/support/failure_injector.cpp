#include "support/failure_injector.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/signals.hpp"
#include "support/string_util.hpp"

namespace anacin::support {

namespace {

double parse_spec_number(const std::string& token, const std::string& spec,
                         const char* env_name) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size() || value < 0) {
    throw ConfigError("malformed " + std::string(env_name) + " entry '" +
                      spec + "'");
  }
  return value;
}

/// Split "unitA=argA,unitB=argB" into (unit, arg) pairs; shared by all
/// three spec grammars.
std::vector<std::pair<std::string, std::string>> parse_entries(
    const std::string& spec, const char* env_name) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (const std::string& entry : split(spec, ',')) {
    const std::string trimmed{trim(entry)};
    if (trimmed.empty()) continue;
    const auto parts = split(trimmed, '=');
    if (parts.size() != 2) {
      throw ConfigError("malformed " + std::string(env_name) + " entry '" +
                        trimmed + "' (expected unit=arg)");
    }
    entries.emplace_back(std::string(trim(parts[0])),
                         std::string(trim(parts[1])));
  }
  return entries;
}

std::string env_or_empty(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string{} : std::string(value);
}

}  // namespace

FailureInjector::FailureInjector(const std::string& failures_spec,
                                 const std::string& crash_spec,
                                 const std::string& hang_spec) {
  for (const std::string& entry : split(failures_spec, ',')) {
    const std::string trimmed{trim(entry)};
    if (trimmed.empty()) continue;
    const auto parts = split(trimmed, '=');
    if (parts.size() != 2) {
      throw ConfigError("malformed ANACIN_INJECT_FAILURES entry '" + trimmed +
                        "' (expected unit=kind[:arg])");
    }
    const std::string unit{trim(parts[0])};
    const auto kind_arg = split(parts[1], ':');
    const std::string kind{trim(kind_arg[0])};
    Plan& plan = plans_[unit];
    if (kind == "transient") {
      plan.transient_failures =
          kind_arg.size() > 1
              ? static_cast<int>(parse_spec_number(
                    std::string(trim(kind_arg[1])), trimmed,
                    "ANACIN_INJECT_FAILURES"))
              : 1;
    } else if (kind == "permanent") {
      plan.permanent = true;
    } else if (kind == "hang") {
      plan.hang_ms = kind_arg.size() > 1
                         ? parse_spec_number(std::string(trim(kind_arg[1])),
                                             trimmed,
                                             "ANACIN_INJECT_FAILURES")
                         : 100.0;
    } else {
      throw ConfigError("unknown ANACIN_INJECT_FAILURES kind '" + kind +
                        "' (expected transient, permanent, or hang)");
    }
  }

  for (const auto& [unit, arg] :
       parse_entries(crash_spec, "ANACIN_INJECT_CRASH")) {
    crashes_[unit] = signal_from_name(arg);
  }

  for (const auto& [unit, arg] :
       parse_entries(hang_spec, "ANACIN_INJECT_HANG")) {
    Hang& hang = hangs_[unit];
    if (arg == "stop") {
      hang.freeze = true;
    } else {
      hang.sleep_ms = parse_spec_number(arg, unit + "=" + arg,
                                        "ANACIN_INJECT_HANG");
    }
  }
}

FailureInjector FailureInjector::from_env() {
  const std::string failures = env_or_empty("ANACIN_INJECT_FAILURES");
  const std::string crash = env_or_empty("ANACIN_INJECT_CRASH");
  const std::string hang = env_or_empty("ANACIN_INJECT_HANG");
  if (failures.empty() && crash.empty() && hang.empty()) {
    return FailureInjector{};
  }
  return FailureInjector(failures, crash, hang);
}

namespace {

/// Exact unit id first, then the "*" wildcard entry. The wildcard is what
/// lets a test kill whichever unit a process executes *first* — essential
/// when a fleet of executors races for units and no specific id is
/// guaranteed to land on the injected process.
template <typename Map>
typename Map::const_iterator find_unit(const Map& map,
                                       const std::string& unit_id) {
  auto it = map.find(unit_id);
  if (it == map.end()) it = map.find("*");
  return it;
}

}  // namespace

void FailureInjector::on_attempt(const std::string& unit_id,
                                 int attempt) const {
  const auto it = find_unit(plans_, unit_id);
  if (it == plans_.end()) return;
  const Plan& plan = it->second;
  if (plan.hang_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(plan.hang_ms));
  }
  if (plan.permanent) {
    throw PermanentError("injected permanent failure for unit '" + unit_id +
                         "'");
  }
  if (attempt <= plan.transient_failures) {
    throw TransientError("injected transient failure " +
                         std::to_string(attempt) + "/" +
                         std::to_string(plan.transient_failures) +
                         " for unit '" + unit_id + "'");
  }
}

void FailureInjector::apply_execution_hooks(
    const std::string& unit_id) const {
  if (const auto it = find_unit(hangs_, unit_id); it != hangs_.end()) {
    if (it->second.freeze) {
      std::raise(SIGSTOP);
    } else if (it->second.sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(it->second.sleep_ms));
    }
  }
  if (const auto it = find_unit(crashes_, unit_id); it != crashes_.end()) {
    std::raise(it->second);
    // Signals whose default disposition is not termination (or that a
    // sanitizer intercepts) can return here; make the injection count
    // anyway so tests never silently pass.
    throw PermanentError("injected crash signal " +
                         signal_name(it->second) + " for unit '" + unit_id +
                         "' did not terminate the process");
  }
}

}  // namespace anacin::support

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace anacin::support {

/// Which durable-write subsystem a path belongs to. Disk chaos specs scope
/// their faults by class, so a campaign can (say) starve the artifact
/// store of space while the journal keeps committing — exactly the split
/// the graceful-degradation contract needs to be testable.
enum class PathClass { kJournal, kStore, kReport, kOther };

const char* path_class_name(PathClass path_class);

/// How hard a committed write chases the platters. See the "Durability
/// model" section of docs/RESILIENCE.md for what each tier guarantees
/// after power loss.
///   kNone      rename-atomic only (page cache decides when bytes land)
///   kCommit    fsync the data file before rename and the parent
///              directory after, at every atomic_write_file commit point
///              (journal, reports, store index)
///   kParanoid  kCommit plus fsync of every store object publish
enum class Durability { kNone, kCommit, kParanoid };

const char* durability_name(Durability level);

/// Strict parse of "none" | "commit" | "paranoid"; anything else throws
/// ConfigError.
Durability parse_durability(const std::string& text);

/// Process-global durability level. Defaults to kNone; the first read
/// consults the ANACIN_DURABILITY environment variable (strictly parsed)
/// so forked worker children inherit the campaign's setting.
Durability durability_level();
void set_durability(Durability level);

/// Deterministic disk fault injection, mirroring net::ChaosConfig: every
/// knob is a per-operation probability drawn from one seeded stream, so a
/// chaos campaign replays bit-for-bit — same seed, same write sequence,
/// same faults. Faults fire at the atomic-write commit pipeline's stages
/// (open temp, write bytes, rename into place, fsync) and at the object
/// store's publish path.
///
/// The config travels two ways: global `--io-chaos-*` CLI flags, and the
/// ANACIN_IO_CHAOS environment spec
/// ("seed=7,enospc=0.05,eio=0.01,open_fail=0.01,rename_fail=0.02,
///   fsync_drop=0.1,crash_after=12,scope=journal+store"),
/// which lets tests and fleet scripts chaos-wrap a process without
/// touching its command line. CLI flags override the environment
/// field-by-field.
struct IoChaosConfig {
  /// Base seed of the fault stream.
  std::uint64_t seed = 0;
  /// Probability a write fails as if the disk filled mid-write: a partial
  /// temp file is left behind (as a real crash would leave) and the
  /// destination stays untouched.
  double enospc = 0.0;
  /// Probability a write fails with a device I/O error. Same observable
  /// shape as enospc (partial temp, typed IoError) but distinguishable by
  /// message, so tests can assert either path.
  double eio = 0.0;
  /// Probability opening the temp file fails outright (no temp litter).
  double open_fail = 0.0;
  /// Probability the publishing rename fails; the fully written temp file
  /// stays behind for the stale-temp sweeper.
  double rename_fail = 0.0;
  /// Probability an fsync is silently skipped — the op "succeeds" but the
  /// bytes may not be durable, like firmware that lies about flushes.
  double fsync_drop = 0.0;
  /// SIGKILL the process immediately after the Nth durable commit
  /// completes (1-based; -1 = off). The crash-consistency explorer sweeps
  /// this over every op of a reference run.
  std::int64_t crash_after = -1;
  /// Per-path-class scoping; default everything.
  bool scope_journal = true;
  bool scope_store = true;
  bool scope_report = true;
  bool scope_other = true;

  /// True when any fault can fire (crash_after counts as a fault).
  bool enabled() const {
    return enospc > 0 || eio > 0 || open_fail > 0 || rename_fail > 0 ||
           fsync_drop > 0 || crash_after >= 0;
  }

  bool in_scope(PathClass path_class) const;

  /// Apply one "key=value" field; unknown keys and malformed values throw
  /// ConfigError — a typo'd chaos spec silently running a *clean*
  /// campaign would invalidate the experiment.
  void apply(const std::string& key, const std::string& value);

  /// Parse a "key=value,key=value" spec (see apply for the grammar).
  static IoChaosConfig parse(const std::string& spec);

  /// Config from ANACIN_IO_CHAOS, or nullopt when unset or empty.
  static std::optional<IoChaosConfig> from_env();

  /// Canonical round-trippable spec string (what the CLI re-exports into
  /// the environment so worker children inherit the chaos).
  std::string spec() const;

  /// One-line human summary listing only the active knobs.
  std::string summary() const;
};

/// Install a process-global chaos config (nullopt clears it). Replaces
/// whatever ANACIN_IO_CHAOS said and restarts the fault stream from the
/// config's seed; also resets the durable-op counter so crash_after is
/// measured from this point.
void install_io_chaos(const std::optional<IoChaosConfig>& config);

/// The currently installed (or environment-derived) config, if any.
std::optional<IoChaosConfig> active_io_chaos();

namespace io_chaos {

/// One fault decision per durable-write operation. The stages are drawn
/// in a fixed order from the seeded stream (open, enospc, eio, rename,
/// fsync) so the decision sequence is a pure function of (seed, op
/// index); the first firing stage wins.
struct WriteFault {
  enum class Kind { kNone, kOpenFail, kEnospc, kEio, kRenameFail };
  Kind kind = Kind::kNone;
  bool drop_fsync = false;
};

/// Draw the fault decision for the next durable-write op on `path_class`.
/// Out-of-scope classes and a disabled config draw nothing (the stream
/// only advances for ops that could fault).
WriteFault next_write_fault(PathClass path_class);

/// Single-stage decision for rename-only operations (e.g. quarantining a
/// corrupt object during `cache verify --repair`).
bool fail_rename(PathClass path_class);

/// A durable commit completed; fires crash_after (SIGKILL) when armed.
void note_durable_op();

/// Total durable commits noted so far (exported as the io.durable_ops
/// metric — the crash-consistency explorer's op count).
std::uint64_t durable_op_count();

/// Total injected faults so far (exported as io.chaos_faults_injected).
std::uint64_t injected_fault_count();

/// Compatibility alias for the pre-chaos ANACIN_FAIL_WRITE_AFTER hook:
/// the next `budget` atomic_write_file calls succeed, then one fails as
/// enospc; -1 disables. The environment value is strictly parsed — "",
/// "12abc", and "pony" throw ConfigError instead of silently becoming 0.
void set_fail_write_after(std::int64_t budget);

/// Consume one unit of the compatibility budget; true when this call is
/// the one that must fail. Only atomic_write_file consults this, and only
/// for non-store path classes: the budget counts journal/report/other
/// file writes, never store object publishes or the store's index cache
/// (which postdate the hook and degrade gracefully — they would silently
/// eat the budget).
bool consume_fail_write_after();

/// Test-only: forget the installed config and re-read the environment on
/// next use. Lets tests exercise the lazy env-parsing path repeatedly.
void reset_for_tests();

}  // namespace io_chaos

}  // namespace anacin::support

#pragma once

#include <cstddef>
#include <cstdint>

namespace anacin::support {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the frame
/// integrity check of protocol v2 (proc/protocol.hpp). Chosen over plain
/// CRC32 because x86-64 carries it in hardware (SSE4.2 crc32 instruction),
/// which keeps the per-frame cost invisible next to the socket syscalls;
/// the software fallback is slice-by-8. Incremental: pass the previous
/// return value as `seed` to extend a running checksum across buffers.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

/// True when the hardware (SSE4.2) path is in use — exposed so the bench
/// can report which implementation it measured.
bool crc32c_is_hardware();

}  // namespace anacin::support

#pragma once

#include <cstdint>
#include <string>

namespace anacin::support {

/// Crash-consistent file write: the content is written to a uniquely named
/// `<path>.tmp.<n>` sibling, the stream state is checked after every stage
/// (open, write, flush), and the temp file is renamed into place only when
/// the bytes are durably complete. Readers therefore never observe a
/// truncated file — a crash or full disk leaves at worst a stale previous
/// version plus an orphaned temp file, never a plausible-looking prefix.
///
/// Parent directories are created as needed. Throws IoError on any
/// failure (after best-effort removal of the temp file).
///
/// Test hook: when the environment variable ANACIN_FAIL_WRITE_AFTER=N is
/// set, the N+1-th atomic_write_file call in the process fails as if the
/// disk filled mid-write (a partial temp file is left behind, IoError is
/// thrown, the destination is untouched). Used by the fault-injection
/// tests to exercise the ENOSPC/crash paths for real.
void atomic_write_file(const std::string& path, const std::string& content);

/// Number of successful atomic_write_file calls so far (test observability).
std::uint64_t atomic_write_count();

/// In-process override of ANACIN_FAIL_WRITE_AFTER (test hook): the next
/// `budget` writes succeed, then one fails; -1 disables injection.
void set_fail_write_after(std::int64_t budget);

}  // namespace anacin::support

#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "support/io_chaos.hpp"

namespace anacin::support {

/// Crash-consistent file write: the content is written to a uniquely named
/// `<path>.tmp.<n>` sibling, the stream state is checked after every stage
/// (open, write, flush), and the temp file is renamed into place only when
/// the bytes are durably complete. Readers therefore never observe a
/// truncated file — a crash or full disk leaves at worst a stale previous
/// version plus an orphaned temp file, never a plausible-looking prefix.
///
/// Durability: at durability_level() >= kCommit the temp file is fsync'd
/// before the rename and the parent directory after it, so the commit
/// survives power loss, not just a process crash (docs/RESILIENCE.md,
/// "Durability model").
///
/// Fault injection: every call consults the process-global io-chaos
/// engine (ANACIN_IO_CHAOS / --io-chaos-*) under `path_class`, plus the
/// legacy one-shot ANACIN_FAIL_WRITE_AFTER hook (strictly parsed; kept as
/// a compatibility alias for the pre-chaos tests). Injected failures
/// throw IoError and leave the same on-disk shapes real faults would:
/// enospc/eio leave a partial temp, rename_fail leaves a complete temp,
/// open_fail leaves nothing.
///
/// Parent directories are created as needed. Throws IoError on any
/// failure.
void atomic_write_file(const std::string& path, const std::string& content,
                       PathClass path_class = PathClass::kOther);

/// Number of successful atomic_write_file calls so far (test observability).
std::uint64_t atomic_write_count();

/// In-process override of ANACIN_FAIL_WRITE_AFTER (test hook): the next
/// `budget` writes succeed, then one fails; -1 disables injection.
/// Forwards to io_chaos::set_fail_write_after.
void set_fail_write_after(std::int64_t budget);

/// fsync one path. For regular files a failure throws IoError (the bytes
/// are not durable); directory fsyncs are best-effort (some filesystems
/// refuse O_DIRECTORY reads) and directory fsync is what makes a rename
/// survive power loss. No-op on platforms without fsync.
void fsync_path(const std::filesystem::path& path, bool is_directory);

/// Filesystem timestamp captured at process start (static initialization).
/// Temp files older than this belong to a previous — crashed — process.
std::filesystem::file_time_type process_start_file_time();

/// Recursively remove orphaned `*.tmp.*` litter under `root` that is
/// clearly older than this process — a 30 s grace window below the
/// process start absorbs coarse-clock timestamp skew (atomic_write_file
/// and the object store leave partial temps behind on crashes and
/// injected faults). Fresh temps — possibly another live writer's
/// in-flight publish — are left alone.
/// Returns the number of files removed; never throws (cleanup is
/// best-effort, errors skip the file).
std::uint64_t remove_stale_temp_files(const std::filesystem::path& root);

}  // namespace anacin::support

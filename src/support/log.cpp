#include "support/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace anacin::log {

namespace {

Level initial_threshold() {
  const char* env = std::getenv("ANACIN_LOG");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> value{static_cast<int>(initial_threshold())};
  return value;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

Level threshold() { return static_cast<Level>(threshold_storage().load()); }

void set_threshold(Level level) {
  threshold_storage().store(static_cast<int>(level));
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

void write(Level level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << "[anacin:" << level_name(level) << "] " << message << '\n';
}

}  // namespace anacin::log

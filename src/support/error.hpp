#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anacin {

/// Base class for all errors thrown by the ANACIN libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied configuration is invalid.
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated MPI program misuses the communication API
/// (e.g. sends to an out-of-range rank or waits on an invalid request).
class SimUsageError : public Error {
public:
  explicit SimUsageError(const std::string& what) : Error(what) {}
};

/// Thrown when the simulator detects that no entity can make progress.
class DeadlockError : public Error {
public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed input documents (JSON, traces).
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace anacin

/// Runtime invariant check that throws anacin::Error with location info.
#define ANACIN_CHECK(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::anacin::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                            (std::ostringstream{} << msg)    \
                                                .str());                     \
    }                                                                        \
  } while (false)

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace anacin {

/// Base class for all errors thrown by the ANACIN libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied configuration is invalid.
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated MPI program misuses the communication API
/// (e.g. sends to an out-of-range rank or waits on an invalid request).
class SimUsageError : public Error {
public:
  explicit SimUsageError(const std::string& what) : Error(what) {}
};

/// Thrown when the simulator detects that no entity can make progress.
class DeadlockError : public Error {
public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed input documents (JSON, traces).
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// ---------------------------------------------------------------------------
// Resilience taxonomy (see docs/RESILIENCE.md). The run supervisor
// classifies every failure of a campaign work unit by this hierarchy:
// TransientError (and subclasses) is retried with seeded exponential
// backoff, everything else — including the pre-existing errors above —
// is treated as permanent.
// ---------------------------------------------------------------------------

/// A failure that is expected to succeed on retry (contended resource,
/// injected flaky fault, timeout). The supervisor retries these.
class TransientError : public Error {
public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A failure that retrying cannot fix (bad input, logic error, injected
/// hard fault). The supervisor fails the unit immediately.
class PermanentError : public Error {
public:
  explicit PermanentError(const std::string& what) : Error(what) {}
};

/// A work unit exceeded its per-run wall-clock deadline. Deadline misses
/// are often load-induced, so they are transient (retried).
class DeadlineExceeded : public TransientError {
public:
  explicit DeadlineExceeded(const std::string& what) : TransientError(what) {}
};

/// A filesystem write failed (open failure, short write / ENOSPC, rename
/// failure). Raised by support::atomic_write_file; permanent because a
/// full disk does not heal between retries of the same process.
class IoError : public PermanentError {
public:
  explicit IoError(const std::string& what) : PermanentError(what) {}
};

/// The two ends of a scheduler/agent connection speak incompatible frame
/// protocol versions (see proc/protocol.hpp). Permanent: the same two
/// binaries will disagree on every retry, so the operator must upgrade
/// one side rather than let the fleet spin.
class ProtocolVersionError : public PermanentError {
public:
  explicit ProtocolVersionError(const std::string& what)
      : PermanentError(what) {}
};

/// Cooperative cancellation: the user interrupted the process (SIGINT or
/// SIGTERM) and in-flight work has been drained. Not a failure — callers
/// translate it into the distinct "interrupted"/"terminated" exit codes.
class InterruptedError : public Error {
public:
  explicit InterruptedError(const std::string& what) : Error(what) {}
};

// ---------------------------------------------------------------------------
// Worker-child triage (--isolate=process; see docs/RESILIENCE.md). When a
// campaign work unit runs in a sandboxed child and the child dies instead
// of answering, the parent performs a post-mortem and attaches it to the
// typed error so quarantine reports carry a precise diagnosis.
// ---------------------------------------------------------------------------

/// Forensics recovered from a dead worker child: how it died plus whatever
/// context the parent could salvage.
struct UnitTriage {
  /// "crash" (died by signal / exited without answering), "deadline"
  /// (watchdog SIGKILL past --run-deadline-ms), "heartbeat" (watchdog
  /// SIGKILL after missed heartbeats), or "rlimit" (resource-limit breach).
  std::string disposition;
  /// Name of the terminating signal ("SIGSEGV"); empty when the child
  /// exited normally.
  std::string signal;
  /// Exit status when the child exited without reporting a result; -1 when
  /// it died by signal.
  int exit_status = -1;
  /// Peak resident set size of the child (getrusage ru_maxrss), in KiB.
  long peak_rss_kib = 0;
  /// Age of the child's last heartbeat when it was reaped, milliseconds.
  double heartbeat_age_ms = 0.0;
  /// Tail of the child's captured stderr (at most a few KiB).
  std::string stderr_tail;
};

/// Mixin carried by worker-child failures so the supervisor can surface
/// the triage in UnitReport / quarantine entries without caring which
/// concrete error class it rode in on.
class TriagedError {
public:
  explicit TriagedError(UnitTriage triage) : triage_(std::move(triage)) {}
  virtual ~TriagedError() = default;
  const UnitTriage& triage() const { return triage_; }

private:
  UnitTriage triage_;
};

/// A worker child died without reporting a result (fatal signal,
/// unexpected exit, torn pipe). Transient: crashes are often input- or
/// load-specific, so the unit is retried — in a fresh child — before
/// quarantine.
class WorkerCrashError : public TransientError, public TriagedError {
public:
  WorkerCrashError(const std::string& what, UnitTriage triage)
      : TransientError(what), TriagedError(std::move(triage)) {}
};

/// A worker child breached a hard resource limit (RLIMIT_CPU → SIGXCPU,
/// RLIMIT_FSIZE → SIGXFSZ). Permanent: the same unit under the same
/// limits breaches them again, so retrying is futile.
class ResourceLimitError : public PermanentError, public TriagedError {
public:
  ResourceLimitError(const std::string& what, UnitTriage triage)
      : PermanentError(what), TriagedError(std::move(triage)) {}
};

/// The watchdog SIGKILLed a worker child: it outlived --run-deadline-ms
/// or stopped heartbeating. Is-a DeadlineExceeded, so it retries and is
/// counted exactly like an in-process deadline miss.
class WorkerDeadlineError : public DeadlineExceeded, public TriagedError {
public:
  WorkerDeadlineError(const std::string& what, UnitTriage triage)
      : DeadlineExceeded(what), TriagedError(std::move(triage)) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace anacin

/// Runtime invariant check that throws anacin::Error with location info.
#define ANACIN_CHECK(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::anacin::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                            (std::ostringstream{} << msg)    \
                                                .str());                     \
    }                                                                        \
  } while (false)

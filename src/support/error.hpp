#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anacin {

/// Base class for all errors thrown by the ANACIN libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied configuration is invalid.
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated MPI program misuses the communication API
/// (e.g. sends to an out-of-range rank or waits on an invalid request).
class SimUsageError : public Error {
public:
  explicit SimUsageError(const std::string& what) : Error(what) {}
};

/// Thrown when the simulator detects that no entity can make progress.
class DeadlockError : public Error {
public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed input documents (JSON, traces).
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// ---------------------------------------------------------------------------
// Resilience taxonomy (see docs/RESILIENCE.md). The run supervisor
// classifies every failure of a campaign work unit by this hierarchy:
// TransientError (and subclasses) is retried with seeded exponential
// backoff, everything else — including the pre-existing errors above —
// is treated as permanent.
// ---------------------------------------------------------------------------

/// A failure that is expected to succeed on retry (contended resource,
/// injected flaky fault, timeout). The supervisor retries these.
class TransientError : public Error {
public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A failure that retrying cannot fix (bad input, logic error, injected
/// hard fault). The supervisor fails the unit immediately.
class PermanentError : public Error {
public:
  explicit PermanentError(const std::string& what) : Error(what) {}
};

/// A work unit exceeded its per-run wall-clock deadline. Deadline misses
/// are often load-induced, so they are transient (retried).
class DeadlineExceeded : public TransientError {
public:
  explicit DeadlineExceeded(const std::string& what) : TransientError(what) {}
};

/// A filesystem write failed (open failure, short write / ENOSPC, rename
/// failure). Raised by support::atomic_write_file; permanent because a
/// full disk does not heal between retries of the same process.
class IoError : public PermanentError {
public:
  explicit IoError(const std::string& what) : PermanentError(what) {}
};

/// Cooperative cancellation: the user interrupted the process (SIGINT)
/// and in-flight work has been drained. Not a failure — callers translate
/// it into the distinct "interrupted" exit code.
class InterruptedError : public Error {
public:
  explicit InterruptedError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace anacin

/// Runtime invariant check that throws anacin::Error with location info.
#define ANACIN_CHECK(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::anacin::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                            (std::ostringstream{} << msg)    \
                                                .str());                     \
    }                                                                        \
  } while (false)

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace anacin {

/// Deterministic, splittable pseudo-random generator.
///
/// The engine is xoshiro256**, seeded through SplitMix64 so that any 64-bit
/// seed yields a well-mixed state. Simulations must be reproducible from a
/// single seed, so every source of randomness in the project goes through
/// this class; `derive()` produces statistically independent child streams
/// (e.g. one per rank, one per message) without sharing mutable state.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);
  /// Standard normal via Box–Muller.
  double normal();
  double normal(double mean, double stddev);
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independent child stream. Children with distinct stream ids
  /// are independent of each other and of the parent's future output.
  [[nodiscard]] Rng derive(std::uint64_t stream_id) const;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }
  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Sample k distinct values from [0, n). Order of the result is random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  std::uint64_t seed() const { return seed_; }

private:
  std::uint64_t seed_ = 0;
  std::uint64_t state_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// SplitMix64 step — also useful as a cheap 64-bit mixer for hashing.
/// Inline: WL relabelling calls this once per (node, depth, neighbor) and
/// the call overhead dominates an out-of-line build of the kernel hot path.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (one SplitMix64 round).
inline std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t s = value;
  return splitmix64(s);
}

/// Combine two 64-bit hashes (order-dependent).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // boost::hash_combine style, widened to 64 bits.
  return a ^ (mix64(b) + 0x9E3779B97F4A7C15ull + (a << 12) + (a >> 4));
}

}  // namespace anacin

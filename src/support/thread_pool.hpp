#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace anacin {

/// Cooperative cancellation flag shared between a controller (a SIGINT
/// handler, a fail-fast error path) and workers. `cancel()` is a single
/// lock-free atomic store, so it is safe to call from a signal handler.
/// Workers poll `cancelled()` between work items; in-flight items always
/// run to completion — cancellation skips *unstarted* work only.
class CancelToken {
public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> cancelled_{false};
};

/// Work-stealing worker pool used to parallelize independent simulation
/// runs and pairwise kernel-distance computations.
///
/// Each worker owns a deque: it pushes and pops its own work at the back
/// (LIFO — hot in cache, and a worker's parallel_for chunks stay local),
/// and steals from other workers' fronts when idle, taking half the
/// victim's queue per steal so one raid rebalances instead of trickling
/// items one by one. External submitters round-robin across the queues.
/// The single-mutex/single-deque design this replaced serialized every
/// push and pop through one lock, which became the bottleneck once the
/// batched kernel engine shrank task bodies to microseconds.
///
/// Work items are type-erased `std::function<void()>`; `submit` wraps a
/// callable in a packaged_task and returns its future. The pool is
/// non-copyable and joins its workers on destruction (any queued work is
/// drained first).
class ThreadPool {
public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return result;
  }

  /// Run fn(i) for i in [begin, end) across the pool and wait for
  /// completion. Work is chunked to limit queue overhead.
  ///
  /// Fail-fast: the first exception thrown by any item cancels the
  /// remaining *unstarted* items (in-flight ones finish), and is rethrown
  /// after all scheduled work has drained. An optional external
  /// CancelToken skips unstarted items the same way without being an
  /// error — parallel_for returns normally and the caller inspects the
  /// token (used for SIGINT draining).
  ///
  /// Safe to call from inside a pool task: the calling worker then helps
  /// drain its own queue (and steals) instead of blocking on its own
  /// chunks (blocking would deadlock a pool whose every worker waits on
  /// queued work).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1, CancelToken* cancel = nullptr);

private:
  /// One worker's deque. Guarded by a plain mutex: pushes and pops are
  /// almost always uncontended (only steals touch another worker's
  /// queue), and a mutex keeps the scheduler trivially TSan-clean.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> items;
  };

  void enqueue(std::function<void()> item);
  void worker_loop(std::size_t index);
  /// Pop one task from `self`'s queue — or steal half of some victim's —
  /// and run it. False if every queue was empty.
  bool run_one_task(std::size_t self);
  void notify_one_sleeper();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Tasks enqueued but not yet started. The sleep predicate: workers
  /// doze only when this is zero, so a task stuck in a remote queue
  /// always has an awake worker able to steal it.
  std::atomic<std::size_t> pending_{0};
  /// Round-robin cursor for external (non-worker) submits.
  std::atomic<std::size_t> next_queue_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stopping_{false};
};

/// Process-wide default pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace anacin

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace anacin {

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// Format a double with a fixed number of decimal places.
std::string format_fixed(double value, int decimals);

/// Pad/truncate to exactly `width` columns (left-aligned).
std::string pad_right(std::string_view text, std::size_t width);

/// Pad on the left to at least `width` columns (right-aligned).
std::string pad_left(std::string_view text, std::size_t width);

}  // namespace anacin

#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace anacin::json {

/// Minimal JSON document model used for experiment reports, trace
/// serialization, and configuration files. Object members preserve
/// insertion order so emitted reports are stable and diffable.
class Value {
public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(int n) : type_(Type::kNumber), number_(n) {}
  Value(std::int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(std::uint64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Value(double n) : type_(Type::kNumber), number_(n) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}

  static Value array();
  static Value object();

  template <typename T>
  static Value array_of(const std::vector<T>& items) {
    Value out = array();
    for (const auto& item : items) out.push_back(Value(item));
    return out;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ParseError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array operations.
  void push_back(Value value);
  std::size_t size() const;
  const Value& at(std::size_t index) const;
  const std::vector<Value>& items() const;

  /// Object operations.
  Value& set(const std::string& key, Value value);
  bool contains(const std::string& key) const;
  const Value& at(const std::string& key) const;
  /// Lookup with a fallback default.
  const Value* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serialize. indent < 0 → compact single line.
  std::string dump(int indent = -1) const;

  /// Canonical serialization: compact, with object keys emitted in sorted
  /// order at every level. Two semantically equal documents produce
  /// byte-identical output regardless of member insertion order, which is
  /// what makes hashing `to_json()`-derived forms stable (src/store).
  std::string dump_canonical() const;

  bool operator==(const Value& other) const;

private:
  void dump_to(std::string& out, int indent, int depth) const;
  void dump_canonical_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse a JSON document; throws ParseError with position info on failure.
Value parse(std::string_view text);

/// Escape a string for inclusion in a JSON document (without quotes).
std::string escape(std::string_view text);

}  // namespace anacin::json

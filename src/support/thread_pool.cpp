#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "support/error.hpp"

namespace anacin {

namespace {

/// The pool whose worker_loop is executing on this thread, if any. Lets
/// parallel_for detect re-entrant calls from its own workers.
thread_local ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> item) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ANACIN_CHECK(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, CancelToken* cancel) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  // Set by the first failing item so every not-yet-started item is skipped
  // instead of executed uselessly (fail-fast degradation).
  std::atomic<bool> error_cancel{false};
  const auto stop_requested = [&] {
    return error_cancel.load(std::memory_order_relaxed) ||
           (cancel != nullptr && cancel->cancelled());
  };
  std::vector<std::future<void>> chunks;
  chunks.reserve((end - begin + grain - 1) / grain);

  for (std::size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += grain) {
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    chunks.push_back(submit([&, chunk_begin, chunk_end] {
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          if (stop_requested()) return;
          fn(i);
        }
      } catch (...) {
        error_cancel.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  if (t_worker_pool == this) {
    // Re-entrant call from one of our own workers. Blocking here could
    // deadlock: with every worker waiting, the chunks just submitted would
    // never be scheduled. Help drain the queue until our chunks finish —
    // drained tasks may belong to other callers, which only speeds them up.
    for (auto& chunk : chunks) {
      while (chunk.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!run_one_queued_task()) std::this_thread::yield();
      }
    }
  } else {
    for (auto& chunk : chunks) chunk.wait();
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::run_one_queued_task() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace anacin

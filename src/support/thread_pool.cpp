#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/error.hpp"

namespace anacin {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> item) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ANACIN_CHECK(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> chunks;
  chunks.reserve((end - begin + grain - 1) / grain);

  for (std::size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += grain) {
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    chunks.push_back(submit([&, chunk_begin, chunk_end] {
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  for (auto& chunk : chunks) chunk.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace anacin

#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "support/error.hpp"

namespace anacin {

namespace {

/// The pool whose worker_loop is executing on this thread, if any. Lets
/// parallel_for detect re-entrant calls from its own workers, and lets
/// enqueue route a worker's submissions to that worker's own deque.
thread_local ThreadPool* t_worker_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  // Empty critical section: a worker between its predicate check and its
  // wait would otherwise miss the notification forever.
  { const std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> item) {
  ANACIN_CHECK(!stopping_.load(std::memory_order_acquire),
               "submit on a stopping ThreadPool");
  // A worker pushes to its own deque (the LIFO end it pops from); external
  // threads spread load round-robin.
  const std::size_t target =
      t_worker_pool == this
          ? t_worker_index
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  // Increment before the push: a concurrent pop decrements after taking
  // an item, and must never see the count below the queued reality.
  pending_.fetch_add(1, std::memory_order_release);
  {
    WorkerQueue& queue = *queues_[target];
    const std::lock_guard<std::mutex> lock(queue.mutex);
    queue.items.push_back(std::move(item));
  }
  notify_one_sleeper();
}

void ThreadPool::notify_one_sleeper() {
  // Lock-and-drop before notifying: pairs with the sleep predicate so a
  // worker can never check `pending_`, decide to sleep, and then miss
  // the wakeup for the item just pushed.
  { const std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_pool = this;
  t_worker_index = index;
  for (;;) {
    if (run_one_task(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;  // stopping and every queue drained
    }
  }
}

bool ThreadPool::run_one_task(std::size_t self) {
  // Own deque first, newest item first: parallel_for chunks just pushed
  // are still hot in this worker's cache.
  {
    WorkerQueue& queue = *queues_[self];
    std::unique_lock<std::mutex> lock(queue.mutex);
    if (!queue.items.empty()) {
      std::function<void()> task = std::move(queue.items.back());
      queue.items.pop_back();
      lock.unlock();
      pending_.fetch_sub(1, std::memory_order_release);
      task();
      return true;
    }
  }
  // Empty: raid the other workers, oldest items first, half the queue per
  // steal so one raid rebalances a lopsided pool. The loot moves through
  // a local buffer — never hold two queue mutexes at once (two workers
  // stealing from each other would deadlock on the lock pair).
  const std::size_t num_queues = queues_.size();
  for (std::size_t offset = 1; offset < num_queues; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % num_queues];
    std::deque<std::function<void()>> loot;
    {
      const std::lock_guard<std::mutex> lock(victim.mutex);
      if (victim.items.empty()) continue;
      std::size_t take = (victim.items.size() + 1) / 2;
      while (take-- > 0) {
        loot.push_back(std::move(victim.items.front()));
        victim.items.pop_front();
      }
    }
    std::function<void()> task = std::move(loot.front());
    loot.pop_front();
    if (!loot.empty()) {
      const std::lock_guard<std::mutex> lock(queues_[self]->mutex);
      for (auto& item : loot) {
        queues_[self]->items.push_back(std::move(item));
      }
    }
    pending_.fetch_sub(1, std::memory_order_release);
    task();
    return true;
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain, CancelToken* cancel) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);

  std::mutex error_mutex;
  std::exception_ptr first_error;
  // Set by the first failing item so every not-yet-started item is skipped
  // instead of executed uselessly (fail-fast degradation).
  std::atomic<bool> error_cancel{false};
  const auto stop_requested = [&] {
    return error_cancel.load(std::memory_order_relaxed) ||
           (cancel != nullptr && cancel->cancelled());
  };
  std::vector<std::future<void>> chunks;
  chunks.reserve((end - begin + grain - 1) / grain);

  for (std::size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += grain) {
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    chunks.push_back(submit([&, chunk_begin, chunk_end] {
      try {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          if (stop_requested()) return;
          fn(i);
        }
      } catch (...) {
        error_cancel.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  if (t_worker_pool == this) {
    // Re-entrant call from one of our own workers. Blocking here could
    // deadlock: with every worker waiting, the chunks just submitted would
    // never be scheduled. Help drain — own deque first, then steals —
    // until our chunks finish; drained tasks may belong to other callers,
    // which only speeds them up.
    for (auto& chunk : chunks) {
      while (chunk.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!run_one_task(t_worker_index)) std::this_thread::yield();
      }
    }
  } else {
    for (auto& chunk : chunks) chunk.wait();
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace anacin

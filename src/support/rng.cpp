#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace anacin {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ANACIN_CHECK(lo <= hi, "uniform bounds out of order: " << lo << " > " << hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ANACIN_CHECK(lo <= hi,
               "uniform_int bounds out of order: " << lo << " > " << hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Debiased modulo rejection (Lemire-style threshold).
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::exponential(double mean) {
  ANACIN_CHECK(mean > 0.0, "exponential mean must be positive, got " << mean);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  ANACIN_CHECK(stddev >= 0.0, "stddev must be non-negative, got " << stddev);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::derive(std::uint64_t stream_id) const {
  return Rng(hash_combine(mix64(seed_), stream_id));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  ANACIN_CHECK(k <= n, "cannot sample " << k << " items from " << n);
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace anacin

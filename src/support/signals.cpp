#include "support/signals.hpp"

#include <csignal>

#include <array>
#include <cctype>

#include "support/error.hpp"

namespace anacin::support {

namespace {

struct SignalEntry {
  int signo;
  const char* name;  // without the SIG prefix
};

// The portable subset that matters for worker-child triage and crash
// injection; anything else renders as "signal <n>".
constexpr std::array<SignalEntry, 17> kSignals = {{
    {SIGHUP, "HUP"},
    {SIGINT, "INT"},
    {SIGQUIT, "QUIT"},
    {SIGILL, "ILL"},
    {SIGABRT, "ABRT"},
    {SIGBUS, "BUS"},
    {SIGFPE, "FPE"},
    {SIGKILL, "KILL"},
    {SIGSEGV, "SEGV"},
    {SIGPIPE, "PIPE"},
    {SIGALRM, "ALRM"},
    {SIGTERM, "TERM"},
    {SIGXCPU, "XCPU"},
    {SIGXFSZ, "XFSZ"},
    {SIGSTOP, "STOP"},
    {SIGUSR1, "USR1"},
    {SIGUSR2, "USR2"},
}};

}  // namespace

std::string signal_name(int signo) {
  for (const SignalEntry& entry : kSignals) {
    if (entry.signo == signo) return std::string("SIG") + entry.name;
  }
  return "signal " + std::to_string(signo);
}

int signal_from_name(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  std::string_view bare = upper;
  if (bare.size() > 3 && bare.substr(0, 3) == "SIG") bare = bare.substr(3);
  for (const SignalEntry& entry : kSignals) {
    if (bare == entry.name) return entry.signo;
  }
  throw ConfigError("unknown signal name '" + std::string(name) +
                    "' (expected e.g. SEGV, KILL, XCPU)");
}

}  // namespace anacin::support

#pragma once

#include <sstream>
#include <string>

namespace anacin::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Defaults to kWarn; overridable with the
/// ANACIN_LOG environment variable (debug|info|warn|error|off).
Level threshold();
void set_threshold(Level level);

/// Thread-safe sink; writes one line to stderr.
void write(Level level, const std::string& message);

const char* level_name(Level level);

namespace detail {
struct LineEmitter {
  Level level;
  std::ostringstream stream;
  ~LineEmitter() { write(level, stream.str()); }
};
}  // namespace detail

}  // namespace anacin::log

#define ANACIN_LOG(level_, expr_)                                        \
  do {                                                                   \
    if (static_cast<int>(level_) >=                                      \
        static_cast<int>(::anacin::log::threshold())) {                  \
      ::anacin::log::detail::LineEmitter{level_, {}}.stream << expr_;    \
    }                                                                    \
  } while (false)

#define ANACIN_LOG_DEBUG(expr_) ANACIN_LOG(::anacin::log::Level::kDebug, expr_)
#define ANACIN_LOG_INFO(expr_) ANACIN_LOG(::anacin::log::Level::kInfo, expr_)
#define ANACIN_LOG_WARN(expr_) ANACIN_LOG(::anacin::log::Level::kWarn, expr_)
#define ANACIN_LOG_ERROR(expr_) ANACIN_LOG(::anacin::log::Level::kError, expr_)

#include "support/fs.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "support/error.hpp"

namespace anacin::support {

namespace fs = std::filesystem;

namespace {

std::atomic<std::uint64_t> g_write_count{0};

/// Captured during static initialization, before main() can write any
/// temp file, so "older than this" cleanly separates a previous process's
/// litter from a live writer's in-flight publish.
const fs::file_time_type g_process_start = fs::file_time_type::clock::now();

}  // namespace

void fsync_path(const fs::path& path, bool is_directory) {
#ifndef _WIN32
  // Directory fsync is how POSIX makes a rename durable: the new
  // directory entry itself must reach the disk.
  const int flags = is_directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (is_directory) return;
    throw IoError("cannot open '" + path.string() + "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !is_directory) {
    throw IoError("fsync failed for '" + path.string() + "'");
  }
#else
  (void)path;
  (void)is_directory;
#endif
}

void atomic_write_file(const std::string& path, const std::string& content,
                       PathClass path_class) {
  const fs::path file_path(path);
  std::error_code ec;
  if (file_path.has_parent_path()) {
    fs::create_directories(file_path.parent_path(), ec);
    if (ec) {
      throw IoError("cannot create directory '" +
                    file_path.parent_path().string() + "': " + ec.message());
    }
  }

  // One fault decision per durable-write op, drawn before any disk work
  // so the stream position is independent of filesystem state. The legacy
  // one-shot hook maps onto the enospc shape; it predates store-internal
  // writes flowing through here, so store-class writes (index cache,
  // which degrades gracefully and would silently eat the budget) are
  // excluded from its count.
  io_chaos::WriteFault fault = io_chaos::next_write_fault(path_class);
  if (fault.kind == io_chaos::WriteFault::Kind::kNone &&
      path_class != PathClass::kStore &&
      io_chaos::consume_fail_write_after()) {
    fault.kind = io_chaos::WriteFault::Kind::kEnospc;
  }
  using Kind = io_chaos::WriteFault::Kind;
  if (fault.kind == Kind::kOpenFail) {
    throw IoError("injected open failure (io chaos) for '" + path + "'");
  }

  // Unique temp name per writer so concurrent writers of the same path
  // never clobber each other's in-progress bytes; the final rename is the
  // single atomic commit point.
  static std::atomic<std::uint64_t> temp_sequence{0};
  const fs::path temp =
      file_path.string() + ".tmp." +
      std::to_string(temp_sequence.fetch_add(1, std::memory_order_relaxed));

  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw IoError("cannot open '" + temp.string() + "' for writing");
    }
    if (fault.kind == Kind::kEnospc || fault.kind == Kind::kEio) {
      // Simulate a disk filling (or dying) mid-write: a partial temp file
      // is left on disk (as a real crash would leave) and the destination
      // stays untouched.
      out << content.substr(0, content.size() / 2);
      out.flush();
      throw IoError(std::string("injected ") +
                    (fault.kind == Kind::kEnospc ? "ENOSPC" : "EIO") +
                    " (io chaos) writing '" + path + "'");
    }
    out << content;
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      throw IoError("short write for '" + path + "' (disk full?)");
    }
  }

  const bool durable = durability_level() != Durability::kNone;
  if (durable && !fault.drop_fsync) fsync_path(temp, /*is_directory=*/false);

  if (fault.kind == Kind::kRenameFail) {
    // The fully written temp stays behind — exactly the litter the
    // stale-temp sweeper exists for.
    throw IoError("injected rename failure (io chaos) publishing '" + path +
                  "'");
  }
  fs::rename(temp, file_path, ec);
  if (ec) {
    fs::remove(temp, ec);
    throw IoError("cannot publish '" + path + "': rename failed");
  }
  if (durable && !fault.drop_fsync && file_path.has_parent_path()) {
    fsync_path(file_path.parent_path(), /*is_directory=*/true);
  }
  g_write_count.fetch_add(1, std::memory_order_relaxed);
  io_chaos::note_durable_op();
}

std::uint64_t atomic_write_count() {
  return g_write_count.load(std::memory_order_relaxed);
}

void set_fail_write_after(std::int64_t budget) {
  io_chaos::set_fail_write_after(budget);
}

fs::file_time_type process_start_file_time() { return g_process_start; }

std::uint64_t remove_stale_temp_files(const fs::path& root) {
  std::error_code ec;
  std::uint64_t removed = 0;
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  if (ec) return 0;
  for (const fs::recursive_directory_iterator end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    const fs::file_time_type mtime = fs::last_write_time(it->path(), ec);
    if (ec) continue;
    // Grace window below process start: file timestamps come from the
    // kernel's coarse clock, which can lag the precise clock we sampled
    // at startup by a tick — and a sibling process that began moments
    // before us may legitimately still be writing. Only clearly-older
    // temps are orphans.
    if (mtime >= g_process_start - std::chrono::seconds(30)) continue;
    if (fs::remove(it->path(), ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace anacin::support

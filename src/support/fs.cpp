#include "support/fs.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>

#include "support/error.hpp"

namespace anacin::support {

namespace fs = std::filesystem;

namespace {

std::atomic<std::uint64_t> g_write_count{0};

/// Remaining writes before the injected failure fires; -1 = no injection.
/// Re-read from the environment on first use of every process so the CLI
/// binary honors the variable without any plumbing.
std::int64_t& injected_budget() {
  static std::int64_t budget = [] {
    const char* env = std::getenv("ANACIN_FAIL_WRITE_AFTER");
    if (env == nullptr || *env == '\0') return std::int64_t{-1};
    return static_cast<std::int64_t>(std::strtoll(env, nullptr, 10));
  }();
  return budget;
}

std::mutex& injection_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// True when this call should fail; decrements the budget. The injection
/// fires exactly once (then disables itself) so a test can assert both the
/// failure and that later writes in the same process still succeed.
bool consume_injected_failure() {
  const std::lock_guard<std::mutex> lock(injection_mutex());
  std::int64_t& budget = injected_budget();
  if (budget < 0) return false;
  if (budget == 0) {
    budget = -1;
    return true;
  }
  --budget;
  return false;
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const fs::path file_path(path);
  std::error_code ec;
  if (file_path.has_parent_path()) {
    fs::create_directories(file_path.parent_path(), ec);
    if (ec) {
      throw IoError("cannot create directory '" +
                    file_path.parent_path().string() + "': " + ec.message());
    }
  }

  // Unique temp name per writer so concurrent writers of the same path
  // never clobber each other's in-progress bytes; the final rename is the
  // single atomic commit point.
  static std::atomic<std::uint64_t> temp_sequence{0};
  const fs::path temp =
      file_path.string() + ".tmp." +
      std::to_string(temp_sequence.fetch_add(1, std::memory_order_relaxed));

  const bool fail_injected = consume_injected_failure();
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw IoError("cannot open '" + temp.string() + "' for writing");
    }
    if (fail_injected) {
      // Simulate a disk filling mid-write: a partial temp file is left on
      // disk (as a real crash would) and the destination stays untouched.
      out << content.substr(0, content.size() / 2);
      out.flush();
      throw IoError("injected write failure (ANACIN_FAIL_WRITE_AFTER) for '" +
                    path + "'");
    }
    out << content;
    out.flush();
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      throw IoError("short write for '" + path + "' (disk full?)");
    }
  }
  fs::rename(temp, file_path, ec);
  if (ec) {
    fs::remove(temp, ec);
    throw IoError("cannot publish '" + path + "': rename failed");
  }
  g_write_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t atomic_write_count() {
  return g_write_count.load(std::memory_order_relaxed);
}

void set_fail_write_after(std::int64_t budget) {
  const std::lock_guard<std::mutex> lock(injection_mutex());
  injected_budget() = budget;
}

}  // namespace anacin::support

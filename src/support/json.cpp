#include "support/json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace anacin::json {

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::as_bool() const {
  if (!is_bool()) throw ParseError("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (!is_number()) throw ParseError("json: not a number");
  return number_;
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Value::as_string() const {
  if (!is_string()) throw ParseError("json: not a string");
  return string_;
}

void Value::push_back(Value value) {
  if (!is_array()) throw ParseError("json: push_back on non-array");
  array_.push_back(std::move(value));
}

std::size_t Value::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  throw ParseError("json: size() on non-container");
}

const Value& Value::at(std::size_t index) const {
  if (!is_array()) throw ParseError("json: index into non-array");
  if (index >= array_.size()) throw ParseError("json: array index out of range");
  return array_[index];
}

const std::vector<Value>& Value::items() const {
  if (!is_array()) throw ParseError("json: items() on non-array");
  return array_;
}

Value& Value::set(const std::string& key, Value value) {
  if (!is_object()) throw ParseError("json: set() on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

bool Value::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* found = find(key);
  if (found == nullptr) throw ParseError("json: missing key '" + key + "'");
  return *found;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (!is_object()) throw ParseError("json: members() on non-object");
  return object_;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: {
      // Semantic equality: member order is a serialization detail (set()
      // keeps keys unique), so objects compare as key -> value maps.
      if (object_.size() != other.object_.size()) return false;
      for (const auto& [key, value] : object_) {
        const Value* other_value = other.find(key);
        if (other_value == nullptr || !(value == *other_value)) return false;
      }
      return true;
    }
  }
  return false;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double number) {
  if (number == std::floor(number) && std::abs(number) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(number));
    out += buffer;
  } else {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out += buffer;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, number_); return;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        out += '"';
        out += escape(object_[i].first);
        out += indent >= 0 ? "\": " : "\":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Value::dump_canonical_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
    case Type::kBool:
    case Type::kNumber:
    case Type::kString:
      dump_to(out, -1, 0);
      return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        array_[i].dump_canonical_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      // Keys are unique (set() overwrites), so a sorted view is a total
      // order and the output is independent of insertion order.
      std::vector<const std::pair<std::string, Value>*> sorted;
      sorted.reserve(object_.size());
      for (const auto& member : object_) sorted.push_back(&member);
      std::sort(sorted.begin(), sorted.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      out += '{';
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i != 0) out += ',';
        out += '"';
        out += escape(sorted[i]->first);
        out += "\":";
        sorted[i]->second.dump_canonical_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Value::dump_canonical() const {
  std::string out;
  dump_canonical_to(out);
  return out;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json parse error at offset " + std::to_string(pos_) +
                     ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value object = Value::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_whitespace();
      const std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(key, parse_value());
      skip_whitespace();
      const char next = take();
      if (next == '}') return object;
      if (next != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Value array = Value::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char next = take();
      if (next == ']') return array;
      if (next != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are not needed for
          // the ASCII-dominated documents this project produces).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace anacin::json

#include "support/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace anacin {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text.substr(0, width));
  out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out;
  if (text.size() < width) out.append(width - text.size(), ' ');
  out.append(text);
  return out;
}

}  // namespace anacin

#include "kernels/labeled_graph.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::kernels {

std::string_view label_policy_name(LabelPolicy policy) {
  switch (policy) {
    case LabelPolicy::kTypeOnly: return "type_only";
    case LabelPolicy::kTypePeer: return "type_peer";
    case LabelPolicy::kTypePeerTag: return "type_peer_tag";
    case LabelPolicy::kTypeCallstack: return "type_callstack";
    case LabelPolicy::kTypePeerCallstack: return "type_peer_callstack";
  }
  return "?";
}

LabelPolicy label_policy_from_name(std::string_view name) {
  if (name == "type_only") return LabelPolicy::kTypeOnly;
  if (name == "type_peer") return LabelPolicy::kTypePeer;
  if (name == "type_peer_tag") return LabelPolicy::kTypePeerTag;
  if (name == "type_callstack") return LabelPolicy::kTypeCallstack;
  if (name == "type_peer_callstack") return LabelPolicy::kTypePeerCallstack;
  throw ConfigError("unknown label policy: '" + std::string(name) + "'");
}

namespace {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

std::uint64_t initial_label(const graph::EventGraph& graph,
                            graph::NodeId node_id, LabelPolicy policy) {
  const graph::EventNode& node = graph.node(node_id);
  std::uint64_t label = mix64(static_cast<std::uint64_t>(node.type) + 1);
  const auto mix_in = [&label](std::uint64_t value) {
    label = hash_combine(label, value);
  };
  switch (policy) {
    case LabelPolicy::kTypeOnly:
      break;
    case LabelPolicy::kTypePeer:
      mix_in(static_cast<std::uint64_t>(node.peer + 2));
      break;
    case LabelPolicy::kTypePeerTag:
      mix_in(static_cast<std::uint64_t>(node.peer + 2));
      mix_in(static_cast<std::uint64_t>(node.tag + 2));
      break;
    case LabelPolicy::kTypeCallstack:
      // Hash the path string, not the registry id: ids are only stable
      // within one run's registry, paths compare across runs.
      mix_in(fnv1a(graph.callstacks().path(node.callstack_id)));
      break;
    case LabelPolicy::kTypePeerCallstack:
      mix_in(static_cast<std::uint64_t>(node.peer + 2));
      mix_in(fnv1a(graph.callstacks().path(node.callstack_id)));
      break;
  }
  return label;
}

LabeledGraph build_labeled_graph(const graph::EventGraph& graph,
                                 LabelPolicy policy) {
  LabeledGraph labeled;
  const std::size_t n = graph.num_nodes();
  labeled.labels.resize(n);
  labeled.neighbors.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    labeled.labels[v] = initial_label(graph, v, policy);
    for (const graph::NodeId w : graph.digraph().out_neighbors(v)) {
      labeled.neighbors[v].emplace_back(w, true);
      labeled.neighbors[w].emplace_back(v, false);
    }
  }
  return labeled;
}

LabeledGraph build_labeled_subgraph(const graph::EventGraph& graph,
                                    std::span<const graph::NodeId> nodes,
                                    LabelPolicy policy) {
  ANACIN_CHECK(std::is_sorted(nodes.begin(), nodes.end()),
               "subgraph node list must be sorted");
  LabeledGraph labeled;
  labeled.labels.resize(nodes.size());
  labeled.neighbors.resize(nodes.size());

  const auto local_id = [&nodes](graph::NodeId global) -> std::int64_t {
    const auto it = std::lower_bound(nodes.begin(), nodes.end(), global);
    if (it == nodes.end() || *it != global) return -1;
    return it - nodes.begin();
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    labeled.labels[i] = initial_label(graph, nodes[i], policy);
    for (const graph::NodeId w : graph.digraph().out_neighbors(nodes[i])) {
      const std::int64_t j = local_id(w);
      if (j < 0) continue;  // edge leaves the slice
      labeled.neighbors[i].emplace_back(static_cast<std::uint32_t>(j), true);
      labeled.neighbors[static_cast<std::size_t>(j)].emplace_back(
          static_cast<std::uint32_t>(i), false);
    }
  }
  return labeled;
}

}  // namespace anacin::kernels

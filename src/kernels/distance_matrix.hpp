#pragma once

#include <vector>

#include "kernels/kernel.hpp"
#include "support/thread_pool.hpp"

namespace anacin::kernels {

/// Symmetric pairwise kernel-distance matrix over a set of graphs.
struct DistanceMatrix {
  std::size_t size = 0;
  /// Row-major size x size distances; diagonal is 0.
  std::vector<double> values;

  double at(std::size_t i, std::size_t j) const {
    return values[i * size + j];
  }

  /// Strict upper triangle flattened (the sample of pairwise distances).
  std::vector<double> upper_triangle() const;
};

/// Extract features for every graph (in parallel) and compute all pairwise
/// kernel distances.
DistanceMatrix pairwise_distances(const GraphKernel& kernel,
                                  const std::vector<LabeledGraph>& graphs,
                                  ThreadPool& pool);

/// Distances from each graph to a single reference graph. With the
/// reference being a jitter-free run, N runs give the paper's N-point
/// kernel-distance samples.
std::vector<double> distances_to_reference(
    const GraphKernel& kernel, const LabeledGraph& reference,
    const std::vector<LabeledGraph>& graphs, ThreadPool& pool);

/// One pair distance, accounted in the `kernels.distances_computed`
/// counter like the batched entry points above. The artifact store's
/// incremental measurement path uses this for cache misses so that the
/// counter stays an exact census of distance computations (a warm cached
/// campaign must leave it untouched).
double counted_distance(const FeatureVector& a, const FeatureVector& b);

}  // namespace anacin::kernels

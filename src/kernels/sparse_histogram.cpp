#include "kernels/sparse_histogram.hpp"

#include <algorithm>
#include <array>

namespace anacin::kernels {

namespace {

/// Sort a raw feature-id list. Ids are hash outputs, so their top bytes
/// are near-uniform: one counting-scatter pass by the top byte leaves
/// ~n/256 elements per bucket, each finished with a tiny sort. Any
/// algorithm yields the same ascending order, so the RLE downstream —
/// and therefore every distance — is unaffected; this exists purely
/// because std::sort on random u64 was the single largest cost of WL
/// feature extraction.
void sort_ids(std::vector<std::uint64_t>& raw) {
  if (raw.size() < 128) {
    std::sort(raw.begin(), raw.end());
    return;
  }
  static thread_local std::vector<std::uint64_t> scratch;
  scratch.resize(raw.size());
  std::array<std::uint32_t, 257> offset{};
  for (const std::uint64_t v : raw) ++offset[(v >> 56) + 1];
  for (std::size_t b = 0; b < 256; ++b) offset[b + 1] += offset[b];
  std::array<std::uint32_t, 256> cursor;
  std::copy(offset.begin(), offset.begin() + 256, cursor.begin());
  for (const std::uint64_t v : raw) scratch[cursor[v >> 56]++] = v;
  raw.swap(scratch);
  for (std::size_t b = 0; b < 256; ++b) {
    const std::size_t lo = offset[b];
    const std::size_t hi = offset[b + 1];
    if (hi - lo <= 1) continue;
    if (hi - lo <= 32) {
      // Insertion sort: buckets hold a handful of elements on hashed
      // input, where introsort's setup costs dominate.
      for (std::size_t a = lo + 1; a < hi; ++a) {
        const std::uint64_t key = raw[a];
        std::size_t b2 = a;
        while (b2 > lo && raw[b2 - 1] > key) {
          raw[b2] = raw[b2 - 1];
          --b2;
        }
        raw[b2] = key;
      }
    } else {
      // Pathologically skewed bucket (non-hashed ids): stay O(n log n).
      std::sort(raw.begin() + static_cast<std::ptrdiff_t>(lo),
                raw.begin() + static_cast<std::ptrdiff_t>(hi));
    }
  }
}

}  // namespace

SparseHistogram histogram_from_raw(std::vector<std::uint64_t>& raw) {
  sort_ids(raw);
  SparseHistogram histogram;
  histogram.ids.reserve(raw.size());
  histogram.counts.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size();) {
    std::size_t j = i;
    while (j < raw.size() && raw[j] == raw[i]) ++j;
    histogram.push(raw[i], static_cast<double>(j - i));
    i = j;
  }
  return histogram;
}

double dot(const SparseHistogram& a, const SparseHistogram& b) {
  double sum = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  const std::size_t na = a.ids.size();
  const std::size_t nb = b.ids.size();
  while (i < na && j < nb) {
    const std::uint64_t ida = a.ids[i];
    const std::uint64_t idb = b.ids[j];
    if (ida == idb) {
      sum += a.counts[i] * b.counts[j];
      ++i;
      ++j;
    } else if (ida < idb) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

}  // namespace anacin::kernels

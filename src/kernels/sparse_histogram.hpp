#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anacin::kernels {

/// Sparse feature embedding of a graph in a kernel's feature space,
/// stored as CSR-style parallel arrays: `ids` holds the feature ids in
/// strictly ascending order and `counts[k]` the (integer-valued)
/// occurrence count of `ids[k]`. The split layout keeps each array
/// contiguous and homogeneous, which is what lets the batched distance
/// engine (batch_engine.hpp) reindex ids to dense vocabulary slots and
/// stream counts through SIMD-friendly gathers — the interleaved
/// `vector<pair<id, count>>` it replaced defeated both.
///
/// The kernel value of two graphs is the dot product of their histograms —
/// an inner product in a Reproducing Kernel Hilbert Space, exactly the
/// object the paper's "kernel function" refers to.
struct SparseHistogram {
  /// Feature ids, strictly ascending.
  std::vector<std::uint64_t> ids;
  /// counts[k] is the count of ids[k]; same length as `ids`.
  std::vector<double> counts;
  /// Cached <f, f>, accumulated in ascending id order.
  double self_dot = 0.0;

  std::size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }

  bool operator==(const SparseHistogram& other) const = default;

  /// Append an entry; `id` must exceed every id already present.
  void push(std::uint64_t id, double count) {
    ids.push_back(id);
    counts.push_back(count);
    self_dot += count * count;
  }
};

/// Build a histogram from one raw feature-id occurrence list (one entry
/// per occurrence, duplicates allowed, any order). Sorts in place, then
/// run-length-encodes. Counts are exact integers, so the result is
/// bit-identical to a `map<id, double>` built with repeated `+= 1.0` —
/// the aggregation the per-pair engine used before batching.
SparseHistogram histogram_from_raw(std::vector<std::uint64_t>& raw);

/// Sparse dot product <a, b>: matched products accumulated in ascending
/// id order (the order every other engine in this module must reproduce
/// to stay bit-identical).
double dot(const SparseHistogram& a, const SparseHistogram& b);

}  // namespace anacin::kernels

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernels/labeled_graph.hpp"
#include "kernels/sparse_histogram.hpp"

namespace anacin::kernels {

/// A graph's feature embedding is a sparse histogram of feature-id
/// counts; see sparse_histogram.hpp for the layout and the batched
/// distance engine built on top of it.
using FeatureVector = SparseHistogram;

/// Kernel distance: the RKHS metric sqrt(k(a,a) + k(b,b) - 2 k(a,b)).
/// Because event graphs encode the communication pattern, this is the
/// paper's proxy metric for the non-determinism between two runs.
double kernel_distance(const FeatureVector& a, const FeatureVector& b);

/// Cosine-normalized kernel value in [0, 1] (1 = identical embeddings).
double normalized_kernel(const FeatureVector& a, const FeatureVector& b);

/// Interface of all graph kernels.
class GraphKernel {
public:
  virtual ~GraphKernel() = default;
  virtual std::string name() const = 0;
  virtual FeatureVector features(const LabeledGraph& graph) const = 0;

  double kernel(const LabeledGraph& a, const LabeledGraph& b) const {
    return dot(features(a), features(b));
  }
  double distance(const LabeledGraph& a, const LabeledGraph& b) const {
    return kernel_distance(features(a), features(b));
  }
};

/// Counts initial node labels (= WL with depth 0).
class VertexHistogramKernel final : public GraphKernel {
public:
  std::string name() const override { return "vertex_histogram"; }
  FeatureVector features(const LabeledGraph& graph) const override;
};

/// Counts (source label, direction, target label) triples per edge.
class EdgeHistogramKernel final : public GraphKernel {
public:
  std::string name() const override { return "edge_histogram"; }
  FeatureVector features(const LabeledGraph& graph) const override;
};

/// Weisfeiler–Lehman subtree kernel: h rounds of neighborhood relabelling,
/// counting every label seen at every depth. The default kernel of
/// ANACIN-X (via GraKeL) and of this reproduction.
class WLSubtreeKernel final : public GraphKernel {
public:
  explicit WLSubtreeKernel(unsigned depth = 2);
  std::string name() const override;
  FeatureVector features(const LabeledGraph& graph) const override;
  unsigned depth() const { return depth_; }

private:
  unsigned depth_;
};

/// Graphlet sampling kernel: counts labelled, direction-aware 3-node path
/// graphlets (center + two neighbors) from a deterministic sample of
/// nodes. A cheaper, local alternative to WL, included for the kernel
/// ablation study.
class GraphletSamplingKernel final : public GraphKernel {
public:
  explicit GraphletSamplingKernel(std::size_t max_samples_per_node = 8,
                                  std::uint64_t seed = 0x6A3);
  std::string name() const override { return "graphlet_sampling"; }
  FeatureVector features(const LabeledGraph& graph) const override;

private:
  std::size_t max_samples_per_node_;
  std::uint64_t seed_;
};

/// Construct a kernel by name: "wl[:depth]", "vertex_histogram",
/// "edge_histogram", "graphlet_sampling".
std::unique_ptr<GraphKernel> make_kernel(const std::string& spec);

}  // namespace anacin::kernels

#pragma once

#include <vector>

#include "kernels/distance_matrix.hpp"
#include "kernels/kernel.hpp"
#include "support/thread_pool.hpp"

namespace anacin::kernels {

/// Two-phase batched distance engine (design notes in docs/KERNELS.md).
///
/// Phase A (batch_features) embeds every graph once; phase B turns the
/// precomputed histograms into distances with a blocked sparse
/// inner-product sweep instead of a merge-join per pair. The contract of
/// every entry point here is *byte-identical* output to the naive
/// per-pair reference (`kernel_distance(features(a), features(b))`):
/// the sweep accumulates each pair's matched products in the same
/// ascending-id order the merge-join uses, and the interleaved zero
/// products it adds for unmatched ids cannot change any bit because all
/// products are non-negative (x + 0.0 == x bitwise for x >= +0.0).

/// Extract features for every graph across the pool. Accounts each
/// extraction in `kernels.feature_tasks`.
std::vector<FeatureVector> batch_features(
    const GraphKernel& kernel, const std::vector<LabeledGraph>& graphs,
    ThreadPool& pool, CancelToken* cancel = nullptr);

/// All-pairs distance matrix from precomputed histograms. Work is tiled
/// over row blocks of kTileRows histograms; tiles are the unit of
/// parallelism and of the `kernels.distance_rows` /
/// `kernels.distances_computed` / `kernels.distance_tiles` counters, so
/// per-thread counter shards report the actual per-tile work split (the
/// old row-parallel loop attributed a triangular, front-loaded share to
/// each row, which made the shards useless for balance analysis).
DistanceMatrix batch_pairwise_distances(
    const std::vector<FeatureVector>& features, ThreadPool& pool);

/// Distances from every histogram to one reference histogram.
std::vector<double> batch_distances_to_reference(
    const FeatureVector& reference,
    const std::vector<FeatureVector>& features, ThreadPool& pool);

/// Rows per tile in the phase-B sweep. Eight doubles = one 64-byte cache
/// line per vocabulary slot, and an 8-wide accumulator the compiler can
/// keep in vector registers.
inline constexpr std::size_t kTileRows = 8;

}  // namespace anacin::kernels

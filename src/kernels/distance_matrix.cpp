#include "kernels/distance_matrix.hpp"

#include "obs/obs.hpp"

namespace anacin::kernels {

std::vector<double> DistanceMatrix::upper_triangle() const {
  std::vector<double> flat;
  flat.reserve(size * (size - 1) / 2);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) flat.push_back(at(i, j));
  }
  return flat;
}

DistanceMatrix pairwise_distances(const GraphKernel& kernel,
                                  const std::vector<LabeledGraph>& graphs,
                                  ThreadPool& pool) {
  ANACIN_SPAN("kernels.pairwise_distances");
  const std::size_t n = graphs.size();
  // Sharded counters: each pool worker lands on its own shard, so these
  // double as per-thread work counts.
  static obs::Counter& feature_tasks = obs::counter("kernels.feature_tasks");
  static obs::Counter& distance_rows = obs::counter("kernels.distance_rows");
  static obs::Counter& distances = obs::counter("kernels.distances_computed");

  std::vector<FeatureVector> features(n);
  {
    ANACIN_SPAN("kernels.feature_extraction");
    pool.parallel_for(0, n, [&](std::size_t i) {
      ANACIN_SPAN("kernels.feature_task");
      features[i] = kernel.features(graphs[i]);
      feature_tasks.add(1);
    });
  }

  DistanceMatrix matrix;
  matrix.size = n;
  matrix.values.assign(n * n, 0.0);
  {
    ANACIN_SPAN("kernels.distance_matrix");
    // Parallelize over rows; each row computes its upper-triangle segment.
    pool.parallel_for(0, n, [&](std::size_t i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d = kernel_distance(features[i], features[j]);
        matrix.values[i * n + j] = d;
        matrix.values[j * n + i] = d;
      }
      distance_rows.add(1);
      distances.add(n - i - 1);
    });
  }
  return matrix;
}

std::vector<double> distances_to_reference(
    const GraphKernel& kernel, const LabeledGraph& reference,
    const std::vector<LabeledGraph>& graphs, ThreadPool& pool) {
  ANACIN_SPAN("kernels.distances_to_reference");
  static obs::Counter& feature_tasks = obs::counter("kernels.feature_tasks");
  static obs::Counter& distances = obs::counter("kernels.distances_computed");
  const FeatureVector reference_features = kernel.features(reference);
  std::vector<double> result(graphs.size());
  pool.parallel_for(0, graphs.size(), [&](std::size_t i) {
    ANACIN_SPAN("kernels.feature_task");
    result[i] =
        kernel_distance(reference_features, kernel.features(graphs[i]));
    feature_tasks.add(1);
    distances.add(1);
  });
  return result;
}

double counted_distance(const FeatureVector& a, const FeatureVector& b) {
  static obs::Counter& distances = obs::counter("kernels.distances_computed");
  distances.add(1);
  return kernel_distance(a, b);
}

}  // namespace anacin::kernels

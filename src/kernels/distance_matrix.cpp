#include "kernels/distance_matrix.hpp"

#include "kernels/batch_engine.hpp"
#include "obs/obs.hpp"

namespace anacin::kernels {

std::vector<double> DistanceMatrix::upper_triangle() const {
  std::vector<double> flat;
  flat.reserve(size * (size - 1) / 2);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) flat.push_back(at(i, j));
  }
  return flat;
}

DistanceMatrix pairwise_distances(const GraphKernel& kernel,
                                  const std::vector<LabeledGraph>& graphs,
                                  ThreadPool& pool) {
  ANACIN_SPAN("kernels.pairwise_distances");
  const std::vector<FeatureVector> features =
      batch_features(kernel, graphs, pool);
  return batch_pairwise_distances(features, pool);
}

std::vector<double> distances_to_reference(
    const GraphKernel& kernel, const LabeledGraph& reference,
    const std::vector<LabeledGraph>& graphs, ThreadPool& pool) {
  ANACIN_SPAN("kernels.distances_to_reference");
  const FeatureVector reference_features = kernel.features(reference);
  const std::vector<FeatureVector> features =
      batch_features(kernel, graphs, pool);
  return batch_distances_to_reference(reference_features, features, pool);
}

double counted_distance(const FeatureVector& a, const FeatureVector& b) {
  static obs::Counter& distances = obs::counter("kernels.distances_computed");
  distances.add(1);
  return kernel_distance(a, b);
}

}  // namespace anacin::kernels

#include "kernels/distance_matrix.hpp"

namespace anacin::kernels {

std::vector<double> DistanceMatrix::upper_triangle() const {
  std::vector<double> flat;
  flat.reserve(size * (size - 1) / 2);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) flat.push_back(at(i, j));
  }
  return flat;
}

DistanceMatrix pairwise_distances(const GraphKernel& kernel,
                                  const std::vector<LabeledGraph>& graphs,
                                  ThreadPool& pool) {
  const std::size_t n = graphs.size();
  std::vector<FeatureVector> features(n);
  pool.parallel_for(0, n, [&](std::size_t i) {
    features[i] = kernel.features(graphs[i]);
  });

  DistanceMatrix matrix;
  matrix.size = n;
  matrix.values.assign(n * n, 0.0);
  // Parallelize over rows; each row computes its upper-triangle segment.
  pool.parallel_for(0, n, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = kernel_distance(features[i], features[j]);
      matrix.values[i * n + j] = d;
      matrix.values[j * n + i] = d;
    }
  });
  return matrix;
}

std::vector<double> distances_to_reference(
    const GraphKernel& kernel, const LabeledGraph& reference,
    const std::vector<LabeledGraph>& graphs, ThreadPool& pool) {
  const FeatureVector reference_features = kernel.features(reference);
  std::vector<double> distances(graphs.size());
  pool.parallel_for(0, graphs.size(), [&](std::size_t i) {
    distances[i] =
        kernel_distance(reference_features, kernel.features(graphs[i]));
  });
  return distances;
}

}  // namespace anacin::kernels

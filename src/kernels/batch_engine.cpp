#include "kernels/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace anacin::kernels {

namespace {

constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;

/// Open-addressing map from feature id to dense vocabulary slot. Slots
/// are assigned in first-encounter order — the sweep only needs a
/// *stable address* per id, not a sorted vocabulary, because each pair's
/// accumulation order follows the gathering histogram's own (sorted) id
/// array. Skipping the global sort is worth ~1.5ms at 64 runs.
class VocabTable {
 public:
  /// `max_entries` bounds the number of distinct ids ever interned.
  explicit VocabTable(std::size_t max_entries) {
    std::size_t capacity = 16;
    while (capacity < max_entries * 2) capacity <<= 1;
    mask_ = capacity - 1;
    keys_.resize(capacity);
    slots_.assign(capacity, kEmptySlot);
  }

  std::uint32_t intern(std::uint64_t id) {
    // mix64, not the raw id: vertex-histogram ids are raw labels, which
    // may be small sequential integers that would cluster linear probes.
    std::size_t p = mix64(id) & mask_;
    for (;;) {
      if (slots_[p] == kEmptySlot) {
        keys_[p] = id;
        slots_[p] = size_;
        return size_++;
      }
      if (keys_[p] == id) return slots_[p];
      p = (p + 1) & mask_;
    }
  }

  std::uint32_t find(std::uint64_t id) const {
    std::size_t p = mix64(id) & mask_;
    for (;;) {
      if (slots_[p] == kEmptySlot) return kEmptySlot;
      if (keys_[p] == id) return slots_[p];
      p = (p + 1) & mask_;
    }
  }

  std::uint32_t size() const { return size_; }

 private:
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  std::uint32_t size_ = 0;
};

/// Per-thread dense scatter buffer for the tile sweep (vocab_size *
/// kTileRows doubles). Grown on demand and returned to all-zeros at the
/// end of every tile, so reuse across calls needs no re-clearing.
std::vector<double>& dense_workspace() {
  static thread_local std::vector<double> dense;
  return dense;
}

}  // namespace

std::vector<FeatureVector> batch_features(
    const GraphKernel& kernel, const std::vector<LabeledGraph>& graphs,
    ThreadPool& pool, CancelToken* cancel) {
  ANACIN_SPAN("kernels.feature_extraction");
  static obs::Counter& feature_tasks = obs::counter("kernels.feature_tasks");
  std::vector<FeatureVector> features(graphs.size());
  pool.parallel_for(
      0, graphs.size(),
      [&](std::size_t i) {
        ANACIN_SPAN("kernels.feature_task");
        features[i] = kernel.features(graphs[i]);
        feature_tasks.add(1);
      },
      1, cancel);
  return features;
}

DistanceMatrix batch_pairwise_distances(
    const std::vector<FeatureVector>& features, ThreadPool& pool) {
  ANACIN_SPAN("kernels.distance_matrix");
  const std::size_t n = features.size();
  static obs::Counter& rows_counter = obs::counter("kernels.distance_rows");
  static obs::Counter& distances = obs::counter("kernels.distances_computed");
  static obs::Counter& tiles_counter = obs::counter("kernels.distance_tiles");

  DistanceMatrix matrix;
  matrix.size = n;
  matrix.values.assign(n * n, 0.0);
  if (n < 2) return matrix;

  // Reindex every histogram's sorted ids to dense vocabulary slots, laid
  // out as one flat CSR array so tiles read contiguous memory.
  std::size_t total_nnz = 0;
  for (const FeatureVector& f : features) total_nnz += f.size();
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> slot_of(total_nnz);
  VocabTable vocab(std::max<std::size_t>(1, total_nnz));
  {
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::uint64_t id : features[i].ids) {
        slot_of[k++] = vocab.intern(id);
      }
      offsets[i + 1] = k;
    }
  }
  const std::size_t vocab_size = vocab.size();

  const std::size_t num_tiles = (n + kTileRows - 1) / kTileRows;
  pool.parallel_for(0, num_tiles, [&](std::size_t tile) {
    const std::size_t r0 = tile * kTileRows;
    const std::size_t r1 = std::min(n, r0 + kTileRows);
    const std::size_t rows = r1 - r0;

    std::vector<double>& dense = dense_workspace();
    const std::size_t need = vocab_size * kTileRows;
    if (dense.size() < need) dense.assign(need, 0.0);

    // Scatter the tile's rows, interleaved: slot s of row r lives at
    // dense[s * kTileRows + r], so one gather of a slot's cache line
    // feeds all eight accumulators.
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = r0 + r;
      const double* counts = features[i].counts.data();
      for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        dense[static_cast<std::size_t>(slot_of[k]) * kTileRows + r] =
            counts[k - offsets[i]];
      }
    }

    for (std::size_t j = r0 + 1; j < n; ++j) {
      double acc[kTileRows] = {};
      const double* counts = features[j].counts.data();
      const std::uint32_t* slots = slot_of.data() + offsets[j];
      const std::size_t nnz = offsets[j + 1] - offsets[j];
      for (std::size_t k = 0; k < nnz; ++k) {
        const double* cell =
            &dense[static_cast<std::size_t>(slots[k]) * kTileRows];
        const double c = counts[k];
        for (std::size_t r = 0; r < kTileRows; ++r) acc[r] += cell[r] * c;
      }
      const std::size_t row_limit = std::min(r1, j);
      for (std::size_t i = r0; i < row_limit; ++i) {
        const double squared = features[i].self_dot + features[j].self_dot -
                               2.0 * acc[i - r0];
        const double d = std::sqrt(std::max(0.0, squared));
        matrix.values[i * n + j] = d;
        matrix.values[j * n + i] = d;
      }
    }

    // Restore the scatter buffer to all-zeros by clearing only the
    // entries this tile touched.
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t i = r0 + r;
      for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
        dense[static_cast<std::size_t>(slot_of[k]) * kTileRows + r] = 0.0;
      }
    }

    std::size_t pairs = 0;
    for (std::size_t i = r0; i < r1; ++i) pairs += n - i - 1;
    rows_counter.add(rows);
    distances.add(pairs);
    tiles_counter.add(1);
  });
  return matrix;
}

std::vector<double> batch_distances_to_reference(
    const FeatureVector& reference,
    const std::vector<FeatureVector>& features, ThreadPool& pool) {
  static obs::Counter& distances = obs::counter("kernels.distances_computed");
  // The reference's ids are distinct and interned in order, so the slot
  // returned by find() doubles as the index into reference.counts.
  VocabTable table(std::max<std::size_t>(1, reference.size()));
  for (const std::uint64_t id : reference.ids) table.intern(id);

  std::vector<double> result(features.size());
  pool.parallel_for(0, features.size(), [&](std::size_t j) {
    const FeatureVector& f = features[j];
    double acc = 0.0;
    for (std::size_t k = 0; k < f.size(); ++k) {
      const std::uint32_t slot = table.find(f.ids[k]);
      if (slot != kEmptySlot) acc += reference.counts[slot] * f.counts[k];
    }
    const double squared =
        reference.self_dot + f.self_dot - 2.0 * acc;
    result[j] = std::sqrt(std::max(0.0, squared));
    distances.add(1);
  });
  return result;
}

}  // namespace anacin::kernels

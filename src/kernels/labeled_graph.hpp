#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/event_graph.hpp"

namespace anacin::kernels {

/// How event-graph nodes are labelled before kernel computation.
///
/// The choice matters: with `kTypeOnly`, two matchings of a symmetric
/// message race produce *isomorphic* graphs that no kernel can tell apart.
/// Including the matched peer (`kTypePeer`, the default) breaks that
/// symmetry, so matching-order differences become visible to the
/// Weisfeiler–Lehman relabelling. The ablation bench quantifies this.
enum class LabelPolicy {
  kTypeOnly,
  kTypePeer,
  kTypePeerTag,
  kTypeCallstack,
  kTypePeerCallstack,
};

std::string_view label_policy_name(LabelPolicy policy);
LabelPolicy label_policy_from_name(std::string_view name);

/// Kernel-ready view of a (sub)graph: initial 64-bit node labels plus
/// direction-tagged adjacency.
struct LabeledGraph {
  std::vector<std::uint64_t> labels;
  /// neighbors[v] lists (u, is_out_edge) pairs; both directions present.
  std::vector<std::vector<std::pair<std::uint32_t, bool>>> neighbors;

  std::size_t num_nodes() const { return labels.size(); }
};

/// Label the whole event graph.
LabeledGraph build_labeled_graph(const graph::EventGraph& graph,
                                 LabelPolicy policy);

/// Label the subgraph induced by `nodes` (edges with both ends inside).
/// `nodes` must be sorted ascending.
LabeledGraph build_labeled_subgraph(const graph::EventGraph& graph,
                                    std::span<const graph::NodeId> nodes,
                                    LabelPolicy policy);

/// The initial label of one node under a policy (exposed for tests).
std::uint64_t initial_label(const graph::EventGraph& graph,
                            graph::NodeId node, LabelPolicy policy);

}  // namespace anacin::kernels

#include "kernels/kernel.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace anacin::kernels {

namespace {

/// Reusable per-thread scratch for feature extraction. Profiling showed
/// roughly half the cost of one WL extraction was allocating these
/// buffers afresh per call; the campaign extracts features for hundreds
/// of graphs per measurement, so the scratch lives across calls. One
/// workspace per thread: extractions run inside ThreadPool workers.
struct ExtractionWorkspace {
  /// One entry per feature occurrence, consumed by histogram_from_raw.
  std::vector<std::uint64_t> raw;
  /// WL label front for the current / next iteration.
  std::vector<std::uint64_t> current;
  std::vector<std::uint64_t> next;
  /// Neighborhood hashes of the node being relabelled.
  std::vector<std::uint64_t> neighborhood;
  /// Flattened (CSR) adjacency of the graph being processed: node v's
  /// incident half-edges are flat_peer/flat_salt[offsets[v]..offsets[v+1]).
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> flat_peer;
  std::vector<std::uint64_t> flat_salt;
};

ExtractionWorkspace& workspace() {
  static thread_local ExtractionWorkspace scratch;
  return scratch;
}

/// Flatten the pointer-chasing vector-of-vectors adjacency into the
/// workspace's CSR arrays, pre-hashing each half-edge's direction salt.
void flatten_adjacency(const LabeledGraph& graph, ExtractionWorkspace& ws) {
  const std::size_t n = graph.num_nodes();
  ws.offsets.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    total += graph.neighbors[v].size();
    ws.offsets[v + 1] = total;
  }
  ws.flat_peer.resize(total);
  ws.flat_salt.resize(total);
  std::size_t k = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& [w, is_out] : graph.neighbors[v]) {
      ws.flat_peer[k] = w;
      ws.flat_salt[k] = is_out ? 0x0Du : 0x1Du;
      ++k;
    }
  }
}

/// Sort a small neighborhood: insertion sort below the threshold where
/// introsort's overhead dominates (event-graph nodes have degree ~3).
void sort_neighborhood(std::vector<std::uint64_t>& values) {
  if (values.size() <= 24) {
    for (std::size_t a = 1; a < values.size(); ++a) {
      const std::uint64_t key = values[a];
      std::size_t b = a;
      while (b > 0 && values[b - 1] > key) {
        values[b] = values[b - 1];
        --b;
      }
      values[b] = key;
    }
  } else {
    std::sort(values.begin(), values.end());
  }
}

}  // namespace

double kernel_distance(const FeatureVector& a, const FeatureVector& b) {
  const double squared = a.self_dot + b.self_dot - 2.0 * dot(a, b);
  return std::sqrt(std::max(0.0, squared));
}

double normalized_kernel(const FeatureVector& a, const FeatureVector& b) {
  if (a.self_dot == 0.0 || b.self_dot == 0.0) {
    return (a.self_dot == 0.0 && b.self_dot == 0.0) ? 1.0 : 0.0;
  }
  return dot(a, b) / std::sqrt(a.self_dot * b.self_dot);
}

FeatureVector VertexHistogramKernel::features(const LabeledGraph& graph) const {
  ExtractionWorkspace& ws = workspace();
  ws.raw = graph.labels;
  return histogram_from_raw(ws.raw);
}

FeatureVector EdgeHistogramKernel::features(const LabeledGraph& graph) const {
  ExtractionWorkspace& ws = workspace();
  ws.raw.clear();
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [w, is_out] : graph.neighbors[v]) {
      if (!is_out) continue;  // count each directed edge once, at its source
      ws.raw.push_back(hash_combine(graph.labels[v], graph.labels[w]));
    }
  }
  return histogram_from_raw(ws.raw);
}

WLSubtreeKernel::WLSubtreeKernel(unsigned depth) : depth_(depth) {
  ANACIN_CHECK(depth <= 16, "WL depth " << depth << " is unreasonably large");
}

std::string WLSubtreeKernel::name() const {
  return "wl_subtree_h" + std::to_string(depth_);
}

FeatureVector WLSubtreeKernel::features(const LabeledGraph& graph) const {
  ANACIN_SPAN("kernels.wl_features");
  const std::size_t n = graph.num_nodes();
  static obs::Counter& extractions =
      obs::counter("kernels.wl.feature_extractions");
  static obs::Counter& relabels = obs::counter("kernels.wl.node_relabels");
  extractions.add(1);
  relabels.add(static_cast<std::uint64_t>(n) * depth_);

  ExtractionWorkspace& ws = workspace();
  ws.raw.clear();
  ws.raw.reserve(n * (depth_ + 1));
  ws.current = graph.labels;
  // Depth 0: the initial labels themselves, salted by iteration index so
  // labels from different depths never collide.
  for (const std::uint64_t label : ws.current) {
    ws.raw.push_back(hash_combine(0, label));
  }

  if (depth_ > 0) {
    flatten_adjacency(graph, ws);
    ws.next.resize(n);
    for (unsigned iteration = 1; iteration <= depth_; ++iteration) {
      for (std::size_t v = 0; v < n; ++v) {
        const std::size_t begin = ws.offsets[v];
        const std::size_t degree = ws.offsets[v + 1] - begin;
        ws.neighborhood.resize(degree);
        for (std::size_t k = 0; k < degree; ++k) {
          // Direction-aware WL: an in-neighbor and an out-neighbor with
          // the same label contribute differently.
          ws.neighborhood[k] = hash_combine(
              ws.flat_salt[begin + k], ws.current[ws.flat_peer[begin + k]]);
        }
        sort_neighborhood(ws.neighborhood);
        std::uint64_t relabel = hash_combine(0x57AB1Eull, ws.current[v]);
        for (const std::uint64_t h : ws.neighborhood) {
          relabel = hash_combine(relabel, h);
        }
        ws.next[v] = relabel;
        ws.raw.push_back(hash_combine(iteration, relabel));
      }
      std::swap(ws.current, ws.next);
    }
  }
  return histogram_from_raw(ws.raw);
}

GraphletSamplingKernel::GraphletSamplingKernel(
    std::size_t max_samples_per_node, std::uint64_t seed)
    : max_samples_per_node_(max_samples_per_node), seed_(seed) {
  ANACIN_CHECK(max_samples_per_node >= 1, "need at least one sample");
}

FeatureVector GraphletSamplingKernel::features(
    const LabeledGraph& graph) const {
  ExtractionWorkspace& ws = workspace();
  ws.raw.clear();
  const std::size_t n = graph.num_nodes();
  // Deterministic sampling: the RNG depends only on the kernel seed, so
  // identical graphs always produce identical features (a requirement for
  // kernel distance 0 between equal runs).
  Rng rng(seed_);
  for (std::size_t center = 0; center < n; ++center) {
    const auto& adjacency = graph.neighbors[center];
    if (adjacency.size() < 2) continue;
    const std::size_t samples =
        std::min(max_samples_per_node_,
                 adjacency.size() * (adjacency.size() - 1) / 2);
    for (std::size_t s = 0; s < samples; ++s) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(adjacency.size()) - 1));
      auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(adjacency.size()) - 2));
      if (j >= i) ++j;
      const auto& [u, u_out] = adjacency[i];
      const auto& [w, w_out] = adjacency[j];
      // Canonical form: order the two wings by (label, direction) hash so
      // the graphlet id is independent of the sampling order.
      const std::uint64_t wing_u =
          hash_combine(u_out ? 0x0Du : 0x1Du, graph.labels[u]);
      const std::uint64_t wing_w =
          hash_combine(w_out ? 0x0Du : 0x1Du, graph.labels[w]);
      ws.raw.push_back(hash_combine(
          graph.labels[center],
          hash_combine(std::min(wing_u, wing_w), std::max(wing_u, wing_w))));
    }
  }
  return histogram_from_raw(ws.raw);
}

std::unique_ptr<GraphKernel> make_kernel(const std::string& spec) {
  if (spec == "graphlet_sampling") {
    return std::make_unique<GraphletSamplingKernel>();
  }
  if (spec == "vertex_histogram") {
    return std::make_unique<VertexHistogramKernel>();
  }
  if (spec == "edge_histogram") {
    return std::make_unique<EdgeHistogramKernel>();
  }
  if (spec == "wl") return std::make_unique<WLSubtreeKernel>();
  if (spec.rfind("wl:", 0) == 0) {
    // from_chars, not strtol: an empty or whitespace depth ("wl:", "wl: 2")
    // must be an error, not a silent depth-0 kernel.
    const std::string depth_text = spec.substr(3);
    const char* const last = depth_text.data() + depth_text.size();
    int depth = -1;
    const auto [ptr, ec] = std::from_chars(depth_text.data(), last, depth);
    if (depth_text.empty() || ec != std::errc{} || ptr != last ||
        depth < 0 || depth > 16) {
      throw ConfigError("invalid WL depth in kernel spec '" + spec + "'");
    }
    return std::make_unique<WLSubtreeKernel>(static_cast<unsigned>(depth));
  }
  throw ConfigError("unknown kernel spec '" + spec +
                    "' (try wl, wl:<h>, vertex_histogram, edge_histogram, "
                    "graphlet_sampling)");
}

}  // namespace anacin::kernels

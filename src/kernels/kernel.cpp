#include "kernels/kernel.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace anacin::kernels {

namespace {

FeatureVector to_feature_vector(const std::map<std::uint64_t, double>& counts) {
  FeatureVector features;
  features.entries.assign(counts.begin(), counts.end());
  for (const auto& [id, count] : features.entries) {
    features.self_dot += count * count;
  }
  return features;
}

}  // namespace

double dot(const FeatureVector& a, const FeatureVector& b) {
  double sum = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    const auto [ida, ca] = a.entries[i];
    const auto [idb, cb] = b.entries[j];
    if (ida == idb) {
      sum += ca * cb;
      ++i;
      ++j;
    } else if (ida < idb) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double kernel_distance(const FeatureVector& a, const FeatureVector& b) {
  const double squared = a.self_dot + b.self_dot - 2.0 * dot(a, b);
  return std::sqrt(std::max(0.0, squared));
}

double normalized_kernel(const FeatureVector& a, const FeatureVector& b) {
  if (a.self_dot == 0.0 || b.self_dot == 0.0) {
    return (a.self_dot == 0.0 && b.self_dot == 0.0) ? 1.0 : 0.0;
  }
  return dot(a, b) / std::sqrt(a.self_dot * b.self_dot);
}

FeatureVector VertexHistogramKernel::features(const LabeledGraph& graph) const {
  std::map<std::uint64_t, double> counts;
  for (const std::uint64_t label : graph.labels) counts[label] += 1.0;
  return to_feature_vector(counts);
}

FeatureVector EdgeHistogramKernel::features(const LabeledGraph& graph) const {
  std::map<std::uint64_t, double> counts;
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [w, is_out] : graph.neighbors[v]) {
      if (!is_out) continue;  // count each directed edge once, at its source
      const std::uint64_t id =
          hash_combine(graph.labels[v], graph.labels[w]);
      counts[id] += 1.0;
    }
  }
  return to_feature_vector(counts);
}

WLSubtreeKernel::WLSubtreeKernel(unsigned depth) : depth_(depth) {
  ANACIN_CHECK(depth <= 16, "WL depth " << depth << " is unreasonably large");
}

std::string WLSubtreeKernel::name() const {
  return "wl_subtree_h" + std::to_string(depth_);
}

FeatureVector WLSubtreeKernel::features(const LabeledGraph& graph) const {
  ANACIN_SPAN("kernels.wl_features");
  std::map<std::uint64_t, double> counts;
  const std::size_t n = graph.num_nodes();
  static obs::Counter& extractions =
      obs::counter("kernels.wl.feature_extractions");
  static obs::Counter& relabels = obs::counter("kernels.wl.node_relabels");
  extractions.add(1);
  relabels.add(static_cast<std::uint64_t>(n) * depth_);

  std::vector<std::uint64_t> current = graph.labels;
  // Depth 0: the initial labels themselves, salted by iteration index so
  // labels from different depths never collide.
  for (const std::uint64_t label : current) {
    counts[hash_combine(0, label)] += 1.0;
  }

  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> neighborhood;
  for (unsigned iteration = 1; iteration <= depth_; ++iteration) {
    for (std::size_t v = 0; v < n; ++v) {
      neighborhood.clear();
      neighborhood.reserve(graph.neighbors[v].size());
      for (const auto& [w, is_out] : graph.neighbors[v]) {
        // Direction-aware WL: an in-neighbor and an out-neighbor with the
        // same label contribute differently.
        neighborhood.push_back(
            hash_combine(is_out ? 0x0Du : 0x1Du, current[w]));
      }
      std::sort(neighborhood.begin(), neighborhood.end());
      std::uint64_t relabel = hash_combine(0x57AB1Eull, current[v]);
      for (const std::uint64_t h : neighborhood) {
        relabel = hash_combine(relabel, h);
      }
      next[v] = relabel;
      counts[hash_combine(iteration, relabel)] += 1.0;
    }
    std::swap(current, next);
  }
  return to_feature_vector(counts);
}

GraphletSamplingKernel::GraphletSamplingKernel(
    std::size_t max_samples_per_node, std::uint64_t seed)
    : max_samples_per_node_(max_samples_per_node), seed_(seed) {
  ANACIN_CHECK(max_samples_per_node >= 1, "need at least one sample");
}

FeatureVector GraphletSamplingKernel::features(
    const LabeledGraph& graph) const {
  std::map<std::uint64_t, double> counts;
  const std::size_t n = graph.num_nodes();
  // Deterministic sampling: the RNG depends only on the kernel seed, so
  // identical graphs always produce identical features (a requirement for
  // kernel distance 0 between equal runs).
  Rng rng(seed_);
  for (std::size_t center = 0; center < n; ++center) {
    const auto& adjacency = graph.neighbors[center];
    if (adjacency.size() < 2) continue;
    const std::size_t samples =
        std::min(max_samples_per_node_,
                 adjacency.size() * (adjacency.size() - 1) / 2);
    for (std::size_t s = 0; s < samples; ++s) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(adjacency.size()) - 1));
      auto j = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(adjacency.size()) - 2));
      if (j >= i) ++j;
      const auto& [u, u_out] = adjacency[i];
      const auto& [w, w_out] = adjacency[j];
      // Canonical form: order the two wings by (label, direction) hash so
      // the graphlet id is independent of the sampling order.
      const std::uint64_t wing_u =
          hash_combine(u_out ? 0x0Du : 0x1Du, graph.labels[u]);
      const std::uint64_t wing_w =
          hash_combine(w_out ? 0x0Du : 0x1Du, graph.labels[w]);
      const std::uint64_t id = hash_combine(
          graph.labels[center],
          hash_combine(std::min(wing_u, wing_w), std::max(wing_u, wing_w)));
      counts[id] += 1.0;
    }
  }
  return to_feature_vector(counts);
}

std::unique_ptr<GraphKernel> make_kernel(const std::string& spec) {
  if (spec == "graphlet_sampling") {
    return std::make_unique<GraphletSamplingKernel>();
  }
  if (spec == "vertex_histogram") {
    return std::make_unique<VertexHistogramKernel>();
  }
  if (spec == "edge_histogram") {
    return std::make_unique<EdgeHistogramKernel>();
  }
  if (spec == "wl") return std::make_unique<WLSubtreeKernel>();
  if (spec.rfind("wl:", 0) == 0) {
    // from_chars, not strtol: an empty or whitespace depth ("wl:", "wl: 2")
    // must be an error, not a silent depth-0 kernel.
    const std::string depth_text = spec.substr(3);
    const char* const last = depth_text.data() + depth_text.size();
    int depth = -1;
    const auto [ptr, ec] = std::from_chars(depth_text.data(), last, depth);
    if (depth_text.empty() || ec != std::errc{} || ptr != last ||
        depth < 0 || depth > 16) {
      throw ConfigError("invalid WL depth in kernel spec '" + spec + "'");
    }
    return std::make_unique<WLSubtreeKernel>(static_cast<unsigned>(depth));
  }
  throw ConfigError("unknown kernel spec '" + spec +
                    "' (try wl, wl:<h>, vertex_histogram, edge_histogram, "
                    "graphlet_sampling)");
}

}  // namespace anacin::kernels

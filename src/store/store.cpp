#include "store/store.hpp"

#include <atomic>
#include <utility>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace anacin::store {

namespace {

obs::Counter& corrupt_counter() {
  static obs::Counter& counter = obs::counter("store.corrupt");
  return counter;
}

std::atomic<ArtifactStore*> g_active_store{nullptr};

}  // namespace

ArtifactStore::ArtifactStore(ObjectStore::Config config)
    : objects_(std::move(config)) {}

Digest ArtifactStore::run_key(const std::string& pattern,
                              const patterns::PatternConfig& shape,
                              const sim::SimConfig& sim_config) {
  json::Value doc = json::Value::object();
  doc.set("artifact", "run");
  doc.set("codec", static_cast<std::int64_t>(kFormatVersion));
  doc.set("pattern", pattern);
  doc.set("shape", shape.to_json());
  doc.set("sim", sim_config.to_json());
  return digest_json(doc);
}

Digest ArtifactStore::distance_key(const std::string& kernel_spec,
                                   kernels::LabelPolicy policy,
                                   const Digest& a, const Digest& b) {
  const std::string hex_a = a.to_hex();
  const std::string hex_b = b.to_hex();
  json::Value doc = json::Value::object();
  doc.set("artifact", "distance");
  doc.set("codec", static_cast<std::int64_t>(kFormatVersion));
  doc.set("kernel", kernel_spec);
  doc.set("label_policy", std::string(kernels::label_policy_name(policy)));
  doc.set("run_lo", hex_a <= hex_b ? hex_a : hex_b);
  doc.set("run_hi", hex_a <= hex_b ? hex_b : hex_a);
  return digest_json(doc);
}

Digest ArtifactStore::features_key(const std::string& kernel_spec,
                                   kernels::LabelPolicy policy,
                                   const Digest& run) {
  json::Value doc = json::Value::object();
  doc.set("artifact", "features");
  doc.set("codec", static_cast<std::int64_t>(kFormatVersion));
  doc.set("kernel", kernel_spec);
  doc.set("label_policy", std::string(kernels::label_policy_name(policy)));
  doc.set("run", run.to_hex());
  return digest_json(doc);
}

Digest ArtifactStore::schedule_key(const std::string& pattern,
                                   const patterns::PatternConfig& shape,
                                   const sim::SimConfig& sim_config) {
  json::Value doc = json::Value::object();
  doc.set("artifact", "schedule");
  doc.set("codec", static_cast<std::int64_t>(kFormatVersion));
  doc.set("pattern", pattern);
  doc.set("shape", shape.to_json());
  doc.set("sim", sim_config.to_json());
  return digest_json(doc);
}

Digest ArtifactStore::replay_run_key(const std::string& pattern,
                                     const patterns::PatternConfig& shape,
                                     const sim::SimConfig& sim_config,
                                     const Digest& schedule,
                                     const std::vector<std::size_t>& freed) {
  json::Value doc = json::Value::object();
  doc.set("artifact", "replay_run");
  doc.set("codec", static_cast<std::int64_t>(kFormatVersion));
  doc.set("pattern", pattern);
  doc.set("shape", shape.to_json());
  doc.set("sim", sim_config.to_json());
  doc.set("schedule", schedule.to_hex());
  json::Value freed_array = json::Value::array();
  for (const std::size_t index : freed) {
    freed_array.push_back(static_cast<std::int64_t>(index));
  }
  doc.set("freed", std::move(freed_array));
  return digest_json(doc);
}

std::optional<EncodedRun> ArtifactStore::load_run(const Digest& key) {
  const ObjectBytes bytes = objects_.get(key);
  if (!bytes) return std::nullopt;
  try {
    return decode_run(*bytes);
  } catch (const Error&) {
    corrupt_counter().add(1);
    objects_.remove(key);
    return std::nullopt;
  }
}

void ArtifactStore::publish(const Digest& key, Kind kind,
                            const std::vector<std::uint8_t>& bytes,
                            const char* what) {
  if (degraded_.load(std::memory_order_acquire)) return;
  try {
    objects_.put(key, kind, bytes);
  } catch (const IoError& fault) {
    if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
      obs::counter("store.degraded").add(1);
      ANACIN_LOG_WARN("artifact store degraded ("
                      << what << " " << key.to_hex()
                      << "): " << fault.what()
                      << " — continuing without artifact caching "
                         "(--no-store semantics); reads still served");
    }
  }
}

void ArtifactStore::save_run(const Digest& key, const EncodedRun& run) {
  publish(key, Kind::kRun, encode_run(run), "run");
}

std::optional<double> ArtifactStore::load_distance(const Digest& key) {
  const ObjectBytes bytes = objects_.get(key);
  if (!bytes) return std::nullopt;
  try {
    const std::vector<double> values = decode_distances(*bytes);
    if (values.size() != 1) {
      throw ParseError("distance artifact holds " +
                       std::to_string(values.size()) + " values, expected 1");
    }
    return values.front();
  } catch (const Error&) {
    corrupt_counter().add(1);
    objects_.remove(key);
    return std::nullopt;
  }
}

void ArtifactStore::save_distance(const Digest& key, double value) {
  publish(key, Kind::kDistances, encode_distances({value}), "distance");
}

std::optional<kernels::SparseHistogram> ArtifactStore::load_features(
    const Digest& key) {
  const ObjectBytes bytes = objects_.get(key);
  if (!bytes) return std::nullopt;
  try {
    return decode_features(*bytes);
  } catch (const Error&) {
    corrupt_counter().add(1);
    objects_.remove(key);
    return std::nullopt;
  }
}

void ArtifactStore::save_features(const Digest& key,
                                  const kernels::SparseHistogram& features) {
  publish(key, Kind::kFeatures, encode_features(features), "features");
}

std::optional<sim::ReplaySchedule> ArtifactStore::load_schedule(
    const Digest& key) {
  const ObjectBytes bytes = objects_.get(key);
  if (!bytes) return std::nullopt;
  try {
    return decode_schedule(*bytes);
  } catch (const Error&) {
    corrupt_counter().add(1);
    objects_.remove(key);
    return std::nullopt;
  }
}

void ArtifactStore::save_schedule(const Digest& key,
                                  const sim::ReplaySchedule& schedule) {
  publish(key, Kind::kSchedule, encode_schedule(schedule), "schedule");
}

ArtifactStore* active_store() {
  return g_active_store.load(std::memory_order_acquire);
}

void set_active_store(ArtifactStore* store) {
  g_active_store.store(store, std::memory_order_release);
}

}  // namespace anacin::store

#include "store/codec.hpp"

#include <bit>
#include <cstring>

#include "store/hash.hpp"
#include "support/error.hpp"

namespace anacin::store {

namespace {

constexpr char kMagic[4] = {'A', 'N', 'C', 'S'};

/// Append-only little-endian writer for artifact payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }
  void u16(std::uint16_t value) { integer(value, 2); }
  void u32(std::uint32_t value) { integer(value, 4); }
  void u64(std::uint64_t value) { integer(value, 8); }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void string(std::string_view text) {
    u64(text.size());
    bytes_.insert(bytes_.end(), text.begin(), text.end());
  }

  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  void integer(std::uint64_t value, int width) {
    for (int i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader; every overrun throws ParseError
/// mentioning truncation so corrupt / cut-short files fail loudly.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(integer(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(integer(4)); }
  std::uint64_t u64() { return integer(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string string() {
    const std::uint64_t size = u64();
    const auto data = take(size);
    return std::string(reinterpret_cast<const char*>(data.data()),
                       data.size());
  }
  /// Container count, sanity-bounded (every element is at least one byte)
  /// so a corrupt length cannot trigger a giant allocation before the
  /// out-of-bounds read would be noticed.
  std::uint64_t count() {
    const std::uint64_t n = u64();
    if (n > remaining()) {
      throw ParseError("truncated artifact: container count exceeds payload");
    }
    return n;
  }

  std::uint64_t remaining() const { return bytes_.size() - pos_; }
  bool at_end() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> take(std::uint64_t size) {
    if (size > bytes_.size() - pos_) {
      throw ParseError("truncated artifact: payload ends mid-field");
    }
    const auto view = bytes_.subspan(pos_, size);
    pos_ += size;
    return view;
  }

  std::uint64_t integer(int width) {
    const auto data = take(static_cast<std::uint64_t>(width));
    std::uint64_t value = 0;
    for (int i = width - 1; i >= 0; --i) {
      value = (value << 8) | data[static_cast<std::size_t>(i)];
    }
    return value;
  }

  std::span<const std::uint8_t> bytes_;
  std::uint64_t pos_ = 0;
};

std::vector<std::uint8_t> seal(Kind kind, std::vector<std::uint8_t> payload) {
  Fnv1a checksum;
  checksum.update(payload.data(), payload.size());

  ByteWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u16(kFormatVersion);
  header.u16(static_cast<std::uint16_t>(kind));
  header.u64(payload.size());
  header.u64(checksum.value());

  std::vector<std::uint8_t> blob = std::move(header).take();
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

/// Validate the envelope and return the payload span, additionally
/// requiring the artifact kind to match what the caller decodes.
std::span<const std::uint8_t> open(std::span<const std::uint8_t> bytes,
                                   Kind expected) {
  const Envelope envelope = validate_envelope(bytes);
  if (envelope.kind != expected) {
    throw ParseError(std::string("artifact kind mismatch: expected ") +
                     std::string(kind_name(expected)) + ", found " +
                     std::string(kind_name(envelope.kind)));
  }
  return bytes.subspan(kEnvelopeSize);
}

void write_event_node(ByteWriter& writer, const graph::EventNode& node) {
  writer.u8(static_cast<std::uint8_t>(node.type));
  writer.i32(node.rank);
  writer.i64(node.seq);
  writer.i32(node.peer);
  writer.i32(node.tag);
  writer.u32(node.size_bytes);
  writer.f64(node.t_start);
  writer.f64(node.t_end);
  writer.u32(node.callstack_id);
  writer.i32(node.posted_source);
  writer.u8(node.jittered ? 1 : 0);
  writer.u64(node.lamport);
}

graph::EventNode read_event_node(ByteReader& reader) {
  graph::EventNode node;
  const std::uint8_t raw_type = reader.u8();
  if (raw_type > static_cast<std::uint8_t>(trace::EventType::kFault)) {
    throw ParseError("event graph artifact: unknown event type " +
                     std::to_string(raw_type));
  }
  node.type = static_cast<trace::EventType>(raw_type);
  node.rank = reader.i32();
  node.seq = reader.i64();
  node.peer = reader.i32();
  node.tag = reader.i32();
  node.size_bytes = reader.u32();
  node.t_start = reader.f64();
  node.t_end = reader.f64();
  node.callstack_id = reader.u32();
  node.posted_source = reader.i32();
  node.jittered = reader.u8() != 0;
  node.lamport = reader.u64();
  return node;
}

void write_event_graph_payload(ByteWriter& writer,
                               const graph::EventGraph& graph) {
  writer.i32(graph.num_ranks());
  for (int r = 0; r < graph.num_ranks(); ++r) {
    writer.u64(graph.rank_size(r));
  }
  writer.u64(graph.num_nodes());
  for (const graph::EventNode& node : graph.nodes()) {
    write_event_node(writer, node);
  }
  writer.u64(graph.message_edges().size());
  for (const auto& [send_node, recv_node] : graph.message_edges()) {
    writer.u32(send_node);
    writer.u32(recv_node);
  }
  writer.u64(graph.callstacks().paths().size());
  for (const std::string& path : graph.callstacks().paths()) {
    writer.string(path);
  }
}

graph::EventGraph read_event_graph_payload(ByteReader& reader) {
  const std::int32_t num_ranks = reader.i32();
  if (num_ranks < 1) throw ParseError("event graph artifact: no ranks");
  std::vector<std::size_t> rank_offsets(
      static_cast<std::size_t>(num_ranks) + 1, 0);
  for (std::int32_t r = 0; r < num_ranks; ++r) {
    rank_offsets[static_cast<std::size_t>(r) + 1] =
        rank_offsets[static_cast<std::size_t>(r)] + reader.u64();
  }
  const std::uint64_t num_nodes = reader.count();
  std::vector<graph::EventNode> nodes;
  nodes.reserve(num_nodes);
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    nodes.push_back(read_event_node(reader));
  }
  const std::uint64_t num_edges = reader.count();
  std::vector<std::pair<graph::NodeId, graph::NodeId>> message_edges;
  message_edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    const graph::NodeId send_node = reader.u32();
    const graph::NodeId recv_node = reader.u32();
    message_edges.emplace_back(send_node, recv_node);
  }
  const std::uint64_t num_callstacks = reader.count();
  trace::CallstackRegistry callstacks;
  for (std::uint64_t i = 0; i < num_callstacks; ++i) {
    const std::uint32_t id = callstacks.intern(reader.string());
    if (id != i) {
      throw ParseError("event graph artifact: duplicate callstack path");
    }
  }
  return graph::EventGraph::from_parts(std::move(nodes),
                                       std::move(rank_offsets),
                                       std::move(message_edges),
                                       std::move(callstacks));
}

}  // namespace

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kTrace: return "trace";
    case Kind::kEventGraph: return "event_graph";
    case Kind::kDistances: return "distances";
    case Kind::kDistanceMatrix: return "distance_matrix";
    case Kind::kRun: return "run";
    case Kind::kFeatures: return "features";
    case Kind::kSchedule: return "schedule";
  }
  return "unknown";
}

Envelope validate_envelope(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEnvelopeSize) {
    throw ParseError("truncated artifact: shorter than the envelope");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (bytes[i] != static_cast<std::uint8_t>(kMagic[i])) {
      throw ParseError("not an anacin artifact (bad magic)");
    }
  }
  Envelope envelope;
  envelope.version =
      static_cast<std::uint16_t>(bytes[4] | (bytes[5] << 8));
  if (envelope.version > kFormatVersion) {
    throw ParseError("artifact uses format version " +
                     std::to_string(envelope.version) +
                     " but this build supports up to " +
                     std::to_string(kFormatVersion) +
                     " — produced by a newer anacin");
  }
  const std::uint16_t raw_kind =
      static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
  if (raw_kind < 1 || raw_kind > 7) {
    throw ParseError("artifact has unknown kind " + std::to_string(raw_kind));
  }
  envelope.kind = static_cast<Kind>(raw_kind);
  std::uint64_t payload_size = 0;
  std::uint64_t stored_checksum = 0;
  for (int i = 7; i >= 0; --i) {
    payload_size = (payload_size << 8) | bytes[8 + static_cast<std::size_t>(i)];
    stored_checksum =
        (stored_checksum << 8) | bytes[16 + static_cast<std::size_t>(i)];
  }
  envelope.payload_size = payload_size;
  if (bytes.size() - kEnvelopeSize != payload_size) {
    throw ParseError("truncated artifact: envelope promises " +
                     std::to_string(payload_size) + " payload bytes, found " +
                     std::to_string(bytes.size() - kEnvelopeSize));
  }
  Fnv1a checksum;
  checksum.update(bytes.data() + kEnvelopeSize, payload_size);
  if (checksum.value() != stored_checksum) {
    throw ParseError("artifact payload checksum mismatch (corrupt object)");
  }
  return envelope;
}

std::vector<std::uint8_t> encode_trace(const trace::Trace& trace) {
  ByteWriter writer;
  writer.i32(trace.num_ranks());
  writer.i32(trace.num_nodes());
  writer.u64(trace.callstacks().paths().size());
  for (const std::string& path : trace.callstacks().paths()) {
    writer.string(path);
  }
  for (int r = 0; r < trace.num_ranks(); ++r) {
    const auto& events = trace.rank_events(r);
    writer.u64(events.size());
    for (const trace::Event& e : events) {
      writer.u8(static_cast<std::uint8_t>(e.type));
      writer.i32(e.rank);
      writer.i32(e.peer);
      writer.i32(e.tag);
      writer.u32(e.size_bytes);
      writer.f64(e.t_start);
      writer.f64(e.t_end);
      writer.i32(e.matched_rank);
      writer.i64(e.matched_seq);
      writer.i32(e.posted_source);
      writer.i32(e.posted_tag);
      writer.u32(e.callstack_id);
      writer.u8(e.jittered ? 1 : 0);
      writer.i64(e.match_order);
    }
  }
  return seal(Kind::kTrace, std::move(writer).take());
}

trace::Trace decode_trace(std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kTrace));
  const std::int32_t num_ranks = reader.i32();
  const std::int32_t num_nodes = reader.i32();
  trace::Trace trace(num_ranks, num_nodes);
  const std::uint64_t num_callstacks = reader.count();
  for (std::uint64_t i = 0; i < num_callstacks; ++i) {
    const std::uint32_t id = trace.callstacks().intern(reader.string());
    if (id != i) throw ParseError("trace artifact: duplicate callstack path");
  }
  for (std::int32_t r = 0; r < num_ranks; ++r) {
    const std::uint64_t num_events = reader.count();
    for (std::uint64_t i = 0; i < num_events; ++i) {
      trace::Event e;
      e.type = static_cast<trace::EventType>(reader.u8());
      e.rank = reader.i32();
      e.peer = reader.i32();
      e.tag = reader.i32();
      e.size_bytes = reader.u32();
      e.t_start = reader.f64();
      e.t_end = reader.f64();
      e.matched_rank = reader.i32();
      e.matched_seq = reader.i64();
      e.posted_source = reader.i32();
      e.posted_tag = reader.i32();
      e.callstack_id = reader.u32();
      e.jittered = reader.u8() != 0;
      e.match_order = reader.i64();
      if (e.rank != r) {
        throw ParseError("trace artifact: event rank out of place");
      }
      trace.append(e);
    }
  }
  if (!reader.at_end()) {
    throw ParseError("trace artifact: trailing bytes after payload");
  }
  return trace;
}

std::vector<std::uint8_t> encode_event_graph(const graph::EventGraph& graph) {
  ByteWriter writer;
  write_event_graph_payload(writer, graph);
  return seal(Kind::kEventGraph, std::move(writer).take());
}

graph::EventGraph decode_event_graph(std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kEventGraph));
  graph::EventGraph graph = read_event_graph_payload(reader);
  if (!reader.at_end()) {
    throw ParseError("event graph artifact: trailing bytes after payload");
  }
  return graph;
}

std::vector<std::uint8_t> encode_distances(const std::vector<double>& values) {
  ByteWriter writer;
  writer.u64(values.size());
  for (const double value : values) writer.f64(value);
  return seal(Kind::kDistances, std::move(writer).take());
}

std::vector<double> decode_distances(std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kDistances));
  const std::uint64_t size = reader.count();
  std::vector<double> values;
  values.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) values.push_back(reader.f64());
  if (!reader.at_end()) {
    throw ParseError("distances artifact: trailing bytes after payload");
  }
  return values;
}

std::vector<std::uint8_t> encode_distance_matrix(
    const kernels::DistanceMatrix& matrix) {
  ByteWriter writer;
  writer.u64(matrix.size);
  for (const double value : matrix.values) writer.f64(value);
  return seal(Kind::kDistanceMatrix, std::move(writer).take());
}

kernels::DistanceMatrix decode_distance_matrix(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kDistanceMatrix));
  kernels::DistanceMatrix matrix;
  matrix.size = reader.u64();
  if (matrix.size > 1u << 20 ||
      matrix.size * matrix.size > reader.remaining() / 8) {
    throw ParseError("truncated artifact: distance matrix size exceeds payload");
  }
  const std::uint64_t expected = matrix.size * matrix.size;
  matrix.values.reserve(expected);
  for (std::uint64_t i = 0; i < expected; ++i) {
    matrix.values.push_back(reader.f64());
  }
  if (!reader.at_end()) {
    throw ParseError("distance matrix artifact: trailing bytes after payload");
  }
  return matrix;
}

std::vector<std::uint8_t> encode_run(const EncodedRun& run) {
  ByteWriter writer;
  writer.u64(run.messages);
  writer.u64(run.wildcard_recvs);
  writer.u64(run.drops);
  writer.u64(run.retries);
  writer.u64(run.duplicates);
  writer.u64(run.straggler_events);
  write_event_graph_payload(writer, run.graph);
  return seal(Kind::kRun, std::move(writer).take());
}

EncodedRun decode_run(std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kRun));
  EncodedRun run;
  run.messages = reader.u64();
  run.wildcard_recvs = reader.u64();
  run.drops = reader.u64();
  run.retries = reader.u64();
  run.duplicates = reader.u64();
  run.straggler_events = reader.u64();
  run.graph = read_event_graph_payload(reader);
  if (!reader.at_end()) {
    throw ParseError("run artifact: trailing bytes after payload");
  }
  return run;
}

std::vector<std::uint8_t> encode_features(
    const kernels::SparseHistogram& features) {
  ByteWriter writer;
  writer.u64(features.ids.size());
  for (const std::uint64_t id : features.ids) writer.u64(id);
  for (const double count : features.counts) writer.f64(count);
  writer.f64(features.self_dot);
  return seal(Kind::kFeatures, std::move(writer).take());
}

kernels::SparseHistogram decode_features(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kFeatures));
  const std::uint64_t size = reader.count();
  kernels::SparseHistogram features;
  features.ids.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint64_t id = reader.u64();
    if (!features.ids.empty() && id <= features.ids.back()) {
      throw ParseError("features artifact: ids not strictly ascending");
    }
    features.ids.push_back(id);
  }
  features.counts.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    features.counts.push_back(reader.f64());
  }
  const double stored_self_dot = reader.f64();
  if (!reader.at_end()) {
    throw ParseError("features artifact: trailing bytes after payload");
  }
  // Recompute the norm in the same accumulation order SparseHistogram::push
  // uses; a mismatch means the payload is inconsistent, not merely stale.
  double self_dot = 0.0;
  for (const double count : features.counts) self_dot += count * count;
  if (std::bit_cast<std::uint64_t>(self_dot) !=
      std::bit_cast<std::uint64_t>(stored_self_dot)) {
    throw ParseError("features artifact: self_dot does not match counts");
  }
  features.self_dot = self_dot;
  return features;
}

std::vector<std::uint8_t> encode_schedule(const sim::ReplaySchedule& schedule) {
  ByteWriter writer;
  writer.u64(schedule.wildcard_matches.size());
  for (const auto& per_rank : schedule.wildcard_matches) {
    writer.u64(per_rank.size());
    for (const sim::ReplaySchedule::Match& match : per_rank) {
      writer.i32(match.source);
      writer.i64(match.send_seq);
      writer.u8(match.pinned ? 1 : 0);
    }
  }
  return seal(Kind::kSchedule, std::move(writer).take());
}

sim::ReplaySchedule decode_schedule(std::span<const std::uint8_t> bytes) {
  ByteReader reader(open(bytes, Kind::kSchedule));
  sim::ReplaySchedule schedule;
  const std::uint64_t num_ranks = reader.count();
  schedule.wildcard_matches.reserve(num_ranks);
  for (std::uint64_t r = 0; r < num_ranks; ++r) {
    const std::uint64_t num_matches = reader.count();
    std::vector<sim::ReplaySchedule::Match> per_rank;
    per_rank.reserve(num_matches);
    for (std::uint64_t i = 0; i < num_matches; ++i) {
      sim::ReplaySchedule::Match match;
      match.source = reader.i32();
      match.send_seq = reader.i64();
      const std::uint8_t pinned = reader.u8();
      if (pinned > 1) {
        throw ParseError("schedule artifact: pin flag is not a boolean");
      }
      match.pinned = pinned != 0;
      per_rank.push_back(match);
    }
    schedule.wildcard_matches.push_back(std::move(per_rank));
  }
  if (!reader.at_end()) {
    throw ParseError("schedule artifact: trailing bytes after payload");
  }
  return schedule;
}

}  // namespace anacin::store

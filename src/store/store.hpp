#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernels/labeled_graph.hpp"
#include "patterns/pattern.hpp"
#include "sim/config.hpp"
#include "store/codec.hpp"
#include "store/hash.hpp"
#include "store/object_store.hpp"

namespace anacin::store {

/// Typed facade over the content-addressed ObjectStore.
///
/// Keys are digests of canonical JSON documents describing *everything the
/// artifact is a function of* — the simulator is deterministic, so a run
/// artifact is fully determined by (pattern, shape, sim config) and a
/// distance artifact by (kernel, label policy, the two runs' keys). The
/// documents embed the codec format version, so bumping kFormatVersion
/// invalidates every old key instead of misreading old payloads.
///
/// Loads that hit a corrupt object (failed envelope or payload decode)
/// remove the object, bump the `store.corrupt` counter, and report a miss
/// so callers transparently recompute.
///
/// Saves that hit a disk fault (typed IoError: full disk, device error,
/// failed publish) degrade instead of aborting: the first failure logs a
/// warning and bumps `store.degraded`, and every later save becomes a
/// no-op — the campaign continues with --no-store semantics (recompute
/// everything, cache nothing). Loads keep working: already-published
/// objects are content-addressed and immutable, so reads can only help.
/// The journal deliberately does NOT get this treatment (see
/// core::CampaignJournal::persist).
class ArtifactStore {
 public:
  explicit ArtifactStore(ObjectStore::Config config);

  ObjectStore& objects() { return objects_; }
  const ObjectStore& objects() const { return objects_; }

  /// Key of one simulated run (simulation + event-graph construction).
  static Digest run_key(const std::string& pattern,
                        const patterns::PatternConfig& shape,
                        const sim::SimConfig& sim_config);

  /// Key of one kernel distance between two runs. Symmetric: the two run
  /// digests are ordered before hashing, so (a, b) and (b, a) collide.
  static Digest distance_key(const std::string& kernel_spec,
                             kernels::LabelPolicy policy, const Digest& a,
                             const Digest& b);

  /// Key of one run's kernel feature histogram: extraction is a pure
  /// function of (kernel spec, label policy, run), so the cached histogram
  /// substitutes bit-for-bit for re-extraction.
  static Digest features_key(const std::string& kernel_spec,
                             kernels::LabelPolicy policy, const Digest& run);

  /// Key of the replay schedule recorded from one run. Recording is a pure
  /// function of the run's trace, so the key covers the same inputs as
  /// run_key.
  static Digest schedule_key(const std::string& pattern,
                             const patterns::PatternConfig& shape,
                             const sim::SimConfig& sim_config);

  /// Key of a replayed run: the recording's schedule digest plus the set of
  /// schedule entries freed (flat rank-major indices, ascending) fully
  /// determine the replay outcome given the replay sim config.
  static Digest replay_run_key(const std::string& pattern,
                               const patterns::PatternConfig& shape,
                               const sim::SimConfig& sim_config,
                               const Digest& schedule,
                               const std::vector<std::size_t>& freed);

  std::optional<EncodedRun> load_run(const Digest& key);
  void save_run(const Digest& key, const EncodedRun& run);

  std::optional<double> load_distance(const Digest& key);
  void save_distance(const Digest& key, double value);

  std::optional<kernels::SparseHistogram> load_features(const Digest& key);
  void save_features(const Digest& key,
                     const kernels::SparseHistogram& features);

  std::optional<sim::ReplaySchedule> load_schedule(const Digest& key);
  void save_schedule(const Digest& key, const sim::ReplaySchedule& schedule);

  /// True once a save hit a disk fault and the store fell back to
  /// --no-store semantics for publishes. Reported under `resilience.
  /// store_degraded` in campaign reports.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

 private:
  /// Publish `bytes` unless degraded; a typed disk fault flips the
  /// degraded latch (warning + store.degraded counter) instead of
  /// propagating.
  void publish(const Digest& key, Kind kind,
               const std::vector<std::uint8_t>& bytes, const char* what);

  ObjectStore objects_;
  std::atomic<bool> degraded_{false};
};

/// Process-global store used by default throughout the campaign layer;
/// nullptr (the initial state) disables artifact caching. The CLI installs
/// a store here when --store is given. Not owned.
ArtifactStore* active_store();
void set_active_store(ArtifactStore* store);

}  // namespace anacin::store

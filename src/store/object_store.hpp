#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/codec.hpp"
#include "store/hash.hpp"

namespace anacin::store {

/// Shared immutable bytes of one object (what the LRU cache holds).
using ObjectBytes = std::shared_ptr<const std::vector<std::uint8_t>>;

/// File-backed content-addressed object store.
///
/// Layout under the root directory:
///   objects/<first 2 hex chars>/<remaining 30 hex chars>   one artifact each
///   index.json                                             metadata cache
///
/// Publishes are atomic: objects are written to a uniquely named temp file
/// in the final directory and rename()d into place, so concurrent writers
/// and readers (the campaign thread pool) never observe partial objects.
/// The index holds sizes, kinds, and access times (for `gc`); it is a
/// cache, not the source of truth — construction rescans the objects
/// directory, so a lost or stale index self-heals.
///
/// Reads are fronted by a byte-bounded in-memory LRU cache. All public
/// methods are thread-safe; file reads happen outside the lock.
class ObjectStore {
 public:
  struct Config {
    std::filesystem::path root;
    /// Byte bound of the in-memory LRU cache (0 disables caching).
    std::uint64_t memory_max_bytes = 256ull << 20;
    /// Persist index.json (a self-healing cache, not the source of truth).
    /// Worker children (--isolate=process) disable this: many processes
    /// share one store root, object publishes are rename-atomic and safe,
    /// but the index temp file is a fixed path that concurrent writers
    /// would race on.
    bool persist_index = true;
  };

  explicit ObjectStore(Config config);
  ~ObjectStore();

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  const std::filesystem::path& root() const { return config_.root; }

  /// Fetch an object's bytes (memory cache first, then disk); nullptr when
  /// absent. Counts store.hits / store.misses / store.bytes_read.
  ObjectBytes get(const Digest& key);

  /// Publish an object; a key that already exists is left untouched.
  /// Returns true when newly written. Counts store.bytes_written.
  bool put(const Digest& key, Kind kind, std::span<const std::uint8_t> bytes);

  bool contains(const Digest& key) const;

  /// Drop an object from disk, index, and memory cache (used when a load
  /// detects corruption so the artifact is recomputed, not re-served).
  void remove(const Digest& key);

  struct Stats {
    std::uint64_t objects = 0;
    std::uint64_t total_bytes = 0;
    /// Object count per artifact kind name.
    std::map<std::string, std::uint64_t> kind_counts;
    std::uint64_t memory_objects = 0;
    std::uint64_t memory_bytes = 0;
    std::uint64_t memory_max_bytes = 0;
  };
  Stats stats() const;

  struct VerifyReport {
    std::uint64_t checked = 0;
    /// Keys whose files fail envelope validation (bad magic, truncation,
    /// checksum mismatch, unsupported version).
    std::vector<std::string> corrupt;
    /// Files in objects/ whose names are not valid digests.
    std::vector<std::string> foreign;

    bool ok() const { return corrupt.empty() && foreign.empty(); }
  };
  /// Re-read every object from disk and validate its envelope.
  VerifyReport verify() const;

  struct RepairReport {
    /// verify() results the repair acted on.
    VerifyReport verified;
    /// Objects moved into quarantine/ (corrupt + foreign).
    std::uint64_t quarantined = 0;
    /// Files that could not be moved (e.g. permissions); left in place.
    std::vector<std::string> failed;

    bool ok() const { return failed.empty(); }
  };
  /// Heal a damaged store: re-verify, then move every corrupt and foreign
  /// object aside into `<root>/quarantine/` (preserving the file name,
  /// uniquified on collision) so subsequent loads recompute instead of
  /// tripping over bad bytes. Nothing is deleted — a quarantined object
  /// can be inspected or restored by hand.
  RepairReport repair();

  struct GcReport {
    std::uint64_t removed_objects = 0;
    std::uint64_t removed_bytes = 0;
    std::uint64_t remaining_objects = 0;
    std::uint64_t remaining_bytes = 0;
    /// Orphaned `*.tmp.*` files swept (crashed writers' litter).
    std::uint64_t removed_temp_files = 0;
  };
  /// Evict least-recently-used objects until total size <= max_bytes.
  /// Also sweeps stale temp files older than this process.
  GcReport gc(std::uint64_t max_bytes);

  /// Persist the index (also done on put/remove/gc and destruction).
  void flush_index();

 private:
  struct Entry {
    std::uint16_t kind = 0;
    std::uint64_t size = 0;
    std::int64_t created_unix = 0;
    std::int64_t last_used_unix = 0;
  };

  std::filesystem::path object_path(const std::string& hex) const;
  void scan_objects();
  void load_index();
  void save_index_locked();
  void touch_memory_locked(const std::string& hex, ObjectBytes bytes);
  void evict_memory_locked();
  void drop_memory_locked(const std::string& hex);

  Config config_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> index_;
  bool index_dirty_ = false;

  /// LRU over object hex keys, most recent at the front.
  std::list<std::pair<std::string, ObjectBytes>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, ObjectBytes>>::iterator>
      lru_lookup_;
  std::uint64_t lru_bytes_ = 0;
};

}  // namespace anacin::store

#include "store/hash.hpp"

#include <cstdio>

namespace anacin::store {

namespace {

// Second-stream basis: the standard offset basis perturbed by the golden
// ratio, so the two 64-bit halves of a Digest are effectively independent.
constexpr std::uint64_t kAltBasis =
    Fnv1a::kOffsetBasis ^ 0x9E3779B97F4A7C15ull;

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string Digest::to_hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buffer, 32);
}

std::optional<Digest> Digest::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  Digest digest;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t value = 0;
    for (int i = 0; i < 16; ++i) {
      const int nibble = hex_nibble(hex[static_cast<std::size_t>(half * 16 + i)]);
      if (nibble < 0) return std::nullopt;
      value = (value << 4) | static_cast<std::uint64_t>(nibble);
    }
    (half == 0 ? digest.hi : digest.lo) = value;
  }
  return digest;
}

Digest digest_bytes(const void* data, std::size_t size) {
  Fnv1a hi(kAltBasis);
  Fnv1a lo;
  hi.update(data, size);
  lo.update(data, size);
  return Digest{hi.value(), lo.value()};
}

Digest digest_string(std::string_view text) {
  return digest_bytes(text.data(), text.size());
}

Digest digest_json(const json::Value& document) {
  return digest_string(document.dump_canonical());
}

}  // namespace anacin::store

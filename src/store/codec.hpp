#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/event_graph.hpp"
#include "kernels/distance_matrix.hpp"
#include "kernels/sparse_histogram.hpp"
#include "sim/replay_schedule.hpp"
#include "trace/trace.hpp"

namespace anacin::store {

/// Versioned binary envelope for every stored artifact:
///
///   offset  size  field
///   0       4     magic "ANCS"
///   4       2     format version (little-endian; currently 1)
///   6       2     artifact kind (Kind below)
///   8       8     payload size in bytes
///   16      8     FNV-1a 64 checksum of the payload
///   24      —     payload (little-endian, length-prefixed containers)
///
/// Decoding rejects, with distinct error messages: wrong magic, a format
/// version newer than this build supports, truncated files, checksum
/// mismatches (bit rot / partial writes), and kind mismatches. Doubles are
/// bit-cast, so round trips are exact — a decoded artifact reproduces the
/// original JSON forms byte for byte.
///
/// Version history:
///   1 — initial layout.
///   2 — kRun payload carries fault counters (drops/retries/duplicates/
///       straggler_events); event nodes may use EventType::kFault.
///       kFeatures added later under the same version: a new kind does not
///       change any existing payload, and older builds reject it cleanly
///       as an unknown kind.
///   3 — kTrace events carry the receive completion order (match_order
///       i64, after the jittered flag); kSchedule added for recorded
///       replay schedules.
inline constexpr std::uint16_t kFormatVersion = 3;
inline constexpr std::size_t kEnvelopeSize = 24;

enum class Kind : std::uint16_t {
  kTrace = 1,
  kEventGraph = 2,
  kDistances = 3,
  kDistanceMatrix = 4,
  /// One campaign run: aggregate simulator stats + the event graph.
  kRun = 5,
  /// One run's kernel feature histogram (sorted sparse ids + counts).
  kFeatures = 6,
  /// A recorded replay schedule (per-rank wildcard matches with pin flags).
  kSchedule = 7,
};

std::string_view kind_name(Kind kind);

/// Header metadata of an encoded artifact (available without decoding).
struct Envelope {
  std::uint16_t version = 0;
  Kind kind = Kind::kTrace;
  std::uint64_t payload_size = 0;
};

/// Validate magic/version/size/checksum and return the header.
/// Throws ParseError describing the first violation.
Envelope validate_envelope(std::span<const std::uint8_t> bytes);

/// One campaign run as stored: the event graph plus the per-run simulator
/// counters the campaign aggregates (so a cache hit skips the simulator
/// entirely, not just graph construction).
struct EncodedRun {
  graph::EventGraph graph;
  std::uint64_t messages = 0;
  std::uint64_t wildcard_recvs = 0;
  /// Fault-injection counters (see sim/faults.hpp); all zero when the run
  /// was simulated without faults.
  std::uint64_t drops = 0;
  std::uint64_t retries = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t straggler_events = 0;
};

std::vector<std::uint8_t> encode_trace(const trace::Trace& trace);
trace::Trace decode_trace(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_event_graph(const graph::EventGraph& graph);
graph::EventGraph decode_event_graph(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_distances(const std::vector<double>& values);
std::vector<double> decode_distances(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_distance_matrix(
    const kernels::DistanceMatrix& matrix);
kernels::DistanceMatrix decode_distance_matrix(
    std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_run(const EncodedRun& run);
EncodedRun decode_run(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_features(
    const kernels::SparseHistogram& features);
kernels::SparseHistogram decode_features(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_schedule(const sim::ReplaySchedule& schedule);
sim::ReplaySchedule decode_schedule(std::span<const std::uint8_t> bytes);

}  // namespace anacin::store

#include "store/object_store.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

namespace anacin::store {

namespace fs = std::filesystem;

namespace {

std::int64_t now_unix() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

obs::Counter& hits_counter() {
  static obs::Counter& counter = obs::counter("store.hits");
  return counter;
}
obs::Counter& misses_counter() {
  static obs::Counter& counter = obs::counter("store.misses");
  return counter;
}
obs::Counter& evictions_counter() {
  static obs::Counter& counter = obs::counter("store.evictions");
  return counter;
}
obs::Counter& bytes_read_counter() {
  static obs::Counter& counter = obs::counter("store.bytes_read");
  return counter;
}
obs::Counter& bytes_written_counter() {
  static obs::Counter& counter = obs::counter("store.bytes_written");
  return counter;
}

std::optional<std::vector<std::uint8_t>> read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size < 0) return std::nullopt;
  bytes.resize(static_cast<std::size_t>(size));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in.good() && !bytes.empty()) return std::nullopt;
  return bytes;
}

}  // namespace

ObjectStore::ObjectStore(Config config) : config_(std::move(config)) {
  ANACIN_CHECK(!config_.root.empty(), "object store needs a root directory");
  fs::create_directories(config_.root / "objects");
  // Sweep litter from crashed writers before scanning. Only temps older
  // than this process are touched: a fresh temp may be a sibling worker's
  // in-flight publish (many processes share one store root under
  // --isolate=process), and deleting it mid-write would torpedo a valid
  // commit.
  const std::uint64_t stale = support::remove_stale_temp_files(config_.root);
  if (stale > 0) obs::counter("store.stale_temps_removed").add(stale);
  load_index();
  scan_objects();
}

ObjectStore::~ObjectStore() {
  try {
    flush_index();
  } catch (...) {
    // Destructors must not throw; a stale index self-heals on next open.
  }
}

fs::path ObjectStore::object_path(const std::string& hex) const {
  return config_.root / "objects" / hex.substr(0, 2) / hex.substr(2);
}

void ObjectStore::load_index() {
  const fs::path path = config_.root / "index.json";
  std::ifstream in(path);
  if (!in.good()) return;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  try {
    const json::Value doc = json::parse(text);
    if (!doc.is_object() || !doc.contains("objects")) return;
    for (const auto& [hex, meta] : doc.at("objects").members()) {
      Entry entry;
      entry.kind = static_cast<std::uint16_t>(meta.at("kind").as_int());
      entry.size = static_cast<std::uint64_t>(meta.at("size").as_int());
      entry.created_unix = meta.at("created").as_int();
      entry.last_used_unix = meta.at("last_used").as_int();
      index_[hex] = entry;
    }
  } catch (const Error&) {
    // A corrupt index is discarded; scan_objects() rebuilds the metadata.
    index_.clear();
  }
}

void ObjectStore::scan_objects() {
  // The directory is the source of truth: drop index entries whose file is
  // gone and adopt files the index does not know (kind is read lazily from
  // the envelope; unreadable files keep kind 0 = unknown).
  std::map<std::string, Entry> scanned;
  const fs::path objects_dir = config_.root / "objects";
  for (const auto& shard : fs::directory_iterator(objects_dir)) {
    if (!shard.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(shard.path())) {
      if (!file.is_regular_file()) continue;
      const std::string name = file.path().filename().string();
      if (name.find(".tmp.") != std::string::npos) {
        // Unpublished temp file: either a crashed writer's litter (the
        // constructor's stale sweep removed the old ones already) or a
        // concurrent writer's in-flight publish — skip, never delete.
        continue;
      }
      const std::string hex = shard.path().filename().string() + name;
      if (!Digest::from_hex(hex).has_value()) continue;
      Entry entry;
      if (const auto it = index_.find(hex); it != index_.end()) {
        entry = it->second;
      } else {
        entry.created_unix = entry.last_used_unix = now_unix();
        index_dirty_ = true;
      }
      entry.size = file.file_size();
      if (entry.kind == 0) {
        if (const auto bytes = read_file_bytes(file.path())) {
          try {
            entry.kind =
                static_cast<std::uint16_t>(validate_envelope(*bytes).kind);
          } catch (const Error&) {
            // Corrupt object: keep it listed so verify/load can report it.
          }
        }
      }
      scanned[hex] = entry;
    }
  }
  if (scanned.size() != index_.size()) index_dirty_ = true;
  index_ = std::move(scanned);
}

void ObjectStore::save_index_locked() {
  if (!config_.persist_index) {
    // The index is only a cache; a reader-owned store rebuilds it by
    // scanning objects/ at construction.
    index_dirty_ = false;
    return;
  }
  json::Value doc = json::Value::object();
  doc.set("schema", "anacin-store-index-1");
  json::Value objects = json::Value::object();
  for (const auto& [hex, entry] : index_) {
    json::Value meta = json::Value::object();
    meta.set("kind", static_cast<std::int64_t>(entry.kind));
    meta.set("size", static_cast<std::int64_t>(entry.size));
    meta.set("created", entry.created_unix);
    meta.set("last_used", entry.last_used_unix);
    objects.set(hex, std::move(meta));
  }
  doc.set("objects", std::move(objects));

  // Routed through atomic_write_file: unique temp name (no fixed-path
  // race), io-chaos coverage under the store path class, and fsync at
  // --durability=commit and above.
  const fs::path path = config_.root / "index.json";
  support::atomic_write_file(path.string(), doc.dump(2) + "\n",
                             support::PathClass::kStore);
  index_dirty_ = false;
}

void ObjectStore::flush_index() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_dirty_) save_index_locked();
}

void ObjectStore::touch_memory_locked(const std::string& hex,
                                      ObjectBytes bytes) {
  if (config_.memory_max_bytes == 0) return;
  if (const auto it = lru_lookup_.find(hex); it != lru_lookup_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_bytes_ += bytes->size();
  lru_.emplace_front(hex, std::move(bytes));
  lru_lookup_[hex] = lru_.begin();
  evict_memory_locked();
}

void ObjectStore::evict_memory_locked() {
  while (lru_bytes_ > config_.memory_max_bytes && !lru_.empty()) {
    const auto& [hex, bytes] = lru_.back();
    lru_bytes_ -= bytes->size();
    lru_lookup_.erase(hex);
    lru_.pop_back();
    evictions_counter().add(1);
  }
}

void ObjectStore::drop_memory_locked(const std::string& hex) {
  if (const auto it = lru_lookup_.find(hex); it != lru_lookup_.end()) {
    lru_bytes_ -= it->second->second->size();
    lru_.erase(it->second);
    lru_lookup_.erase(it);
  }
}

ObjectBytes ObjectStore::get(const Digest& key) {
  const std::string hex = key.to_hex();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = lru_lookup_.find(hex); it != lru_lookup_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_counter().add(1);
      const auto entry = index_.find(hex);
      if (entry != index_.end()) entry->second.last_used_unix = now_unix();
      return it->second->second;
    }
  }
  // Disk read outside the lock; the path is an immutable function of the
  // key, and published objects are never rewritten in place.
  auto bytes = read_file_bytes(object_path(hex));
  if (!bytes.has_value()) {
    misses_counter().add(1);
    return nullptr;
  }
  bytes_read_counter().add(bytes->size());
  hits_counter().add(1);
  auto shared =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(*bytes));
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto entry = index_.find(hex); entry != index_.end()) {
    entry->second.last_used_unix = now_unix();
    index_dirty_ = true;
  }
  touch_memory_locked(hex, shared);
  return shared;
}

bool ObjectStore::put(const Digest& key, Kind kind,
                      std::span<const std::uint8_t> bytes) {
  const std::string hex = key.to_hex();
  const fs::path path = object_path(hex);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.contains(hex)) return false;
  }
  std::error_code ec;
  if (fs::exists(path, ec)) return false;

  fs::create_directories(path.parent_path());
  // One io-chaos decision per publish; injected failures throw the same
  // typed IoError a real full disk would, which is what lets the campaign
  // layer degrade to --no-store semantics instead of aborting.
  using WriteFault = support::io_chaos::WriteFault;
  const WriteFault fault =
      support::io_chaos::next_write_fault(support::PathClass::kStore);
  if (fault.kind == WriteFault::Kind::kOpenFail) {
    throw IoError("injected open failure (io chaos) for object " + hex);
  }
  // Unique temp name per writer, renamed into place: readers never see a
  // partially written object, and concurrent writers of the same key are
  // both valid (identical content) so last-rename-wins is safe.
  static std::atomic<std::uint64_t> temp_sequence{0};
  const fs::path temp =
      path.string() + ".tmp." +
      std::to_string(temp_sequence.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw IoError("cannot write object at " + temp.string());
    }
    if (fault.kind == WriteFault::Kind::kEnospc ||
        fault.kind == WriteFault::Kind::kEio) {
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size() / 2));
      out.flush();
      throw IoError(std::string("injected ") +
                    (fault.kind == WriteFault::Kind::kEnospc ? "ENOSPC"
                                                             : "EIO") +
                    " (io chaos) writing object " + hex);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      throw IoError("short write for object at " + temp.string() +
                    " (disk full?)");
    }
  }
  // Object publishes are the hot path: fsync only at --durability=paranoid
  // (a lost object is re-derivable from its inputs; a lost journal entry
  // is re-done work — see docs/RESILIENCE.md).
  const bool durable =
      support::durability_level() == support::Durability::kParanoid;
  if (durable && !fault.drop_fsync) {
    support::fsync_path(temp, /*is_directory=*/false);
  }
  if (fault.kind == WriteFault::Kind::kRenameFail) {
    throw IoError("injected rename failure (io chaos) publishing object " +
                  hex);
  }
  fs::rename(temp, path);
  if (durable && !fault.drop_fsync) {
    support::fsync_path(path.parent_path(), /*is_directory=*/true);
  }
  bytes_written_counter().add(bytes.size());
  support::io_chaos::note_durable_op();

  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.kind = static_cast<std::uint16_t>(kind);
  entry.size = bytes.size();
  entry.created_unix = entry.last_used_unix = now_unix();
  index_[hex] = entry;
  touch_memory_locked(
      hex, std::make_shared<const std::vector<std::uint8_t>>(bytes.begin(),
                                                             bytes.end()));
  save_index_locked();
  return true;
}

bool ObjectStore::contains(const Digest& key) const {
  const std::string hex = key.to_hex();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.contains(hex)) return true;
  }
  std::error_code ec;
  return fs::exists(object_path(hex), ec);
}

void ObjectStore::remove(const Digest& key) {
  const std::string hex = key.to_hex();
  std::error_code ec;
  fs::remove(object_path(hex), ec);
  std::lock_guard<std::mutex> lock(mutex_);
  drop_memory_locked(hex);
  if (index_.erase(hex) > 0) save_index_locked();
}

ObjectStore::Stats ObjectStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.memory_objects = lru_.size();
  stats.memory_bytes = lru_bytes_;
  stats.memory_max_bytes = config_.memory_max_bytes;
  for (const auto& [hex, entry] : index_) {
    stats.objects += 1;
    stats.total_bytes += entry.size;
    const std::string kind =
        entry.kind >= 1 && entry.kind <= 5
            ? std::string(kind_name(static_cast<Kind>(entry.kind)))
            : "unknown";
    stats.kind_counts[kind] += 1;
  }
  return stats;
}

ObjectStore::VerifyReport ObjectStore::verify() const {
  VerifyReport report;
  const fs::path objects_dir = config_.root / "objects";
  for (const auto& shard : fs::directory_iterator(objects_dir)) {
    if (!shard.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(shard.path())) {
      if (!file.is_regular_file()) continue;
      const std::string name = file.path().filename().string();
      if (name.find(".tmp.") != std::string::npos) {
        // A writer's temp file — in-flight publish or crash litter. The
        // stale-temp sweeper owns these; quarantining them as "foreign"
        // would yank a concurrent publish out from under its rename.
        continue;
      }
      const std::string hex = shard.path().filename().string() + name;
      if (!Digest::from_hex(hex).has_value()) {
        report.foreign.push_back(file.path().string());
        continue;
      }
      report.checked += 1;
      const auto bytes = read_file_bytes(file.path());
      if (!bytes.has_value()) {
        report.corrupt.push_back(hex);
        continue;
      }
      try {
        validate_envelope(*bytes);
      } catch (const Error&) {
        report.corrupt.push_back(hex);
      }
    }
  }
  return report;
}

ObjectStore::RepairReport ObjectStore::repair() {
  RepairReport report;
  report.verified = verify();
  if (report.verified.ok()) return report;

  const fs::path quarantine_dir = config_.root / "quarantine";
  std::error_code ec;
  fs::create_directories(quarantine_dir, ec);
  if (ec) {
    report.failed.push_back(quarantine_dir.string());
    return report;
  }

  const auto quarantine_file = [&](const fs::path& source,
                                   const std::string& name) {
    fs::path target = quarantine_dir / name;
    // Uniquify on collision so repeated repairs never clobber evidence.
    for (int attempt = 1; fs::exists(target, ec); ++attempt) {
      target = quarantine_dir / (name + "." + std::to_string(attempt));
    }
    // Repair is itself a writer, so it is fault-injectable too: a failed
    // quarantine move leaves the object in place (still listed in
    // `failed`) and a later repair run picks it up again.
    if (support::io_chaos::fail_rename(support::PathClass::kStore)) {
      report.failed.push_back(source.string());
      return false;
    }
    fs::rename(source, target, ec);
    if (ec) {
      report.failed.push_back(source.string());
      return false;
    }
    report.quarantined += 1;
    return true;
  };

  for (const std::string& hex : report.verified.corrupt) {
    if (!quarantine_file(object_path(hex), hex)) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    drop_memory_locked(hex);
    if (index_.erase(hex) > 0) index_dirty_ = true;
  }
  for (const std::string& path : report.verified.foreign) {
    const fs::path source(path);
    quarantine_file(source, source.filename().string());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    try {
      if (index_dirty_) save_index_locked();
    } catch (const IoError&) {
      // The index is a self-healing cache: a failed save leaves the store
      // scannable and the next repair (or open) rebuilds it. Surface the
      // failure without abandoning the quarantines already done.
      report.failed.push_back((config_.root / "index.json").string());
    }
  }
  obs::counter("store.objects_quarantined").add(report.quarantined);
  return report;
}

ObjectStore::GcReport ObjectStore::gc(std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  GcReport report;
  std::uint64_t total = 0;
  for (const auto& [hex, entry] : index_) total += entry.size;

  // Oldest last-use first.
  std::vector<std::pair<std::int64_t, std::string>> by_age;
  by_age.reserve(index_.size());
  for (const auto& [hex, entry] : index_) {
    by_age.emplace_back(entry.last_used_unix, hex);
  }
  std::sort(by_age.begin(), by_age.end());

  for (const auto& [last_used, hex] : by_age) {
    if (total <= max_bytes) break;
    const auto it = index_.find(hex);
    std::error_code ec;
    fs::remove(object_path(hex), ec);
    total -= it->second.size;
    report.removed_objects += 1;
    report.removed_bytes += it->second.size;
    drop_memory_locked(hex);
    index_.erase(it);
  }
  report.remaining_objects = index_.size();
  report.remaining_bytes = total;
  report.removed_temp_files = support::remove_stale_temp_files(config_.root);
  save_index_locked();
  return report;
}

}  // namespace anacin::store

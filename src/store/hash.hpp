#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.hpp"

namespace anacin::store {

/// Streaming FNV-1a 64-bit hash. Fast, dependency-free, and stable across
/// platforms — good enough for content addressing of artifacts whose keys
/// are derived from canonical JSON (collisions would only ever alias two
/// cache entries, never corrupt results, because payloads carry their own
/// checksums and are decoded defensively).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  explicit Fnv1a(std::uint64_t basis = kOffsetBasis) : state_(basis) {}

  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }
  void update(std::string_view text) { update(text.data(), text.size()); }

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_;
};

/// 128-bit content digest (two independently seeded FNV-1a streams).
/// 32 lowercase hex characters; the artifact store shards objects on the
/// first two.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest&, const Digest&) = default;

  std::string to_hex() const;
  /// Parse a 32-char lowercase hex digest; nullopt on malformed input.
  static std::optional<Digest> from_hex(std::string_view hex);
};

/// Digest of a byte span.
Digest digest_bytes(const void* data, std::size_t size);
Digest digest_string(std::string_view text);

/// Digest of a JSON document's canonical serialization: stable across
/// runs, platforms, and object-member insertion order.
Digest digest_json(const json::Value& document);

}  // namespace anacin::store

#include "replay/replay.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/error.hpp"

namespace anacin::replay {

sim::ReplaySchedule record_schedule(const trace::Trace& trace) {
  sim::ReplaySchedule schedule;
  schedule.wildcard_matches.resize(
      static_cast<std::size_t>(trace.num_ranks()));
  for (int rank = 0; rank < trace.num_ranks(); ++rank) {
    // Trace events are appended at retirement (wait) time, so trace order
    // can differ from completion order when irecvs are waited out of the
    // order they completed — but the ReplaySchedule contract requires
    // per-rank *completion* order (the order the engine's matcher consults
    // the cursor in). Sort by the recorded completion counter; traces from
    // before the counter was recorded (all match_order == -1) keep their
    // trace order, which was the best information available then.
    std::vector<std::pair<std::int64_t, sim::ReplaySchedule::Match>> matches;
    for (const trace::Event& event : trace.rank_events(rank)) {
      if (event.type != trace::EventType::kRecv) continue;
      if (event.posted_source != sim::kAnySource) continue;
      matches.push_back({event.match_order,
                         {event.matched_rank, event.matched_seq}});
    }
    const bool have_order = std::all_of(
        matches.begin(), matches.end(),
        [](const auto& entry) { return entry.first >= 0; });
    if (have_order) {
      std::stable_sort(matches.begin(), matches.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
    }
    auto& per_rank = schedule.wildcard_matches[static_cast<std::size_t>(rank)];
    per_rank.reserve(matches.size());
    for (const auto& [order, match] : matches) per_rank.push_back(match);
  }
  return schedule;
}

json::Value schedule_to_json(const sim::ReplaySchedule& schedule) {
  json::Value doc = json::Value::object();
  doc.set("schema", "anacin-replay-1");
  json::Value ranks = json::Value::array();
  for (const auto& per_rank : schedule.wildcard_matches) {
    json::Value matches = json::Value::array();
    for (const auto& match : per_rank) {
      json::Value entry = json::Value::array();
      entry.push_back(match.source);
      entry.push_back(match.send_seq);
      // Freed entries carry an explicit third element; the common
      // all-pinned schedule keeps the compact two-element form.
      if (!match.pinned) entry.push_back(false);
      matches.push_back(std::move(entry));
    }
    ranks.push_back(std::move(matches));
  }
  doc.set("wildcard_matches", std::move(ranks));
  return doc;
}

sim::ReplaySchedule schedule_from_json(const json::Value& document) {
  if (!document.is_object() || !document.contains("schema") ||
      document.at("schema").as_string() != "anacin-replay-1") {
    throw ParseError("not an anacin-replay-1 document");
  }
  if (!document.contains("wildcard_matches")) {
    throw ParseError("replay document is missing \"wildcard_matches\"");
  }
  const json::Value& ranks = document.at("wildcard_matches");
  if (!ranks.is_array()) {
    throw ParseError("replay \"wildcard_matches\" must be an array of ranks");
  }
  sim::ReplaySchedule schedule;
  std::size_t rank = 0;
  for (const json::Value& matches : ranks.items()) {
    if (!matches.is_array()) {
      throw ParseError("replay rank " + std::to_string(rank) +
                       " matches must be an array");
    }
    std::vector<sim::ReplaySchedule::Match> per_rank;
    per_rank.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
      const json::Value& entry = matches.at(i);
      const std::string where = "replay match entry " + std::to_string(i) +
                                " on rank " + std::to_string(rank);
      if (!entry.is_array() || entry.size() < 2 || entry.size() > 3) {
        throw ParseError(where +
                         " must be [source, send_seq] or"
                         " [source, send_seq, pinned]");
      }
      const std::int64_t source = entry.at(0).as_int();
      if (source < -1 ||
          source > std::numeric_limits<std::int32_t>::max()) {
        throw ParseError(where + " has out-of-range source " +
                         std::to_string(source));
      }
      sim::ReplaySchedule::Match match;
      match.source = static_cast<std::int32_t>(source);
      match.send_seq = entry.at(1).as_int();
      if (entry.size() == 3) match.pinned = entry.at(2).as_bool();
      per_rank.push_back(match);
    }
    schedule.wildcard_matches.push_back(std::move(per_rank));
    ++rank;
  }
  return schedule;
}

RecordReplayResult record_and_replay(const sim::SimConfig& record_config,
                                     const sim::SimConfig& replay_config,
                                     const sim::RankProgram& program) {
  RecordReplayResult result{sim::run_simulation(record_config, program), {}};
  const sim::ReplaySchedule schedule = record_schedule(result.recorded.trace);
  sim::SimConfig forced = replay_config;
  forced.replay = &schedule;
  result.replayed = sim::run_simulation(forced, program);
  return result;
}

}  // namespace anacin::replay

#include "replay/replay.hpp"

#include "support/error.hpp"

namespace anacin::replay {

sim::ReplaySchedule record_schedule(const trace::Trace& trace) {
  sim::ReplaySchedule schedule;
  schedule.wildcard_matches.resize(
      static_cast<std::size_t>(trace.num_ranks()));
  for (int rank = 0; rank < trace.num_ranks(); ++rank) {
    for (const trace::Event& event : trace.rank_events(rank)) {
      if (event.type != trace::EventType::kRecv) continue;
      if (event.posted_source != sim::kAnySource) continue;
      schedule.wildcard_matches[static_cast<std::size_t>(rank)].push_back(
          {event.matched_rank, event.matched_seq});
    }
  }
  return schedule;
}

json::Value schedule_to_json(const sim::ReplaySchedule& schedule) {
  json::Value doc = json::Value::object();
  doc.set("schema", "anacin-replay-1");
  json::Value ranks = json::Value::array();
  for (const auto& per_rank : schedule.wildcard_matches) {
    json::Value matches = json::Value::array();
    for (const auto& match : per_rank) {
      json::Value entry = json::Value::array();
      entry.push_back(match.source);
      entry.push_back(match.send_seq);
      matches.push_back(std::move(entry));
    }
    ranks.push_back(std::move(matches));
  }
  doc.set("wildcard_matches", std::move(ranks));
  return doc;
}

sim::ReplaySchedule schedule_from_json(const json::Value& document) {
  if (!document.is_object() || !document.contains("schema") ||
      document.at("schema").as_string() != "anacin-replay-1") {
    throw ParseError("not an anacin-replay-1 document");
  }
  sim::ReplaySchedule schedule;
  for (const json::Value& matches :
       document.at("wildcard_matches").items()) {
    std::vector<sim::ReplaySchedule::Match> per_rank;
    per_rank.reserve(matches.size());
    for (const json::Value& entry : matches.items()) {
      ANACIN_CHECK(entry.size() == 2, "replay match entry must be a pair");
      per_rank.push_back(
          {static_cast<std::int32_t>(entry.at(0).as_int()),
           entry.at(1).as_int()});
    }
    schedule.wildcard_matches.push_back(std::move(per_rank));
  }
  return schedule;
}

RecordReplayResult record_and_replay(const sim::SimConfig& record_config,
                                     const sim::SimConfig& replay_config,
                                     const sim::RankProgram& program) {
  RecordReplayResult result{sim::run_simulation(record_config, program), {}};
  const sim::ReplaySchedule schedule = record_schedule(result.recorded.trace);
  sim::SimConfig forced = replay_config;
  forced.replay = &schedule;
  result.replayed = sim::run_simulation(forced, program);
  return result;
}

}  // namespace anacin::replay

#pragma once

#include "sim/replay_schedule.hpp"
#include "sim/simulator.hpp"
#include "support/json.hpp"
#include "trace/trace.hpp"

namespace anacin::replay {

/// Extract the wildcard-receive matching decisions of a recorded run.
///
/// This is the ReMPI idea from the paper's Related Work: record the
/// outcome of every message race, then force the same outcome on replay to
/// temporarily suppress non-determinism. Under this engine only wildcard
/// receives race (explicit-source matching is FIFO-deterministic), so the
/// schedule stores exactly one (source, send_seq) pair per wildcard
/// receive completion, in per-rank completion order.
sim::ReplaySchedule record_schedule(const trace::Trace& trace);

/// Serialize a schedule (schema "anacin-replay-1").
json::Value schedule_to_json(const sim::ReplaySchedule& schedule);
sim::ReplaySchedule schedule_from_json(const json::Value& document);

/// Convenience: run `program` once with `record_config` to record a
/// schedule, then run it again under `replay_config` with matching forced.
/// Returns both runs; the replayed run's match order provably equals the
/// recorded one (tested), so the kernel distance between them is ~0.
struct RecordReplayResult {
  sim::RunResult recorded;
  sim::RunResult replayed;
};
RecordReplayResult record_and_replay(const sim::SimConfig& record_config,
                                     const sim::SimConfig& replay_config,
                                     const sim::RankProgram& program);

}  // namespace anacin::replay

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/supervisor.hpp"
#include "kernels/labeled_graph.hpp"
#include "patterns/pattern.hpp"
#include "proc/executor.hpp"
#include "sim/config.hpp"
#include "sim/replay_schedule.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace anacin::replay {

/// Configuration of one bisection: record a reference run, then
/// delta-debug over its recorded wildcard matches to find the minimal set
/// of races that reproduces the kernel-distance gap.
struct BisectConfig {
  std::string pattern = "message_race";
  patterns::PatternConfig shape;
  /// Recording config — typically high nd_fraction so races actually fire.
  /// `replay` must be unset; the driver wires schedules in itself.
  sim::SimConfig record_sim;
  /// Seed of the candidate replays. Must differ from record_sim.seed:
  /// replaying the *same* seed reproduces the recording even with every
  /// entry freed, leaving no gap to bisect.
  std::uint64_t replay_seed = 0;
  std::string kernel_spec = "wl:2";
  kernels::LabelPolicy label_policy = kernels::LabelPolicy::kTypePeer;
  /// A candidate freed-set "reproduces" the gap when its replay's distance
  /// to the reference reaches this fraction of the all-freed distance.
  double target_fraction = 0.9;
  /// Logical-time slice width used to localize each racy match in the
  /// ranked report (same windowing as analysis::find_root_causes).
  std::uint64_t slice_window = 16;
  /// Per-candidate supervision (retries/deadline), as in campaigns.
  core::RetryPolicy retry;
};

/// One line of the ranked root-cause report: a recorded wildcard match
/// that survived bisection, localized to its callsite and logical-time
/// slice, with the kernel distance reproduced by freeing it alone.
struct RacyMatch {
  /// Flat rank-major index of the schedule entry.
  std::size_t schedule_index = 0;
  /// Receiver side: rank, event seq in the reference graph, and the call
  /// path of the wildcard receive.
  int rank = -1;
  std::int64_t recv_seq = -1;
  std::string callsite;
  /// Lamport slice of the receive in the reference run (the "phase").
  std::uint32_t slice = 0;
  /// Recorded match outcome (sender rank + its send event seq).
  std::int32_t source = -1;
  std::int64_t send_seq = -1;
  /// Kernel distance to the reference when only this entry is freed —
  /// the entry's standalone contribution to the gap.
  double contribution = 0.0;
};

struct BisectResult {
  /// The recorded schedule (all entries pinned).
  sim::ReplaySchedule schedule;
  /// Kernel distance between the reference and the all-freed replay — the
  /// full non-determinism gap the minimal set must reproduce.
  double full_gap = 0.0;
  /// Distance achieved by the converged minimal freed set.
  double achieved = 0.0;
  /// Flat rank-major schedule indices of the minimal racy set, ascending.
  std::vector<std::size_t> minimal;
  /// The minimal set ranked by standalone contribution, descending.
  std::vector<RacyMatch> report;
  /// ddmin rounds executed and candidate replays evaluated (memoized
  /// repeats excluded).
  std::size_t rounds = 0;
  std::size_t candidates = 0;
};

/// Record + delta-debug + rank. Candidate replays are campaign-style work
/// units: each runs under the supervisor (retries, deadlines, injected
/// faults), results are content-addressed store artifacts when a store is
/// active (warm re-runs evaluate zero simulations), and an optional
/// UnitExecutor farms them to worker children (`--isolate=process`) or an
/// `anacin serve` fleet. `cancel` aborts between rounds (SIGINT).
///
/// Throws Error subclasses on unrecoverable failures (a candidate that
/// fails permanently aborts the bisection — its distance is load-bearing).
BisectResult bisect(const BisectConfig& config, ThreadPool& pool,
                    proc::UnitExecutor* executor = nullptr,
                    CancelToken* cancel = nullptr);

/// JSON document of a bisection outcome (schema "anacin-bisect-1").
json::Value bisect_to_json(const BisectConfig& config,
                           const BisectResult& result);

}  // namespace anacin::replay

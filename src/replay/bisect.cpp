#include "replay/bisect.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "graph/event_graph.hpp"
#include "graph/slicing.hpp"
#include "kernels/distance_matrix.hpp"
#include "kernels/kernel.hpp"
#include "obs/obs.hpp"
#include "proc/worker_main.hpp"
#include "replay/replay.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"
#include "store/store.hpp"
#include "support/error.hpp"

namespace anacin::replay {

namespace {

/// Stable short label for a candidate freed set: "<size>@<fnv64 hex>" of
/// the canonical index list. Unit ids feed the supervisor's backoff
/// jitter and the failure injector, so equal sets must label equally
/// across runs and processes.
std::string candidate_label(const std::vector<std::size_t>& freed) {
  store::Fnv1a hash;
  for (const std::size_t index : freed) {
    const std::uint64_t value = index;
    hash.update(&value, sizeof(value));
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash.value()));
  return std::to_string(freed.size()) + "@" + hex;
}

/// Evaluates candidate freed sets as supervised campaign work units,
/// memoizing distances per canonical set. Thread-safe: ddmin rounds
/// evaluate their candidates through pool.parallel_for.
class CandidateEvaluator {
 public:
  CandidateEvaluator(const BisectConfig& config,
                     const core::Supervisor& supervisor,
                     proc::UnitExecutor* executor,
                     store::ArtifactStore* store,
                     const sim::ReplaySchedule& schedule,
                     const store::Digest& reference_key,
                     const store::Digest& schedule_key,
                     const kernels::FeatureVector& reference_features)
      : config_(config),
        supervisor_(supervisor),
        executor_(executor),
        store_(store),
        schedule_(schedule),
        reference_key_(reference_key),
        schedule_key_(schedule_key),
        reference_features_(reference_features),
        kernel_(kernels::make_kernel(config.kernel_spec)) {
    replay_sim_ = config.record_sim;
    replay_sim_.seed = config.replay_seed;
    replay_sim_.replay = nullptr;
  }

  /// Kernel distance between the reference and the replay with `freed`
  /// entries freed. `freed` must be sorted and deduplicated.
  double evaluate(const std::vector<std::size_t>& freed) {
    {
      const std::lock_guard<std::mutex> lock(memo_mutex_);
      const auto it = memo_.find(freed);
      if (it != memo_.end()) return it->second;
    }
    const std::string label = candidate_label(freed);
    const std::string unit = "replay:" + label;
    double distance = 0.0;
    const core::UnitReport report =
        supervisor_.run(unit, [&] { distance = compute(label, freed); });
    if (!report.ok) {
      // Candidate distances are load-bearing (they steer the search), so
      // a unit that stays failed after retries aborts the bisection.
      throw PermanentError("bisect: candidate " + unit +
                           " failed: " + report.error);
    }
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    memo_.emplace(freed, distance);
    return distance;
  }

  std::size_t candidates_evaluated() const {
    return candidates_.load(std::memory_order_relaxed);
  }

 private:
  double compute(const std::string& label,
                 const std::vector<std::size_t>& freed) {
    candidates_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("replay.bisect_candidates").add(1);
    if (store_ == nullptr) {
      // Pure in-process mode: simulate + embed + measure directly.
      supervisor_.injector().apply_execution_hooks("replay:" + label);
      const graph::EventGraph graph = simulate_replay(freed);
      const kernels::FeatureVector features = kernel_->features(
          kernels::build_labeled_graph(graph, config_.label_policy));
      return kernels::counted_distance(reference_features_, features);
    }

    const store::Digest replay_key = store::ArtifactStore::replay_run_key(
        config_.pattern, config_.shape, replay_sim_, schedule_key_, freed);
    const store::Digest distance_key = store::ArtifactStore::distance_key(
        config_.kernel_spec, config_.label_policy, reference_key_,
        replay_key);
    if (const auto hit = store_->load_distance(distance_key)) return *hit;

    if (executor_ != nullptr) {
      // The worker/agent simulates the replay and publishes the run, then
      // a pair unit publishes the distance; the driver reads both back
      // through the store, so isolated and distributed bisections are
      // byte-identical to in-process ones.
      const std::string replay_unit = "replay:" + label;
      executor_->execute(
          replay_unit,
          proc::make_replay_request(replay_unit, config_.pattern,
                                    config_.shape, replay_sim_,
                                    schedule_key_, freed));
      const std::string pair_unit = "pair:reference-" + label;
      executor_->execute(
          pair_unit,
          proc::make_pair_request(pair_unit, config_.kernel_spec,
                                  config_.label_policy, reference_key_,
                                  replay_key));
      const auto distance = store_->load_distance(distance_key);
      if (!distance) {
        throw TransientError(
            "bisect: executor reported candidate " + label +
            " done but the distance artifact is missing from the store");
      }
      return *distance;
    }

    supervisor_.injector().apply_execution_hooks("replay:" + label);
    const kernels::FeatureVector features =
        replay_features(freed, replay_key);
    const double distance =
        kernels::counted_distance(reference_features_, features);
    store_->save_distance(distance_key, distance);
    return distance;
  }

  graph::EventGraph simulate_replay(const std::vector<std::size_t>& freed) {
    sim::ReplaySchedule candidate = schedule_;
    for (const std::size_t index : freed) {
      ANACIN_CHECK(candidate.free_entry(index),
                   "bisect: freed index " << index << " out of range");
    }
    sim::SimConfig sim_config = replay_sim_;
    sim_config.replay = &candidate;
    const auto pattern_impl = patterns::make_pattern(config_.pattern);
    const sim::RunResult run = sim::run_simulation(
        sim_config, pattern_impl->program(config_.shape));
    graph::EventGraph graph = graph::EventGraph::from_trace(run.trace);
    if (store_ != nullptr) {
      const store::Digest replay_key = store::ArtifactStore::replay_run_key(
          config_.pattern, config_.shape, replay_sim_, schedule_key_, freed);
      store::EncodedRun encoded;
      encoded.graph = graph;
      encoded.messages = run.stats.messages;
      encoded.wildcard_recvs = run.stats.wildcard_recvs;
      encoded.drops = run.stats.drops;
      encoded.duplicates = run.stats.duplicates;
      encoded.straggler_events = run.stats.straggler_events;
      store_->save_run(replay_key, encoded);
    }
    return graph;
  }

  kernels::FeatureVector replay_features(
      const std::vector<std::size_t>& freed,
      const store::Digest& replay_key) {
    const store::Digest features_key = store::ArtifactStore::features_key(
        config_.kernel_spec, config_.label_policy, replay_key);
    if (auto cached = store_->load_features(features_key)) {
      return std::move(*cached);
    }
    graph::EventGraph graph;
    if (auto cached_run = store_->load_run(replay_key)) {
      graph = std::move(cached_run->graph);
    } else {
      graph = simulate_replay(freed);
    }
    kernels::FeatureVector features = kernel_->features(
        kernels::build_labeled_graph(graph, config_.label_policy));
    store_->save_features(features_key, features);
    return features;
  }

  const BisectConfig& config_;
  const core::Supervisor& supervisor_;
  proc::UnitExecutor* executor_;
  store::ArtifactStore* store_;
  const sim::ReplaySchedule& schedule_;
  const store::Digest reference_key_;
  const store::Digest schedule_key_;
  const kernels::FeatureVector& reference_features_;
  std::unique_ptr<kernels::GraphKernel> kernel_;
  sim::SimConfig replay_sim_;

  std::mutex memo_mutex_;
  std::map<std::vector<std::size_t>, double> memo_;
  std::atomic<std::size_t> candidates_{0};
};

/// Split `items` into `n` near-equal contiguous chunks (first chunks get
/// the remainder), preserving order. Every chunk is non-empty when
/// n <= items.size().
std::vector<std::vector<std::size_t>> partition(
    const std::vector<std::size_t>& items, std::size_t n) {
  std::vector<std::vector<std::size_t>> chunks;
  chunks.reserve(n);
  const std::size_t base = items.size() / n;
  const std::size_t extra = items.size() % n;
  std::size_t offset = 0;
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    chunks.emplace_back(items.begin() + static_cast<std::ptrdiff_t>(offset),
                        items.begin() +
                            static_cast<std::ptrdiff_t>(offset + size));
    offset += size;
  }
  return chunks;
}

std::vector<std::size_t> complement_of(const std::vector<std::size_t>& all,
                                       const std::vector<std::size_t>& chunk) {
  std::vector<std::size_t> result;
  result.reserve(all.size() - chunk.size());
  std::set_difference(all.begin(), all.end(), chunk.begin(), chunk.end(),
                      std::back_inserter(result));
  return result;
}

void check_cancel(CancelToken* cancel) {
  if (cancel != nullptr && cancel->cancelled()) {
    throw InterruptedError("interrupted during bisection");
  }
}

/// Map each recorded (source, send_seq) match to its wildcard receive
/// node in the reference graph. A send matches exactly one receive, so
/// the mapping is unique — and it works on store-loaded graphs, which do
/// not carry completion order.
std::map<std::pair<std::int32_t, std::int64_t>, graph::NodeId>
wildcard_recvs_by_match(const graph::EventGraph& reference) {
  std::map<std::pair<std::int32_t, std::int64_t>, graph::NodeId> by_match;
  for (const auto& [send_node, recv_node] : reference.message_edges()) {
    const graph::EventNode& recv = reference.node(recv_node);
    if (recv.posted_source != sim::kAnySource) continue;
    const graph::EventNode& send = reference.node(send_node);
    by_match[{send.rank, send.seq}] = recv_node;
  }
  return by_match;
}

}  // namespace

BisectResult bisect(const BisectConfig& config, ThreadPool& pool,
                    proc::UnitExecutor* executor, CancelToken* cancel) {
  ANACIN_SPAN("replay.bisect");
  obs::counter("replay.bisections").add(1);
  ANACIN_CHECK(config.record_sim.replay == nullptr,
               "bisect records its own schedule: record_sim.replay must be "
               "unset");
  if (config.target_fraction <= 0.0 || config.target_fraction > 1.0) {
    throw ConfigError("bisect target fraction must be in (0, 1]");
  }
  if (config.slice_window < 1) {
    throw ConfigError("bisect slice window must be >= 1");
  }
  if (config.replay_seed == config.record_sim.seed) {
    throw ConfigError(
        "bisect replay seed equals the recording seed: the all-freed "
        "replay would reproduce the recording and leave no gap to bisect");
  }
  store::ArtifactStore* const store = store::active_store();
  ANACIN_CHECK(executor == nullptr || store != nullptr,
               "isolated/distributed bisection requires an artifact store: "
               "candidate results flow back through it");

  const core::Supervisor supervisor(config.retry, config.record_sim.seed);
  const store::Digest reference_key = store::ArtifactStore::run_key(
      config.pattern, config.shape, config.record_sim);
  const store::Digest schedule_key = store::ArtifactStore::schedule_key(
      config.pattern, config.shape, config.record_sim);

  // --- record the reference (or load it from a warm store) ---
  BisectResult result;
  graph::EventGraph reference;
  {
    bool loaded = false;
    if (store != nullptr) {
      auto cached_run = store->load_run(reference_key);
      auto cached_schedule = store->load_schedule(schedule_key);
      if (cached_run && cached_schedule) {
        reference = std::move(cached_run->graph);
        result.schedule = std::move(*cached_schedule);
        loaded = true;
      }
    }
    if (!loaded) {
      const core::UnitReport report = supervisor.run("record", [&] {
        supervisor.injector().apply_execution_hooks("record");
        const auto pattern_impl = patterns::make_pattern(config.pattern);
        const sim::RunResult run = sim::run_simulation(
            config.record_sim, pattern_impl->program(config.shape));
        result.schedule = record_schedule(run.trace);
        reference = graph::EventGraph::from_trace(run.trace);
        if (store != nullptr) {
          store::EncodedRun encoded;
          encoded.graph = reference;
          encoded.messages = run.stats.messages;
          encoded.wildcard_recvs = run.stats.wildcard_recvs;
          encoded.drops = run.stats.drops;
          encoded.duplicates = run.stats.duplicates;
          encoded.straggler_events = run.stats.straggler_events;
          store->save_run(reference_key, encoded);
          store->save_schedule(schedule_key, result.schedule);
        }
      });
      if (!report.ok) {
        throw PermanentError("bisect: recording the reference failed: " +
                             report.error);
      }
    }
  }
  check_cancel(cancel);

  // --- reference feature embedding (store-cached) ---
  const auto kernel = kernels::make_kernel(config.kernel_spec);
  kernels::FeatureVector reference_features;
  {
    const store::Digest features_key = store::ArtifactStore::features_key(
        config.kernel_spec, config.label_policy, reference_key);
    std::optional<kernels::FeatureVector> cached;
    if (store != nullptr) cached = store->load_features(features_key);
    if (cached) {
      reference_features = std::move(*cached);
    } else {
      reference_features = kernel->features(
          kernels::build_labeled_graph(reference, config.label_policy));
      if (store != nullptr) {
        store->save_features(features_key, reference_features);
      }
    }
  }

  CandidateEvaluator evaluator(config, supervisor, executor, store,
                               result.schedule, reference_key, schedule_key,
                               reference_features);

  const std::size_t total = result.schedule.total_matches();
  std::vector<std::size_t> all(total);
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (total == 0) {
    result.candidates = evaluator.candidates_evaluated();
    return result;  // deterministic program: nothing to bisect
  }

  // --- the full gap: reference vs the all-freed (unconstrained) replay ---
  result.full_gap = evaluator.evaluate(all);
  if (result.full_gap <= 0.0) {
    result.candidates = evaluator.candidates_evaluated();
    return result;  // the replay seed happens to reproduce the reference
  }
  const double target = config.target_fraction * result.full_gap;

  // --- ddmin over the freed set ---
  //
  // Invariant: freeing `current` reproduces >= target of the gap. Each
  // round partitions `current` into n chunks and tests every chunk and
  // (for n > 2) every complement concurrently; the winner is chosen
  // deterministically (first passing chunk in partition order, then first
  // passing complement), so identical inputs bisect identically no matter
  // how the pool schedules the candidate replays.
  std::vector<std::size_t> current = all;
  std::size_t n = 2;
  while (current.size() >= 2 && n <= current.size()) {
    check_cancel(cancel);
    ++result.rounds;

    const std::vector<std::vector<std::size_t>> chunks =
        partition(current, n);
    std::vector<std::vector<std::size_t>> candidates = chunks;
    if (n > 2) {
      for (const auto& chunk : chunks) {
        candidates.push_back(complement_of(current, chunk));
      }
    }
    std::vector<double> distances(candidates.size(), 0.0);
    pool.parallel_for(
        0, candidates.size(),
        [&](std::size_t i) { distances[i] = evaluator.evaluate(candidates[i]); },
        /*grain=*/1, cancel);
    check_cancel(cancel);

    std::size_t winner = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (distances[i] >= target) {
        winner = i;
        break;
      }
    }
    if (winner < chunks.size()) {
      current = candidates[winner];  // reduce to the passing chunk
      n = 2;
    } else if (winner < candidates.size()) {
      current = candidates[winner];  // reduce to the passing complement
      n = std::max<std::size_t>(n - 1, 2);
    } else if (n < current.size()) {
      n = std::min(n * 2, current.size());  // refine granularity
    } else {
      break;  // 1-minimal: no chunk or complement passes
    }
  }

  result.minimal = current;
  result.achieved = evaluator.evaluate(result.minimal);

  // --- standalone contributions for the ranked report ---
  std::vector<double> contributions(result.minimal.size(), 0.0);
  pool.parallel_for(
      0, result.minimal.size(),
      [&](std::size_t i) {
        contributions[i] = evaluator.evaluate({result.minimal[i]});
      },
      /*grain=*/1, cancel);
  check_cancel(cancel);

  const auto by_match = wildcard_recvs_by_match(reference);
  const graph::SliceSet slices =
      graph::slice_by_lamport_window(reference, config.slice_window);
  result.report.reserve(result.minimal.size());
  for (std::size_t i = 0; i < result.minimal.size(); ++i) {
    const std::size_t flat = result.minimal[i];
    // Locate the entry's rank and recorded outcome.
    std::size_t index = flat;
    int rank = 0;
    for (const auto& per_rank : result.schedule.wildcard_matches) {
      if (index < per_rank.size()) break;
      index -= per_rank.size();
      ++rank;
    }
    const sim::ReplaySchedule::Match& match =
        result.schedule
            .wildcard_matches[static_cast<std::size_t>(rank)][index];
    RacyMatch entry;
    entry.schedule_index = flat;
    entry.rank = rank;
    entry.source = match.source;
    entry.send_seq = match.send_seq;
    entry.contribution = contributions[i];
    const auto node_it = by_match.find({match.source, match.send_seq});
    if (node_it != by_match.end()) {
      const graph::EventNode& node = reference.node(node_it->second);
      entry.recv_seq = node.seq;
      entry.callsite = reference.callstacks().path(node.callstack_id);
      entry.slice = slices.slice_of_node[node_it->second];
    }
    result.report.push_back(std::move(entry));
  }
  std::sort(result.report.begin(), result.report.end(),
            [](const RacyMatch& a, const RacyMatch& b) {
              if (a.contribution != b.contribution) {
                return a.contribution > b.contribution;
              }
              return a.schedule_index < b.schedule_index;
            });

  result.candidates = evaluator.candidates_evaluated();
  return result;
}

json::Value bisect_to_json(const BisectConfig& config,
                           const BisectResult& result) {
  json::Value doc = json::Value::object();
  doc.set("schema", "anacin-bisect-1");
  doc.set("pattern", config.pattern);
  doc.set("shape", config.shape.to_json());
  doc.set("sim", config.record_sim.to_json());
  doc.set("replay_seed", std::to_string(config.replay_seed));
  doc.set("kernel", config.kernel_spec);
  doc.set("label_policy",
          std::string(kernels::label_policy_name(config.label_policy)));
  doc.set("target_fraction", config.target_fraction);
  doc.set("slice_window", static_cast<std::int64_t>(config.slice_window));
  doc.set("total_matches",
          static_cast<std::int64_t>(result.schedule.total_matches()));
  doc.set("full_gap", result.full_gap);
  doc.set("achieved", result.achieved);
  doc.set("rounds", static_cast<std::int64_t>(result.rounds));
  doc.set("candidates", static_cast<std::int64_t>(result.candidates));
  json::Value minimal = json::Value::array();
  for (const std::size_t index : result.minimal) {
    minimal.push_back(static_cast<std::int64_t>(index));
  }
  doc.set("minimal", std::move(minimal));
  json::Value report = json::Value::array();
  for (const RacyMatch& entry : result.report) {
    json::Value record = json::Value::object();
    record.set("schedule_index",
               static_cast<std::int64_t>(entry.schedule_index));
    record.set("rank", entry.rank);
    record.set("recv_seq", entry.recv_seq);
    record.set("callsite", entry.callsite);
    record.set("slice", static_cast<std::int64_t>(entry.slice));
    record.set("source", entry.source);
    record.set("send_seq", entry.send_seq);
    record.set("contribution", entry.contribution);
    report.push_back(std::move(record));
  }
  doc.set("report", std::move(report));
  return doc;
}

}  // namespace anacin::replay

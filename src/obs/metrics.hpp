#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace anacin::obs {

/// Number of per-thread shards each metric keeps. Writers pick a shard by
/// thread and update it with relaxed atomics, so concurrent increments
/// from pool workers and rank threads never contend on one cache line;
/// readers aggregate all shards on snapshot.
inline constexpr std::size_t kNumShards = 16;

/// Stable shard index of the calling thread (assigned round-robin on
/// first use, then cached in a thread_local).
std::size_t shard_index() noexcept;

/// Monotonically increasing event count. add() is wait-free (one relaxed
/// fetch_add on the calling thread's shard).
class Counter {
 public:
  explicit Counter(std::string name);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  void add(std::uint64_t delta = 1) noexcept {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  std::uint64_t value() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  std::string name_;
  std::array<Shard, kNumShards> shards_;
};

/// Last-write-wins instantaneous value (e.g. a queue depth or pool size).
class Gauge {
 public:
  explicit Gauge(std::string name);

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }

  void set(double value) noexcept;
  void add(double delta) noexcept;
  double value() const noexcept;

  void reset() noexcept;

 private:
  std::string name_;
  std::atomic<std::uint64_t> bits_;
};

/// Distribution of observed values over fixed bucket bounds, sharded the
/// same way as Counter. Quantiles are estimated by linear interpolation
/// inside the bucket that crosses the requested rank (Prometheus-style).
class Histogram {
 public:
  /// `bounds` are the inclusive upper edges of the finite buckets; one
  /// overflow bucket catches everything above the last bound. An empty
  /// vector selects default_bounds().
  explicit Histogram(std::string name, std::vector<double> bounds = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  void observe(double value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> bounds;
    /// bounds.size() + 1 entries; the last is the overflow bucket.
    std::vector<std::uint64_t> buckets;

    double mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Estimated q-quantile, q in [0, 1]. 0 when empty.
    double quantile(double q) const;
  };

  Snapshot snapshot() const;

  void reset() noexcept;

  /// 1-2-5 decades from 0.001 to 10000 — wide enough for microsecond
  /// timings in milliseconds and for queue depths alike.
  static std::vector<double> default_bounds();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};
    std::atomic<std::uint64_t> min_bits;
    std::atomic<std::uint64_t> max_bits;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  };

  void reset_shard(Shard& shard) noexcept;

  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, kNumShards> shards_;
};

/// Name -> metric map. Metrics are created on first use and never removed
/// (reset() zeroes values but keeps objects), so references returned here
/// stay valid for the registry's lifetime — cache them in hot paths.
class Registry {
 public:
  Registry() = default;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = {});

  /// Flat JSON snapshot:
  ///   {"counters": {name: value},
  ///    "gauges": {name: value},
  ///    "histograms": {name: {count, sum, mean, min, max, p50, p90, p99}}}
  json::Value snapshot_json() const;

  /// Zero every metric (objects and references survive).
  void reset();

  /// Process-wide default registry used by the ANACIN_* macros.
  static Registry& global();

 private:
  template <typename T>
  using Map = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  mutable std::mutex mutex_;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
};

/// Shorthands against the global registry.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

}  // namespace anacin::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace anacin::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double load_double(const std::atomic<std::uint64_t>& bits) noexcept {
  return std::bit_cast<double>(bits.load(std::memory_order_relaxed));
}

void store_double(std::atomic<std::uint64_t>& bits, double value) noexcept {
  bits.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

void add_double(std::atomic<std::uint64_t>& bits, double delta) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  std::uint64_t desired;
  do {
    desired = std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) +
                                           delta);
  } while (!bits.compare_exchange_weak(observed, desired,
                                       std::memory_order_relaxed));
}

void min_double(std::atomic<std::uint64_t>& bits, double value) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(observed) &&
         !bits.compare_exchange_weak(observed,
                                     std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed)) {
  }
}

void max_double(std::atomic<std::uint64_t>& bits, double value) noexcept {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(observed) &&
         !bits.compare_exchange_weak(observed,
                                     std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return index;
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

Counter::Counter(std::string name) : name_(std::move(name)) {}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() noexcept {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

Gauge::Gauge(std::string name)
    : name_(std::move(name)), bits_(std::bit_cast<std::uint64_t>(0.0)) {}

void Gauge::set(double value) noexcept { store_double(bits_, value); }

void Gauge::add(double delta) noexcept { add_double(bits_, delta); }

double Gauge::value() const noexcept { return load_double(bits_); }

void Gauge::reset() noexcept { store_double(bits_, 0.0); }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  for (double decade = 0.001; decade < 1e5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    reset_shard(shard);
  }
}

void Histogram::reset_shard(Shard& shard) noexcept {
  shard.count.store(0, std::memory_order_relaxed);
  store_double(shard.sum_bits, 0.0);
  store_double(shard.min_bits, kInf);
  store_double(shard.max_bits, -kInf);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    shard.buckets[b].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double value) noexcept {
  Shard& shard = shards_[shard_index()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  add_double(shard.sum_bits, value);
  min_double(shard.min_bits, value);
  max_double(shard.max_bits, value);
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  double min = kInf;
  double max = -kInf;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += load_double(shard.sum_bits);
    min = std::min(min, load_double(shard.min_bits));
    max = std::max(max, load_double(shard.max_bits));
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count == 0 ? 0.0 : min;
  snap.max = snap.count == 0 ? 0.0 : max;
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The requested rank falls inside bucket b; interpolate between its
    // edges (clamped to the observed min/max so estimates never leave the
    // data range).
    const double lower = b == 0 ? min : std::max(min, bounds[b - 1]);
    const double upper = b == bounds.size() ? max : std::min(max, bounds[b]);
    const double within =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  return max;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) reset_shard(shard);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

template <typename T, typename Map, typename Make>
T& find_or_create(std::mutex& mutex, Map& map, std::string_view name,
                  Make make) {
  std::lock_guard<std::mutex> lock(mutex);
  for (auto& [key, metric] : map) {
    if (key == name) return *metric;
  }
  map.emplace_back(std::string(name), make());
  return *map.back().second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create<Counter>(mutex_, counters_, name, [&] {
    return std::make_unique<Counter>(std::string(name));
  });
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create<Gauge>(mutex_, gauges_, name, [&] {
    return std::make_unique<Gauge>(std::string(name));
  });
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  return find_or_create<Histogram>(mutex_, histograms_, name, [&] {
    return std::make_unique<Histogram>(std::string(name), std::move(bounds));
  });
}

json::Value Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value doc = json::Value::object();

  json::Value counters = json::Value::object();
  for (const auto& [name, metric] : counters_) {
    counters.set(name, metric->value());
  }
  doc.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, metric] : gauges_) {
    gauges.set(name, metric->value());
  }
  doc.set("gauges", std::move(gauges));

  json::Value histograms = json::Value::object();
  for (const auto& [name, metric] : histograms_) {
    const Histogram::Snapshot snap = metric->snapshot();
    json::Value entry = json::Value::object();
    entry.set("count", snap.count);
    entry.set("sum", snap.sum);
    entry.set("mean", snap.mean());
    entry.set("min", snap.min);
    entry.set("max", snap.max);
    entry.set("p50", snap.quantile(0.50));
    entry.set("p90", snap.quantile(0.90));
    entry.set("p99", snap.quantile(0.99));
    histograms.set(name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

Gauge& gauge(std::string_view name) { return Registry::global().gauge(name); }

Histogram& histogram(std::string_view name, std::vector<double> bounds) {
  return Registry::global().histogram(name, std::move(bounds));
}

}  // namespace anacin::obs

#include "obs/span.hpp"

namespace anacin::obs {

namespace {

/// Per-thread nesting depth of live spans.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

json::Value Tracer::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Value events = json::Value::array();
  for (const SpanRecord& record : records_) {
    json::Value event = json::Value::object();
    event.set("name", record.name);
    event.set("cat", "anacin");
    event.set("ph", "X");
    event.set("ts", record.start_us);
    event.set("dur", record.dur_us);
    event.set("pid", 1);
    event.set("tid", static_cast<std::int64_t>(record.tid));
    json::Value args = json::Value::object();
    args.set("depth", static_cast<std::int64_t>(record.depth));
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }
  return events;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  depth_ = t_span_depth++;
  start_us_ = tracer.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const double end_us = tracer_->now_us();
  --t_span_depth;
  tracer_->record(SpanRecord{name_, start_us_, end_us - start_us_,
                             this_thread_id(), depth_});
}

}  // namespace anacin::obs

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace anacin::obs {

/// One completed scoped timing.
struct SpanRecord {
  std::string name;
  /// Microseconds since the tracer's epoch (construction or last clear()).
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Small sequential id assigned to each thread on first span.
  std::uint32_t tid = 0;
  /// Nesting depth on the recording thread (0 = outermost).
  std::uint32_t depth = 0;
};

/// Collector for scoped spans. Disabled by default: a disabled tracer
/// costs one relaxed atomic load per ANACIN_SPAN site, which is what
/// keeps instrumentation overhead negligible when tracing is off.
///
/// Records export as a Chrome trace-event JSON array (complete "X"
/// events) loadable in chrome://tracing or https://ui.perfetto.dev.
class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds elapsed since the tracer's epoch.
  double now_us() const noexcept;

  void record(SpanRecord record);

  std::vector<SpanRecord> records() const;
  std::size_t size() const;

  /// Chrome trace-event format: a JSON array of
  ///   {"name", "cat", "ph": "X", "ts", "dur", "pid", "tid",
  ///    "args": {"depth"}}
  /// objects with timestamps in microseconds.
  json::Value chrome_trace_json() const;

  /// Drop all records and restart the epoch.
  void clear();

  /// Process-wide default tracer used by the ANACIN_SPAN macro.
  static Tracer& global();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
};

/// Sequential id of the calling thread (1-based, assigned on first use).
std::uint32_t this_thread_id() noexcept;

/// RAII span: measures the enclosing scope on the global (or given)
/// tracer. When the tracer is disabled at construction, the span is inert.
/// `name` must outlive the span (string literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
};

}  // namespace anacin::obs

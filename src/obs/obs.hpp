#pragma once

/// Observability umbrella: metrics registry + span tracer + macros.
///
/// Metrics (always on, wait-free-ish sharded atomics):
///   obs::counter("sim.engine.runs").add(1);
///   obs::histogram("sim.engine.run_wall_ms").observe(elapsed_ms);
///
/// Spans (off by default; enable via Tracer::global().set_enabled(true),
/// the CLI's global --trace-out flag, or a bench binary's --trace-out):
///   void Engine::run() {
///     ANACIN_SPAN("sim.engine.run");
///     ...
///   }
///
/// Export: Registry::global().snapshot_json() for a flat metrics
/// snapshot, Tracer::global().chrome_trace_json() for a Chrome
/// trace-event array (chrome://tracing / Perfetto). See
/// docs/OBSERVABILITY.md.

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#define ANACIN_OBS_CONCAT_INNER(a_, b_) a_##b_
#define ANACIN_OBS_CONCAT(a_, b_) ANACIN_OBS_CONCAT_INNER(a_, b_)

/// Time the enclosing scope on the global tracer. Inert (one relaxed
/// atomic load) while tracing is disabled.
#define ANACIN_SPAN(name_)                                   \
  ::anacin::obs::ScopedSpan ANACIN_OBS_CONCAT(anacin_span_,  \
                                              __LINE__) {    \
    name_                                                    \
  }

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/root_cause.hpp"
#include "analysis/stats.hpp"
#include "graph/event_graph.hpp"
#include "support/thread_pool.hpp"

namespace anacin::course {

/// Use Case 1 (beginner): visualize message passing and observe that two
/// runs of the same code with the same inputs produce different
/// communication patterns (paper Figs 2-4).
struct UseCase1Result {
  /// Event graphs of the paper's beginner-level figures.
  graph::EventGraph message_race;      // Fig 2: 4 ranks
  graph::EventGraph amg_two_ranks;     // Fig 3: 2 ranks
  graph::EventGraph race_run_a;        // Fig 4a: 100% ND, seed A
  graph::EventGraph race_run_b;        // Fig 4b: 100% ND, seed B
  /// Self-check (Goal A.2): the two independent runs differ.
  bool runs_differ = false;
};
UseCase1Result run_use_case_1(std::uint64_t seed_a = 21,
                              std::uint64_t seed_b = 22);

/// Use Case 2 (intermediate): factors that impact non-determinism.
struct UseCase2Result {
  // Goal B.1: number of processes (paper Fig 5, 32 vs 16 ranks).
  analysis::Summary many_procs;
  analysis::Summary few_procs;
  double procs_p_value = 1.0;
  bool procs_effect_observed = false;
  // Goal B.2: iterations (paper Fig 6, 2 vs 1 iterations on 16 ranks).
  analysis::Summary two_iterations;
  analysis::Summary one_iteration;
  double iterations_p_value = 1.0;
  bool iterations_effect_observed = false;
};
UseCase2Result run_use_case_2(ThreadPool& pool, int many = 32, int few = 16,
                              int runs = 20);

/// Use Case 3 (advanced): quantify ND vs the ND percentage (Goal C.1 /
/// Fig 7) and identify root sources via callstacks (Goal C.2 / Fig 8).
struct UseCase3Result {
  std::vector<double> nd_percents;
  std::vector<analysis::Summary> distance_by_percent;
  std::vector<std::vector<double>> distances_by_percent;
  double spearman_vs_percent = 0.0;
  bool monotone_observed = false;
  analysis::RootCauseReport root_causes;
  bool wildcard_recv_attributed = false;
};
UseCase3Result run_use_case_3(ThreadPool& pool, int procs = 32, int runs = 20,
                              int percent_step = 10);

}  // namespace anacin::course

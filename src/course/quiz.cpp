#include "course/quiz.hpp"

#include <sstream>
#include <unordered_map>

#include "support/error.hpp"

namespace anacin::course {

const std::vector<QuizQuestion>& quiz_bank() {
  static const std::vector<QuizQuestion> bank = {
      {"A.1-q1", "A.1",
       "In an event graph, what does an edge between two nodes on the same "
       "rank represent?",
       {"A point-to-point message", "Logical precedence of MPI events",
        "Shared-memory access", "A collective operation"},
       1,
       "On-process edges encode logical time: one event happened before the "
       "next on that rank."},
      {"A.1-q2", "A.1",
       "In the paper's event-graph figures, what do blue and red circles "
       "stand for?",
       {"Barriers and reductions", "Process start and end",
        "Sends and receives", "Fast and slow messages"},
       2,
       "Blue circles are MPI_Send events, red circles are MPI_Recv events; "
       "green marks process start/end."},
      {"A.2-q1", "A.2",
       "Two runs of the same MPI code with identical inputs produced "
       "different message arrival orders. This is best described as:",
       {"A compiler bug", "Communication non-determinism",
        "A deadlock", "Numerical overflow"},
       1,
       "Non-determinism: the same code, run the same way, exhibits "
       "different communication patterns across runs."},
      {"A.2-q2", "A.2",
       "Which MPI feature makes a receive's matching order depend on "
       "message timing?",
       {"MPI_ANY_SOURCE", "MPI_Barrier", "MPI_COMM_WORLD", "MPI_Wtime"},
       0,
       "Wildcard receives match whichever eligible message arrives first — "
       "the canonical root source of message races."},
      {"B.1-q1", "B.1",
       "Increasing the number of MPI processes in a racing application "
       "generally makes the measured non-determinism:",
       {"Smaller", "Larger", "Exactly zero", "Independent of the run"},
       1,
       "More processes means more concurrent messages and more races, so "
       "kernel distances grow (paper Fig 5)."},
      {"B.1-q2", "B.1",
       "Your non-deterministic bug won't reproduce. Per the course, a good "
       "first step is to:",
       {"Reduce the process count", "Disable compiler optimization",
        "Increase the process count and rerun many times",
        "Switch to synchronous sends everywhere"},
       2,
       "Scaling up amplifies non-determinism, making the buggy schedule "
       "more likely to appear."},
      {"B.2-q1", "B.2",
       "Running two iterations of the same communication pattern instead of "
       "one typically:",
       {"Halves the kernel distance", "Leaves the kernel distance unchanged",
        "Accumulates more non-determinism", "Eliminates message races"},
       2,
       "Each iteration contributes its own races; differences accumulate "
       "across iterations (paper Fig 6)."},
      {"C.1-q1", "C.1",
       "The 'percentage of non-determinism' knob controls:",
       {"The fraction of messages that can suffer congestion delays",
        "The number of MPI processes", "The size of each message",
        "The number of compute nodes"},
       0,
       "It is defined during pattern generation as the percentage of "
       "messages that may arrive non-deterministically."},
      {"C.1-q2", "C.1",
       "At 0% non-determinism, the kernel distance between repeated runs "
       "should be:",
       {"Maximal", "Random", "Approximately zero", "Negative"},
       2,
       "With no delayed messages every run is identical, so the event "
       "graphs coincide and the distance vanishes (paper Fig 7)."},
      {"C.2-q1", "C.2",
       "Why are call paths that appear during periods of high "
       "non-determinism likely root sources?",
       {"They execute most often overall",
        "MPI functions active where runs diverge are probably causing the "
        "divergence",
        "They always contain MPI_Barrier", "They allocate the most memory"},
       1,
       "The callstack histogram is taken inside the most divergent "
       "logical-time slices (paper Fig 8)."},
      {"C.2-q2", "C.2",
       "A kernel distance between two event graphs is formally:",
       {"The number of differing edges",
        "An inner-product-induced metric in a Reproducing Kernel Hilbert "
        "Space",
        "The runtime difference in seconds", "A count of MPI calls"},
       1,
       "The graph kernel is an inner product of graph embeddings; the "
       "distance is the induced RKHS metric."},
      {"C.2-q3", "C.2",
       "A record-and-replay tool like ReMPI addresses non-determinism by:",
       {"Removing wildcard receives from the source",
        "Recording matching decisions and forcing them on replay",
        "Slowing down the network", "Using more compute nodes"},
       1,
       "Replay pins every message race to its recorded outcome, temporarily "
       "restoring reproducibility."},
  };
  return bank;
}

std::vector<QuizQuestion> questions_for(const std::string& goal_or_level) {
  ANACIN_CHECK(!goal_or_level.empty(), "empty goal filter");
  std::vector<QuizQuestion> selected;
  for (const QuizQuestion& question : quiz_bank()) {
    if (question.goal.rfind(goal_or_level, 0) == 0) {
      selected.push_back(question);
    }
  }
  return selected;
}

QuizGrade grade_quiz(
    std::span<const std::pair<std::string, std::size_t>> answers) {
  std::unordered_map<std::string, const QuizQuestion*> by_id;
  for (const QuizQuestion& question : quiz_bank()) {
    by_id.emplace(question.id, &question);
  }
  QuizGrade grade;
  for (const auto& [id, chosen] : answers) {
    const auto it = by_id.find(id);
    ANACIN_CHECK(it != by_id.end(), "unknown quiz question id '" << id << "'");
    ANACIN_CHECK(chosen < it->second->options.size(),
                 "option index out of range for " << id);
    ++grade.answered;
    if (chosen == it->second->correct_option) {
      ++grade.correct;
    } else {
      grade.missed_ids.push_back(id);
    }
  }
  return grade;
}

std::string render_question(const QuizQuestion& question, bool reveal) {
  std::ostringstream os;
  os << '[' << question.id << "] " << question.prompt << '\n';
  for (std::size_t i = 0; i < question.options.size(); ++i) {
    os << "  (" << static_cast<char>('a' + i) << ") " << question.options[i]
       << '\n';
  }
  if (reveal) {
    os << "  answer: ("
       << static_cast<char>('a' + question.correct_option) << ") — "
       << question.explanation << '\n';
  }
  return os.str();
}

}  // namespace anacin::course

#include "course/module.hpp"

#include <sstream>

namespace anacin::course {

const std::vector<CourseLevel>& course_levels() {
  static const std::vector<CourseLevel> levels = {
      {"A. Beginner",
       {{"A.1", "Introduce parallelism using the message passing paradigm"},
        {"A.2", "Define non-determinism associated to message passing"}},
       {"A basic knowledge of MPI, in particular point-to-point MPI "
        "communication calls.",
        "A basic knowledge of graph theory, but not necessarily an in-depth "
        "understanding."}},
      {"B. Intermediate",
       {{"B.1",
         "Study effects of number of processes on non-determinism in "
         "applications"},
        {"B.2",
         "Study non-determinism across multiple iterations of the same code "
         "during the same application execution"}},
       {"An understanding of non-determinism from the topics described by "
        "the beginner level.",
        "The ability to interpret violin plots."}},
      {"C. Advanced",
       {{"C.1", "Quantify the level of non-determinism in application's "
                "executions"},
        {"C.2", "Identify root sources of non-determinism in applications"}},
       {"An understanding of what external factors impact the amount of "
        "non-determinism in an application from the intermediate level.",
        "The ability to understand C++ source code to identify functions "
        "causing non-determinism."}},
  };
  return levels;
}

std::string render_learning_objectives() {
  std::ostringstream os;
  os << "Table I: learning objectives per level of difficulty\n";
  for (const CourseLevel& level : course_levels()) {
    os << "  " << level.name << " level\n";
    for (const CourseGoal& goal : level.goals) {
      os << "    Goal " << goal.id << ": " << goal.text << '\n';
    }
  }
  return os.str();
}

std::string render_tutorial_schedule() {
  std::ostringstream os;
  os << "Half-day tutorial schedule (per paper Section II)\n";
  os << "  0:00-0:30  Introduction: message passing, event graphs, and why "
        "non-determinism matters\n";
  os << "  0:30-1:15  Use case 1 (beginner): visualize message races; two "
        "runs of the same code differ   [examples/use_case_beginner]\n";
  os << "  1:15-1:30  Break / environment check (`anacin run --pattern "
        "message_race --ascii`)\n";
  os << "  1:30-2:15  Use case 2 (intermediate): processes and iterations "
        "as amplifiers                 [examples/use_case_intermediate]\n";
  os << "  2:15-3:00  Use case 3 (advanced): quantifying ND and locating "
        "root sources                  [examples/use_case_advanced]\n";
  os << "  3:00-3:30  Applying the method to your own code; "
        "record-and-replay               [examples/custom_application]\n";
  os << "  3:30-3:45  Comprehension quiz                                   "
        "                              [examples/course_quiz]\n";
  return os.str();
}

const std::vector<Assignment>& assignments() {
  static const std::vector<Assignment> list = {
      {"A.1",
       "Reproduce the Fig-2 and Fig-3 scenarios, then invent a third "
       "communication pattern of your own (e.g. a ring) and describe its "
       "event graph.",
       "anacin run --pattern message_race --ranks 4 --ascii"},
      {"A.2",
       "Run the message race ten times with different seeds at 100% ND. "
       "How many distinct receive orders did rank 0 observe? Why fewer "
       "than 6 sometimes?",
       "anacin run --pattern message_race --ranks 4 --nd 100 --seed 1 "
       "--ascii"},
      {"B.1",
       "The lesson used the unstructured mesh. Repeat the 32-vs-16-process "
       "comparison on the other two benchmarks and report whether the "
       "direction of the effect is the same.",
       "anacin measure --pattern amg2013 --ranks 32 --runs 20"},
      {"B.2",
       "Sweep iterations 1..4 on 16 processes and plot median kernel "
       "distance vs iterations. Is the growth linear?",
       "anacin measure --pattern unstructured_mesh --ranks 16 "
       "--iterations 4 --runs 20"},
      {"C.1",
       "Repeat the Fig-7 ND% sweep on the message race and the mesh. Which "
       "pattern saturates earlier, and what property of its communication "
       "explains that?",
       "anacin sweep --pattern message_race --ranks 32 --runs 20 --step 10"},
      {"C.2",
       "Run the root-cause analysis on probe_race. The receives name their "
       "sources — where does the non-determinism hide, and which call path "
       "does the analysis blame?",
       "anacin rootcause --pattern probe_race --ranks 16 --runs 10"},
  };
  return list;
}

std::string render_assignments() {
  std::ostringstream os;
  os << "Assignments (one per course goal)\n";
  for (const Assignment& assignment : assignments()) {
    os << "  [" << assignment.goal << "] " << assignment.text << '\n'
       << "        start from: " << assignment.command << '\n';
  }
  return os.str();
}

std::string render_prerequisites() {
  std::ostringstream os;
  os << "Table II: prerequisite knowledge per level of difficulty\n";
  for (const CourseLevel& level : course_levels()) {
    os << "  " << level.name << " level\n";
    for (const std::string& prerequisite : level.prerequisites) {
      os << "    - " << prerequisite << '\n';
    }
  }
  return os.str();
}

}  // namespace anacin::course

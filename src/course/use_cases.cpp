#include "course/use_cases.hpp"

#include <algorithm>

#include "core/campaign.hpp"
#include "kernels/kernel.hpp"
#include "support/error.hpp"

namespace anacin::course {

namespace {

graph::EventGraph run_once(const std::string& pattern, int ranks,
                           double nd_fraction, std::uint64_t seed,
                           int iterations = 1) {
  patterns::PatternConfig shape;
  shape.num_ranks = ranks;
  shape.iterations = iterations;
  sim::SimConfig config;
  config.num_ranks = ranks;
  config.seed = seed;
  config.network.nd_fraction = nd_fraction;
  const sim::RunResult run = core::run_pattern_once(pattern, shape, config);
  return graph::EventGraph::from_trace(run.trace);
}

/// Matched sources of every receive, in per-rank completion order — the
/// observable the beginner use case compares across runs.
std::vector<std::vector<int>> match_orders(const graph::EventGraph& graph) {
  std::vector<std::vector<int>> orders(
      static_cast<std::size_t>(graph.num_ranks()));
  for (const graph::EventNode& node : graph.nodes()) {
    if (node.type == trace::EventType::kRecv) {
      orders[static_cast<std::size_t>(node.rank)].push_back(node.peer);
    }
  }
  return orders;
}

core::CampaignConfig mesh_campaign(int ranks, int iterations, int runs) {
  core::CampaignConfig config;
  config.pattern = "unstructured_mesh";
  config.shape.num_ranks = ranks;
  config.shape.iterations = iterations;
  config.nd_fraction = 1.0;  // the paper runs these lessons at 100% ND
  config.num_runs = runs;
  return config;
}

}  // namespace

UseCase1Result run_use_case_1(std::uint64_t seed_a, std::uint64_t seed_b) {
  ANACIN_CHECK(seed_a != seed_b,
               "use case 1 needs two independent executions");
  UseCase1Result result;
  // Fig 2: message race on 4 ranks (deterministic rendering, ND irrelevant).
  result.message_race = run_once("message_race", 4, 0.0, 1);
  // Fig 3: the AMG 2013 pattern on 2 ranks.
  result.amg_two_ranks = run_once("amg2013", 2, 0.0, 1);
  // Fig 4: same code, same inputs, two independent runs at 100% ND.
  result.race_run_a = run_once("message_race", 4, 1.0, seed_a);
  result.race_run_b = run_once("message_race", 4, 1.0, seed_b);
  result.runs_differ =
      match_orders(result.race_run_a) != match_orders(result.race_run_b);
  return result;
}

UseCase2Result run_use_case_2(ThreadPool& pool, int many, int few, int runs) {
  ANACIN_CHECK(many > few && few >= 2, "process counts out of order");
  UseCase2Result result;

  // Goal B.1 — number of processes (paper Fig 5): same pattern, same
  // settings, only the rank count changes.
  const core::CampaignResult many_result =
      core::run_campaign(mesh_campaign(many, 1, runs), pool);
  const core::CampaignResult few_result =
      core::run_campaign(mesh_campaign(few, 1, runs), pool);
  result.many_procs = many_result.distance_summary;
  result.few_procs = few_result.distance_summary;
  result.procs_p_value =
      analysis::mann_whitney_u(many_result.measurement.distances,
                               few_result.measurement.distances)
          .p_value;
  result.procs_effect_observed =
      result.many_procs.median > result.few_procs.median;

  // Goal B.2 — iterations (paper Fig 6): 16 ranks, 2 vs 1 iterations.
  const core::CampaignResult two_iters =
      core::run_campaign(mesh_campaign(few, 2, runs), pool);
  const core::CampaignResult one_iter =
      core::run_campaign(mesh_campaign(few, 1, runs), pool);
  result.two_iterations = two_iters.distance_summary;
  result.one_iteration = one_iter.distance_summary;
  result.iterations_p_value =
      analysis::mann_whitney_u(two_iters.measurement.distances,
                               one_iter.measurement.distances)
          .p_value;
  result.iterations_effect_observed =
      result.two_iterations.median > result.one_iteration.median;
  return result;
}

UseCase3Result run_use_case_3(ThreadPool& pool, int procs, int runs,
                              int percent_step) {
  ANACIN_CHECK(percent_step >= 1 && percent_step <= 100,
               "percent step out of range");
  UseCase3Result result;

  // Goal C.1 — the ND% sweep of Fig 7: AMG 2013 on `procs` ranks, one
  // node, one iteration, 1-byte messages.
  for (int percent = 0; percent <= 100; percent += percent_step) {
    core::CampaignConfig config;
    config.pattern = "amg2013";
    config.shape.num_ranks = procs;
    config.shape.iterations = 1;
    config.shape.message_bytes = 1;
    config.num_nodes = 1;
    config.nd_fraction = percent / 100.0;
    config.num_runs = runs;
    const core::CampaignResult campaign = core::run_campaign(config, pool);
    result.nd_percents.push_back(percent);
    result.distance_by_percent.push_back(campaign.distance_summary);
    result.distances_by_percent.push_back(campaign.measurement.distances);
  }
  std::vector<double> medians;
  medians.reserve(result.distance_by_percent.size());
  for (const auto& summary : result.distance_by_percent) {
    medians.push_back(summary.median);
  }
  result.spearman_vs_percent =
      analysis::spearman(result.nd_percents, medians);
  result.monotone_observed =
      result.spearman_vs_percent > 0.8 &&
      result.distance_by_percent.front().median <
          result.distance_by_percent.back().median;

  // Goal C.2 — root sources: gather a fresh sample at 100% ND and rank the
  // callstacks inside the most divergent slices (Fig 8).
  core::CampaignConfig full_nd;
  full_nd.pattern = "amg2013";
  full_nd.shape.num_ranks = procs;
  full_nd.nd_fraction = 1.0;
  full_nd.num_runs = std::min(runs, 10);  // slices are pairwise: keep modest
  const core::CampaignResult campaign = core::run_campaign(full_nd, pool);

  const auto kernel = kernels::make_kernel(full_nd.kernel);
  analysis::RootCauseConfig root_config;
  result.root_causes = analysis::find_root_causes(
      *kernel, full_nd.label_policy, campaign.graphs, root_config, pool);
  if (!result.root_causes.callstacks.empty()) {
    const auto& top = result.root_causes.callstacks.front();
    result.wildcard_recv_attributed =
        top.wildcard_share > 0.5 &&
        (top.path.find("MPI_Irecv") != std::string::npos ||
         top.path.find("MPI_Recv") != std::string::npos);
  }
  return result;
}

}  // namespace anacin::course

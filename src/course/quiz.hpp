#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace anacin::course {

/// One multiple-choice comprehension question tied to a course goal.
struct QuizQuestion {
  std::string id;          // e.g. "A.1-q1"
  std::string goal;        // the goal it examines, e.g. "A.1"
  std::string prompt;
  std::vector<std::string> options;
  std::size_t correct_option = 0;
  std::string explanation;
};

/// The question bank covering all six goals of Table I.
const std::vector<QuizQuestion>& quiz_bank();

/// Questions for one goal (e.g. "B.1") or level prefix (e.g. "B").
std::vector<QuizQuestion> questions_for(const std::string& goal_or_level);

struct QuizGrade {
  std::size_t answered = 0;
  std::size_t correct = 0;
  std::vector<std::string> missed_ids;

  double score() const {
    return answered == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(answered);
  }
};

/// Grade (question id, chosen option index) pairs. Unknown ids throw.
QuizGrade grade_quiz(
    std::span<const std::pair<std::string, std::size_t>> answers);

/// Render a question for the terminal; `reveal` appends the answer key.
std::string render_question(const QuizQuestion& question, bool reveal);

}  // namespace anacin::course

#pragma once

#include <string>
#include <vector>

namespace anacin::course {

struct CourseGoal {
  std::string id;    // e.g. "A.1"
  std::string text;  // the learning objective
};

/// One level of the course module (paper Section II.A).
struct CourseLevel {
  std::string name;  // "Beginner", "Intermediate", "Advanced"
  std::vector<CourseGoal> goals;            // Table I
  std::vector<std::string> prerequisites;   // Table II
};

/// The three levels with the goals of Table I and prerequisites of
/// Table II, verbatim from the paper.
const std::vector<CourseLevel>& course_levels();

/// Render Table I (learning objectives per level) as aligned text.
std::string render_learning_objectives();

/// Render Table II (prerequisite knowledge per level) as aligned text.
std::string render_prerequisites();

/// A suggested half-day tutorial agenda (the paper proposes the module
/// either as part of a parallel-computing course or as a half-day
/// conference tutorial).
std::string render_tutorial_schedule();

/// A homework assignment tied to one course goal, with a concrete command
/// students run in this repository.
struct Assignment {
  std::string goal;     // e.g. "B.1"
  std::string text;     // what to do and what to observe
  std::string command;  // a runnable starting point
};

/// The paper's suggested assignments (e.g. "run ANACIN-X with similar
/// settings on the other benchmarks"), made concrete for this repository.
const std::vector<Assignment>& assignments();

std::string render_assignments();

}  // namespace anacin::course

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace anacin::cli {

/// Entry point of the `anacin` command-line tool. Returns the process exit
/// code; all output goes to the supplied streams so tests can capture it.
///
/// Subcommands:
///   patterns   list the packaged mini-applications
///   run        simulate one execution (trace / ASCII / SVG outputs)
///   graph      inspect a saved trace (render + structural metrics)
///   measure    run a campaign and report kernel-distance statistics
///   sweep      Fig-7 style ND% sweep
///   rootcause  Fig-8 style callstack attribution
///   replay     record a run and replay it (ReMPI-style)
///   course     print the course tables or run a use case
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

/// Convenience overload for tests.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace anacin::cli

#include <iostream>

#include "cli/cli_app.hpp"

int main(int argc, char** argv) {
  return anacin::cli::run_cli(argc, argv, std::cout, std::cerr);
}
